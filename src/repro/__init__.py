"""Reproduction of "Beyond isolation: OS verification as a foundation for
correct applications" (HotOS '23).

The package rebuilds, in pure Python, every layer of the paper's proposed
stack: a QF_BV SMT solver and verification framework (:mod:`repro.smt`,
:mod:`repro.verif`), the verified x86-64 page table and its refinement
proof (:mod:`repro.core`), simulated hardware (:mod:`repro.hw`), a
discrete-event NUMA simulator (:mod:`repro.sim`), node replication
(:mod:`repro.nr`), an NrOS-shaped kernel (:mod:`repro.nros`), the
userspace library (:mod:`repro.ulib`), and the motivating applications
(:mod:`repro.apps`).

Start with ``examples/quickstart.py`` or DESIGN.md.
"""

__version__ = "1.0.0"
