"""Fixed-width machine-word arithmetic helpers.

Shared by the SMT bit-blaster, the page-table implementation, and the
simulated hardware.  All operations model unsigned two's-complement machine
words of an explicit bit width, mirroring the semantics the paper's Rust
implementation gets from the hardware.
"""

from __future__ import annotations


def mask(width: int) -> int:
    """Return the all-ones value of the given bit width."""
    if width < 0:
        raise ValueError(f"negative width: {width}")
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Wrap an arbitrary Python integer into an unsigned word of `width` bits."""
    return value & mask(width)


def bit(value: int, index: int) -> int:
    """Return bit `index` of `value` (0 or 1)."""
    return (value >> index) & 1


def set_bit(value: int, index: int, flag: bool) -> int:
    """Return `value` with bit `index` forced to `flag`."""
    if flag:
        return value | (1 << index)
    return value & ~(1 << index)


def extract(value: int, hi: int, lo: int) -> int:
    """Return bits hi..lo (inclusive) of `value`, right-aligned."""
    if hi < lo:
        raise ValueError(f"extract with hi {hi} < lo {lo}")
    return (value >> lo) & mask(hi - lo + 1)


def replace_bits(value: int, hi: int, lo: int, field: int) -> int:
    """Return `value` with bits hi..lo replaced by `field`."""
    width = hi - lo + 1
    if field != (field & mask(width)):
        raise ValueError(f"field {field:#x} does not fit in {width} bits")
    cleared = value & ~(mask(width) << lo)
    return cleared | (field << lo)


def sign_extend(value: int, from_width: int, to_width: int) -> int:
    """Sign-extend an unsigned `from_width`-bit value to `to_width` bits."""
    if to_width < from_width:
        raise ValueError("sign_extend must widen")
    value = truncate(value, from_width)
    if bit(value, from_width - 1):
        value |= mask(to_width) ^ mask(from_width)
    return value


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned `width`-bit value as two's-complement."""
    value = truncate(value, width)
    if bit(value, width - 1):
        return value - (1 << width)
    return value


def is_aligned(value: int, alignment: int) -> bool:
    """True when `value` is a multiple of `alignment` (a power of two)."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return value & (alignment - 1) == 0


def align_down(value: int, alignment: int) -> int:
    """Round `value` down to a multiple of `alignment` (a power of two)."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round `value` up to a multiple of `alignment` (a power of two)."""
    return align_down(value + alignment - 1, alignment)


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount of negative value")
    return value.bit_count()


def log2_exact(value: int) -> int:
    """Return log2 of an exact power of two, raising otherwise."""
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1
