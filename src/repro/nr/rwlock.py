"""A readers-writer lock for the step-interleaved NR protocol.

Each NR replica is protected by one of these: the flat-combiner takes the
writer side while applying log entries; read-only operations take the reader
side.  The lock itself is plain shared state — atomicity comes from the
execution model: every mutation happens inside a single protocol *step*, and
the interleaving executor runs steps atomically.
"""

from __future__ import annotations


class RwLock:
    """Try-acquire readers-writer lock (writer-preferring)."""

    def __init__(self) -> None:
        self.readers = 0
        self.writer = False
        self.writer_waiting = False
        self.write_acquisitions = 0
        self.read_acquisitions = 0

    def try_acquire_read(self) -> bool:
        """One atomic step: succeed unless a writer holds or wants the lock."""
        if self.writer or self.writer_waiting:
            return False
        self.readers += 1
        self.read_acquisitions += 1
        return True

    def release_read(self) -> None:
        if self.readers <= 0:
            raise RuntimeError("release_read without a reader")
        self.readers -= 1

    def try_acquire_write(self) -> bool:
        """One atomic step: succeed when no readers and no writer."""
        if self.writer or self.readers > 0:
            self.writer_waiting = True
            return False
        self.writer = True
        self.writer_waiting = False
        self.write_acquisitions += 1
        return True

    def release_write(self) -> None:
        if not self.writer:
            raise RuntimeError("release_write without the writer")
        self.writer = False
        # Any writer that failed its try while we held the lock will retry
        # and re-set the flag; clearing here prevents a stale flag from
        # starving readers when no writer is actually waiting any more.
        self.writer_waiting = False

    @property
    def held_exclusively(self) -> bool:
        return self.writer
