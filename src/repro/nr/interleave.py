"""Adversarial interleaving of NR step generators.

Runs a set of per-thread operation sequences against one
:class:`~repro.nr.core.NodeReplicated` instance, interleaving protocol steps
under a seeded random scheduler, and records the concurrent history for the
linearizability checker.  Logical time is the global step counter, so
real-time order in the history is exactly the order the scheduler produced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.nr.core import NodeReplicated
from repro.nr.linearizability import History, Invocation


@dataclass
class ThreadScript:
    """The operations one thread will perform, in order.

    Each element is ``(op, is_read)``."""

    thread: int
    node: int
    ops: list[tuple[object, bool]]


class SchedulingError(Exception):
    """The scheduler could not finish (livelock beyond the step budget)."""


def run_interleaved(
    nr: NodeReplicated,
    scripts: list[ThreadScript],
    seed: int,
    max_steps: int = 200_000,
) -> History:
    """Interleave the scripts' protocol steps randomly; returns the
    history."""
    rng = random.Random(seed)
    history = History()
    clock = 0

    @dataclass
    class _Runner:
        script: ThreadScript
        index: int = 0
        gen: object = None
        invoked_at: int = 0

        def start_next(self, now: int) -> bool:
            if self.index >= len(self.script.ops):
                return False
            op, is_read = self.script.ops[self.index]
            if is_read:
                self.gen = nr.read_steps(op, self.script.node,
                                         self.script.thread)
            else:
                self.gen = nr.execute_steps(op, self.script.node,
                                            self.script.thread)
            self.invoked_at = now
            return True

    runners = [_Runner(s) for s in scripts]
    for runner in runners:
        runner.start_next(clock)
    active = [r for r in runners if r.gen is not None]

    steps = 0
    while active:
        steps += 1
        if steps > max_steps:
            raise SchedulingError(
                f"interleaving did not finish within {max_steps} steps"
            )
        runner = rng.choice(active)
        clock += 1
        try:
            next(runner.gen)
        except StopIteration as stop:
            op, is_read = runner.script.ops[runner.index]
            history.add(
                Invocation(
                    thread=runner.script.thread,
                    op=op,
                    result=stop.value,
                    invoked_at=runner.invoked_at,
                    responded_at=clock,
                    is_read=is_read,
                )
            )
            runner.index += 1
            runner.gen = None
            if not runner.start_next(clock):
                active.remove(runner)
    return history
