"""Sharded node replication — NrOS's write-scaling mechanism.

"To scale writes further, NrOS shards kernel state into multiple NR
instances and replicates them over independent logs, allowing for
scalability to many cores" (Section 4.1).  A :class:`ShardedNr` partitions
the key space over several :class:`~repro.nr.core.NodeReplicated`
instances, each with its own operation log, so writes to different shards
do not serialize against each other.

Shard-local operations stay linearizable per shard (each shard is plain
NR).  Cross-shard consistency is the usual sharding trade-off: a
`consistent_snapshot` quiesces every shard in shard order.
"""

from __future__ import annotations

from typing import Callable

from repro.nr.core import NodeReplicated


class ShardedNr:
    """Key-partitioned NR instances over independent logs."""

    def __init__(
        self,
        ds_factory: Callable,
        num_shards: int,
        num_nodes: int = 1,
        shard_of: Callable | None = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("need at least one shard")
        self.shards = [
            NodeReplicated(ds_factory, num_nodes=num_nodes)
            for _ in range(num_shards)
        ]
        self._shard_of = shard_of if shard_of is not None else (
            lambda key: hash(key) % num_shards
        )

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, key) -> int:
        index = self._shard_of(key)
        if not 0 <= index < len(self.shards):
            raise ValueError(f"shard function returned {index}")
        return index

    def execute(self, key, op, node: int = 0, thread: int = 0):
        """Mutating op routed to `key`'s shard."""
        return self.shards[self.shard_for(key)].execute(
            op, node=node, thread=thread
        )

    def execute_ro(self, key, op, node: int = 0, thread: int = 0):
        return self.shards[self.shard_for(key)].execute_ro(
            op, node=node, thread=thread
        )

    def execute_steps(self, key, op, node: int = 0, thread: int = 0):
        """The step-protocol generator for the timed/interleaved drivers."""
        return self.shards[self.shard_for(key)].execute_steps(
            op, node, thread
        )

    def read_steps(self, key, op, node: int = 0, thread: int = 0):
        return self.shards[self.shard_for(key)].read_steps(op, node, thread)

    def sync_all(self) -> None:
        for shard in self.shards:
            shard.sync_all()

    def gc_logs(self) -> int:
        return sum(shard.gc_log() for shard in self.shards)

    def consistent_snapshot(self, reader: Callable) -> list:
        """Quiesce every shard and apply `reader(replica_ds)` to shard 0's
        replica of each; returns the per-shard results in shard order."""
        self.sync_all()
        return [reader(shard.replicas[0].ds) for shard in self.shards]

    def total_log_entries(self) -> int:
        return sum(shard.log.tail for shard in self.shards)
