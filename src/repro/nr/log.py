"""The shared operation log.

The log is the single source of truth for the order of mutating operations.
Replicas consume it monotonically; the completed prefix (applied by every
replica) can be garbage-collected.  Entries are kept in a list with a base
offset so truncation is O(collected).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LogEntry:
    """One mutating operation appended by a combiner on behalf of a thread."""

    op: object
    node: int     # replica that appended the entry
    thread: int   # thread the result belongs to


class Log:
    """An append-only operation log with prefix GC."""

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []
        self._base = 0  # global index of _entries[0]
        self.appends = 0

    @property
    def tail(self) -> int:
        """Global index one past the last entry."""
        return self._base + len(self._entries)

    @property
    def base(self) -> int:
        return self._base

    def append_batch(self, entries: list[LogEntry]) -> int:
        """Append a combiner's batch; returns the global index of the first
        new entry."""
        start = self.tail
        self._entries.extend(entries)
        self.appends += 1
        return start

    def entry(self, index: int) -> LogEntry:
        if index < self._base:
            raise IndexError(
                f"log entry {index} was garbage-collected (base {self._base})"
            )
        return self._entries[index - self._base]

    def slice_from(self, start: int, end: int | None = None) -> list[LogEntry]:
        """Entries [start, end) by global index."""
        if end is None:
            end = self.tail
        if start < self._base:
            raise IndexError(
                f"log slice from {start} below base {self._base}"
            )
        lo = start - self._base
        hi = end - self._base
        return self._entries[lo:hi]

    def gc(self, completed_tail: int) -> int:
        """Drop entries below `completed_tail` (the minimum replica tail);
        returns how many were collected."""
        if completed_tail > self.tail:
            raise ValueError(
                f"completed tail {completed_tail} beyond log tail {self.tail}"
            )
        drop = completed_tail - self._base
        if drop <= 0:
            return 0
        del self._entries[:drop]
        self._base = completed_tail
        return drop

    def __len__(self) -> int:
        return len(self._entries)
