"""Simulated-time execution of NR workloads (Figures 1b and 1c).

Each core is a simulated process repeatedly issuing operations through the
*same* NR step protocol used by the functional and interleaved drivers; each
protocol step is charged the cache-coherence cost of the shared memory it
touches (slots, the combiner lock, the log tail, per-entry log reads).  The
result is per-operation latency that grows with contending cores for the
mechanistic reason the paper's does: the flat combiner processes bigger
batches, and every waiter waits for the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.nr import core as nrcore
from repro.nr.core import NodeReplicated
from repro.obs.events import EventBus
from repro.obs.instruments import Histogram
from repro.obs.span import Span, sim_clock
from repro.sim.kernel import Delay, Simulator
from repro.sim.resources import CacheLine
from repro.sim.stats import LatencyRecorder
from repro.sim.topology import Topology


@dataclass
class TimedNrConfig:
    """Workload and cost parameters for a timed NR run."""

    num_cores: int
    ops_per_core: int = 32
    cores_per_node: int = 14
    apply_cost_ns: int = 800        # executing one mutating op on a replica
    query_cost_ns: int = 300        # executing one read-only op
    spin_backoff_ns: int = 120
    op_gap_ns: int = 250            # think time between ops on a core
    syscall_overhead: bool = True   # charge user<->kernel crossings
    post_op_cost_fn: Callable | None = None  # e.g. TLB shootdown for unmap


@dataclass
class TimedNrResult:
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    by_kind: dict = field(default_factory=dict)  # op kind -> LatencyRecorder
    sim_ns: int = 0
    batches: int = 0
    max_batch: int = 0
    log_appends: int = 0
    #: Combiner batch-size population (merged across replicas/shards).
    batch_sizes: Histogram = field(
        default_factory=lambda: Histogram(name="nr.batch_size"))

    def kind(self, name: str) -> LatencyRecorder:
        return self.by_kind.setdefault(name, LatencyRecorder())

    @property
    def throughput_ops_per_ms(self) -> float:
        if self.sim_ns == 0:
            return 0.0
        return len(self.latency) / (self.sim_ns / 1e6)


class _SharedLines:
    """The cache lines the protocol steps touch."""

    def __init__(self, topology: Topology, num_nodes: int, num_cores: int):
        self.combiner = [CacheLine(topology) for _ in range(num_nodes)]
        self.lock = [CacheLine(topology) for _ in range(num_nodes)]
        self.tail = CacheLine(topology)
        self.slot = [CacheLine(topology) for _ in range(num_cores)]
        self.result = [CacheLine(topology) for _ in range(num_cores)]


def _step_cost(label: str, core: int, node: int, lines: _SharedLines,
               topology: Topology, cfg: TimedNrConfig,
               node_cores: list[int]) -> int:
    costs = topology.costs
    if label == nrcore.PUBLISH:
        return lines.slot[core].write(core)
    if label == nrcore.TRY_COMBINE:
        return lines.combiner[node].atomic_rmw(core)
    if label == nrcore.CHECK_RESULT:
        return lines.result[core].read(core)
    if label == nrcore.COLLECT:
        return sum(lines.slot[c].read(core) for c in node_cores)
    if label == nrcore.APPEND:
        return lines.tail.atomic_rmw(core) + costs.local_dram
    if label == nrcore.WLOCK:
        return lines.lock[node].atomic_rmw(core)
    if label == nrcore.APPLY:
        # one log entry: fetch the entry line, run the sequential op,
        # write the owner's result line
        return costs.local_transfer + cfg.apply_cost_ns
    if label == nrcore.RELEASE:
        return lines.combiner[node].write(core) + lines.lock[node].write(core)
    if label == nrcore.SPIN:
        return cfg.spin_backoff_ns
    if label == nrcore.READ_TAIL:
        return lines.tail.read(core)
    if label == nrcore.RLOCK:
        return lines.lock[node].atomic_rmw(core)
    if label == nrcore.READ:
        return cfg.query_cost_ns
    if label == nrcore.RUNLOCK:
        return lines.lock[node].write(core)
    raise ValueError(f"unknown protocol step {label!r}")


def run_timed_workload(
    ds_factory: Callable,
    op_fn: Callable[[int, int], tuple[object, bool]],
    cfg: TimedNrConfig,
    bus: EventBus | None = None,
) -> TimedNrResult:
    """Run `ops_per_core` operations on each of `num_cores` cores.

    `op_fn(core, i)` returns `(op, is_read)` for the i-th operation of a
    core.  Returns latency statistics in simulated nanoseconds.

    Per-operation timing is a :class:`repro.obs.span.Span` driven by the
    simulator's virtual clock, so every duration is an integer count of
    simulated nanoseconds — a traced run (pass `bus`) is byte-identical
    between repetitions."""
    topology = Topology(cfg.num_cores, cores_per_node=cfg.cores_per_node)
    num_nodes = topology.num_nodes
    nr = NodeReplicated(ds_factory, num_nodes=num_nodes)
    lines = _SharedLines(topology, num_nodes, cfg.num_cores)
    sim = Simulator()
    clock = sim_clock(sim)
    result = TimedNrResult()
    cores_by_node = {
        n: topology.cores_on_node(n) for n in range(num_nodes)
    }

    def core_process(core: int):
        node = topology.node_of(core)
        node_cores = cores_by_node[node]
        for i in range(cfg.ops_per_core):
            op, is_read = op_fn(core, i)
            kind = op[0] if isinstance(op, tuple) else str(op)
            span = Span("nr.op", clock=clock, histogram=result.latency,
                        bus=bus, core=core, kind=kind).start()
            if cfg.syscall_overhead:
                yield Delay(topology.costs.syscall_entry)
            if is_read:
                steps = nr.read_steps(op, node, thread=core)
            else:
                steps = nr.execute_steps(op, node, thread=core)
            while True:
                try:
                    label = next(steps)
                except StopIteration:
                    break
                cost = _step_cost(label, core, node, lines, topology, cfg,
                                  node_cores)
                if cost:
                    yield Delay(cost)
            if cfg.post_op_cost_fn is not None:
                extra = cfg.post_op_cost_fn(op, is_read, cfg.num_cores,
                                            topology)
                if extra:
                    yield Delay(extra)
            if cfg.syscall_overhead:
                yield Delay(topology.costs.syscall_exit)
            elapsed = span.finish()
            result.kind(kind).record(elapsed)
            yield Delay(cfg.op_gap_ns)

    for core in range(cfg.num_cores):
        sim.spawn(core_process(core), name=f"core{core}")
    sim.run()

    result.sim_ns = sim.now
    result.batches = sum(r.batches for r in nr.replicas)
    result.max_batch = max(r.max_batch for r in nr.replicas)
    result.log_appends = nr.log.appends
    result.batch_sizes.merge(nr.batch_sizes)
    return result


def run_timed_sharded(
    ds_factory: Callable,
    op_fn: Callable[[int, int], tuple[object, object, bool]],
    cfg: TimedNrConfig,
    num_shards: int,
    bus: EventBus | None = None,
) -> TimedNrResult:
    """Like :func:`run_timed_workload`, but over a :class:`ShardedNr`.

    `op_fn(core, i)` returns `(key, op, is_read)`; the key selects the
    shard, and each shard owns independent cache lines (its own log tail,
    combiner word, and lock), so writes to different shards proceed in
    parallel — the Section 4.1 write-scaling mechanism."""
    from repro.nr.shard import ShardedNr

    topology = Topology(cfg.num_cores, cores_per_node=cfg.cores_per_node)
    num_nodes = topology.num_nodes
    sharded = ShardedNr(ds_factory, num_shards=num_shards,
                        num_nodes=num_nodes)
    lines = [
        _SharedLines(topology, num_nodes, cfg.num_cores)
        for _ in range(num_shards)
    ]
    sim = Simulator()
    clock = sim_clock(sim)
    result = TimedNrResult()
    cores_by_node = {n: topology.cores_on_node(n) for n in range(num_nodes)}

    def core_process(core: int):
        node = topology.node_of(core)
        node_cores = cores_by_node[node]
        for i in range(cfg.ops_per_core):
            key, op, is_read = op_fn(core, i)
            shard = sharded.shard_for(key)
            kind = op[0] if isinstance(op, tuple) else str(op)
            span = Span("nr.op", clock=clock, histogram=result.latency,
                        bus=bus, core=core, kind=kind, shard=shard).start()
            if cfg.syscall_overhead:
                yield Delay(topology.costs.syscall_entry)
            if is_read:
                steps = sharded.read_steps(key, op, node, thread=core)
            else:
                steps = sharded.execute_steps(key, op, node, thread=core)
            while True:
                try:
                    label = next(steps)
                except StopIteration:
                    break
                cost = _step_cost(label, core, node, lines[shard], topology,
                                  cfg, node_cores)
                if cost:
                    yield Delay(cost)
            if cfg.syscall_overhead:
                yield Delay(topology.costs.syscall_exit)
            elapsed = span.finish()
            result.kind(kind).record(elapsed)
            yield Delay(cfg.op_gap_ns)

    for core in range(cfg.num_cores):
        sim.spawn(core_process(core), name=f"core{core}")
    sim.run()
    result.sim_ns = sim.now
    result.batches = sum(
        r.batches for shard in sharded.shards for r in shard.replicas
    )
    result.max_batch = max(
        (r.max_batch for shard in sharded.shards for r in shard.replicas),
        default=0,
    )
    result.log_appends = sum(s.log.appends for s in sharded.shards)
    for shard in sharded.shards:
        result.batch_sizes.merge(shard.batch_sizes)
    return result


def tlb_shootdown_cost(op, is_read, num_cores: int, topology: Topology) -> int:
    """Post-op cost of an unmap: IPI every other core and wait for its
    invlpg acknowledgement (the reason Figure 1c sits above Figure 1b)."""
    if is_read:
        return 0
    others = num_cores - 1
    if others <= 0:
        return topology.costs.tlb_invlpg
    return topology.costs.ipi + others * topology.costs.tlb_invlpg
