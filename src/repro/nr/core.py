"""Node replication: replicas, flat combining, and the step protocol.

The algorithm (Section 4.1 / IronSync):

* each NUMA node holds a *replica* of the sequential data structure;
* mutating operations are published in per-thread *slots*; one thread per
  replica becomes the *combiner*, collects the filled slots, appends the
  batch to the shared log atomically, applies outstanding log entries to the
  local replica under the writer lock, and distributes results;
* read-only operations snapshot the log tail, make sure the local replica
  has applied at least that prefix, then read under the reader lock.

The protocol is written as a *generator of steps*: each ``yield`` marks a
point where other threads may interleave, and everything between two yields
is one atomic shared-memory step.  Three drivers execute these generators:
run-to-completion (:meth:`NodeReplicated.execute`), the adversarial
interleaver (:mod:`repro.nr.interleave`), and the simulated-time executor
(:mod:`repro.nr.timed`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.obs.instruments import Histogram
from repro.nr.log import Log, LogEntry
from repro.nr.rwlock import RwLock

# Process-wide view of combiner behaviour across every NR instance; the
# per-instance population lives in NodeReplicated.batch_sizes.
_BATCHES = obs.counter("nr.batches")


class SequentialDataStructure:
    """Interface NR expects: a sequential DS with mutating `apply` and
    read-only `query`.  (Duck typing suffices; this class documents it.)"""

    def apply(self, op):
        raise NotImplementedError

    def query(self, op):
        raise NotImplementedError


@dataclass
class Replica:
    """One per NUMA node."""

    ds: object
    ltail: int = 0                      # log prefix applied to `ds`
    combiner: int | None = None         # thread id of the active combiner
    slots: dict[int, object] = field(default_factory=dict)
    results: dict[int, object] = field(default_factory=dict)
    lock: RwLock = field(default_factory=RwLock)
    batches: int = 0
    max_batch: int = 0


# Step labels, used by the timed executor to assign costs.
PUBLISH = "publish"
TRY_COMBINE = "try_combine"
COLLECT = "collect"
APPEND = "append"
WLOCK = "wlock"
APPLY = "apply"
RELEASE = "release"
CHECK_RESULT = "check_result"
SPIN = "spin"
READ_TAIL = "read_tail"
RLOCK = "rlock"
READ = "read"
RUNLOCK = "runlock"


class NodeReplicated:
    """A sequential data structure replicated across NUMA nodes."""

    def __init__(self, ds_factory, num_nodes: int = 1,
                 auto_gc_threshold: int | None = None) -> None:
        """`auto_gc_threshold`: when set, a combiner that finishes applying
        truncates the fully-applied log prefix once the log holds more
        than this many entries (bounded memory without a GC thread)."""
        if num_nodes <= 0:
            raise ValueError("need at least one replica")
        self.log = Log()
        self.replicas = [Replica(ds_factory()) for _ in range(num_nodes)]
        self.auto_gc_threshold = auto_gc_threshold
        self.auto_gcs = 0
        #: The flat combiner's batch-size population (one sample per
        #: combine) — the mechanism behind Figure 1b/1c's latency growth,
        #: now a first-class instrument instead of just a max.
        self.batch_sizes = Histogram(name="nr.batch_size")

    @property
    def num_nodes(self) -> int:
        return len(self.replicas)

    # -- run-to-completion driver ------------------------------------------------

    def execute(self, op, node: int = 0, thread: int = 0):
        """Execute a mutating operation synchronously (single-threaded
        driver: the caller always becomes the combiner)."""
        return _drain(self.execute_steps(op, node, thread))

    def execute_ro(self, op, node: int = 0, thread: int = 0):
        """Execute a read-only operation synchronously."""
        return _drain(self.read_steps(op, node, thread))

    # -- the step protocol ----------------------------------------------------------

    def execute_steps(self, op, node: int, thread: int):
        """Generator protocol for one mutating operation."""
        replica = self.replicas[node]
        replica.slots[thread] = op
        yield PUBLISH

        while True:
            if thread in replica.results:
                result = replica.results.pop(thread)
                yield CHECK_RESULT
                return result
            yield CHECK_RESULT

            if replica.combiner is None:
                replica.combiner = thread
                acquired = True
            else:
                acquired = False
            yield TRY_COMBINE

            if not acquired:
                yield SPIN
                continue

            # --- combiner duty ---
            batch = list(replica.slots.items())
            replica.slots.clear()
            yield COLLECT

            entries = [LogEntry(op=o, node=node, thread=t) for t, o in batch]
            self.log.append_batch(entries)
            replica.batches += 1
            replica.max_batch = max(replica.max_batch, len(entries))
            self.batch_sizes.record(len(entries))
            _BATCHES.inc()
            yield APPEND

            while not replica.lock.try_acquire_write():
                yield WLOCK
            yield WLOCK

            tail = self.log.tail
            for entry in self.log.slice_from(replica.ltail, tail):
                result = replica.ds.apply(entry.op)
                if entry.node == node:
                    replica.results[entry.thread] = result
                replica.ltail += 1
                yield APPLY

            replica.lock.release_write()
            replica.combiner = None
            self._maybe_auto_gc()
            yield RELEASE

    def _maybe_auto_gc(self) -> None:
        if (self.auto_gc_threshold is not None
                and len(self.log) > self.auto_gc_threshold):
            if self.log.gc(self.completed_tail()):
                self.auto_gcs += 1

    def read_steps(self, op, node: int, thread: int):
        """Generator protocol for one read-only operation."""
        replica = self.replicas[node]
        observed_tail = self.log.tail
        yield READ_TAIL

        # Ensure the local replica has applied everything up to the
        # observed tail; become a (non-collecting) combiner if needed.
        while replica.ltail < observed_tail:
            if replica.combiner is None:
                replica.combiner = thread
                acquired = True
            else:
                acquired = False
            yield TRY_COMBINE
            if not acquired:
                yield SPIN
                continue
            while not replica.lock.try_acquire_write():
                yield WLOCK
            yield WLOCK
            tail = self.log.tail
            for entry in self.log.slice_from(replica.ltail, tail):
                result = replica.ds.apply(entry.op)
                if entry.node == node:
                    replica.results[entry.thread] = result
                replica.ltail += 1
                yield APPLY
            replica.lock.release_write()
            replica.combiner = None
            yield RELEASE

        while not replica.lock.try_acquire_read():
            yield RLOCK
        yield RLOCK

        result = replica.ds.query(op)
        yield READ

        replica.lock.release_read()
        yield RUNLOCK
        return result

    # -- maintenance ------------------------------------------------------------------

    def completed_tail(self) -> int:
        """The log prefix applied by every replica."""
        return min(r.ltail for r in self.replicas)

    def gc_log(self) -> int:
        """Truncate the fully-applied log prefix; returns entries dropped."""
        return self.log.gc(self.completed_tail())

    def sync_all(self) -> None:
        """Bring every replica up to the current log tail (quiescence)."""
        for node in range(self.num_nodes):
            _drain(self.sync_steps(node, thread=-1 - node))

    def sync_steps(self, node: int, thread: int):
        """Generator protocol: catch the replica up to the current tail
        without performing a query (used by GC and by readers on other
        replicas)."""
        replica = self.replicas[node]
        observed_tail = self.log.tail
        yield READ_TAIL
        while replica.ltail < observed_tail:
            if replica.combiner is None:
                replica.combiner = thread
                acquired = True
            else:
                acquired = False
            yield TRY_COMBINE
            if not acquired:
                yield SPIN
                continue
            while not replica.lock.try_acquire_write():
                yield WLOCK
            yield WLOCK
            tail = self.log.tail
            for entry in self.log.slice_from(replica.ltail, tail):
                result = replica.ds.apply(entry.op)
                if entry.node == node:
                    replica.results[entry.thread] = result
                replica.ltail += 1
                yield APPLY
            replica.lock.release_write()
            replica.combiner = None
            yield RELEASE


def _drain(gen):
    """Run a step generator to completion and return its value."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value
