"""Sequential data structures used with node replication.

Each pairs an efficient mutable implementation (what NR replicates) with a
pure-functional *model step* used by the linearizability checker.
"""

from __future__ import annotations

from repro.immutable import FrozenMap


class Counter:
    """A counter: ops ("add", n) -> new value; query "get" -> value."""

    def __init__(self) -> None:
        self.value = 0

    def apply(self, op):
        kind, amount = op
        if kind != "add":
            raise ValueError(f"unknown counter op {op!r}")
        self.value += amount
        return self.value

    def query(self, op):
        if op != "get":
            raise ValueError(f"unknown counter query {op!r}")
        return self.value


def counter_model_step(state: int, op, is_read):
    """Sequential spec of :class:`Counter` for the checker."""
    if is_read:
        return state, state
    _, amount = op
    return state + amount, state + amount


class KvStore:
    """A map: ("put", k, v) -> old value; ("del", k) -> old value;
    query ("get", k) -> value or None."""

    def __init__(self) -> None:
        self.data: dict = {}

    def apply(self, op):
        kind = op[0]
        if kind == "put":
            _, key, value = op
            old = self.data.get(key)
            self.data[key] = value
            return old
        if kind == "del":
            _, key = op
            return self.data.pop(key, None)
        raise ValueError(f"unknown kv op {op!r}")

    def query(self, op):
        kind, key = op
        if kind != "get":
            raise ValueError(f"unknown kv query {op!r}")
        return self.data.get(key)


def kv_model_step(state: FrozenMap, op, is_read):
    """Sequential spec of :class:`KvStore` for the checker."""
    if is_read:
        _, key = op
        return state, state.get(key)
    kind = op[0]
    if kind == "put":
        _, key, value = op
        return state.set(key, value), state.get(key)
    _, key = op
    if key in state:
        return state.remove(key), state[key]
    return state, None


class VSpaceModel:
    """The abstract address-space DS the kernel replicates with NR.

    Ops mirror the high-level page-table spec at page granularity:
    ("map", va, frame) -> bool mapped; ("unmap", va) -> frame or None;
    query ("resolve", va) -> frame or None.
    """

    def __init__(self) -> None:
        self.pages: dict[int, int] = {}

    def apply(self, op):
        kind = op[0]
        if kind == "map":
            _, va, frame = op
            if va in self.pages:
                return False
            self.pages[va] = frame
            return True
        if kind == "unmap":
            _, va = op
            return self.pages.pop(va, None)
        raise ValueError(f"unknown vspace op {op!r}")

    def query(self, op):
        kind, va = op
        if kind != "resolve":
            raise ValueError(f"unknown vspace query {op!r}")
        return self.pages.get(va)


def vspace_model_step(state: FrozenMap, op, is_read):
    """Sequential spec of :class:`VSpaceModel` for the checker."""
    if is_read:
        _, va = op
        return state, state.get(va)
    kind = op[0]
    if kind == "map":
        _, va, frame = op
        if va in state:
            return state, False
        return state.set(va, frame), True
    _, va = op
    if va in state:
        return state.remove(va), state[va]
    return state, None
