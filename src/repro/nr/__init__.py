"""Node replication (NR) — NrOS's concurrency mechanism.

NR "replicates sequential code and its data structures on each NUMA node and
maintains consistency through an operation log.  It achieves read-concurrency
with a readers-writer lock and write-concurrency through flat combining"
(Section 4.1).  IronSync proved the algorithm linearizable; here the same
theorem is checked dynamically by the Wing-Gong checker over adversarially
interleaved executions.

* :mod:`repro.nr.log` -- the shared operation log with GC
* :mod:`repro.nr.rwlock` -- the per-replica readers-writer lock
* :mod:`repro.nr.core` -- replicas, flat combining, and the step protocol
* :mod:`repro.nr.interleave` -- adversarial interleaving executor
* :mod:`repro.nr.linearizability` -- the Wing-Gong linearizability checker
* :mod:`repro.nr.timed` -- the simulated-time executor behind Figures 1b/1c
* :mod:`repro.nr.proof` -- the `nr-linearizability` verification conditions
"""

from repro.nr.core import NodeReplicated
from repro.nr.log import Log

#: Proof-layer names re-exported lazily: importing the NR runtime must
#: not load the linearizability checker (ghost-code erasure — the exec
#: path stays importable with the proof layer absent).
_PROOF_EXPORTS = ("History", "Invocation", "check_linearizable")

__all__ = [
    "NodeReplicated",
    "Log",
    *_PROOF_EXPORTS,
]


def __getattr__(name: str):
    if name in _PROOF_EXPORTS:
        from repro.nr import linearizability  # repro: allow(ghost-import)

        return getattr(linearizability, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
