"""The `nr-linearizability` verification conditions.

IronSync's theorem — NR keeps a sequential data structure linearizable —
checked over adversarially interleaved executions: each VC runs a workload
mix under several seeded schedules and feeds the resulting history to the
Wing–Gong checker.  Two additional structural VCs assert replica convergence
and GC safety.
"""

from __future__ import annotations

from repro.immutable import EMPTY_MAP
from repro.nr.core import NodeReplicated
from repro.nr.datastructures import (
    Counter,
    KvStore,
    VSpaceModel,
    counter_model_step,
    kv_model_step,
    vspace_model_step,
)
from repro.nr.interleave import ThreadScript, run_interleaved
from repro.nr.linearizability import check_linearizable
from repro.verif.vc import VC


def _lin_vc(name, description, make_nr, scripts_fn, initial_state, model_step,
            seeds=(1, 2, 3)):
    def check():
        for seed in seeds:
            nr = make_nr()
            history = run_interleaved(nr, scripts_fn(), seed=seed)
            result = check_linearizable(history, initial_state, model_step)
            if not result.ok:
                return (f"seed={seed}", result.detail)
        return None

    return VC(name=name, category="nr-linearizability", check=check,
              description=description)


def _counter_scripts_writes(threads, node_of, ops_per_thread=4):
    return [
        ThreadScript(
            thread=t,
            node=node_of(t),
            ops=[(("add", t * 10 + i + 1), False)
                 for i in range(ops_per_thread)],
        )
        for t in range(threads)
    ]


def _counter_scripts_mixed(threads, node_of, ops_per_thread=4):
    scripts = []
    for t in range(threads):
        ops = []
        for i in range(ops_per_thread):
            if (t + i) % 2:
                ops.append(("get", True))
            else:
                ops.append((("add", t + i + 1), False))
        scripts.append(ThreadScript(thread=t, node=node_of(t), ops=ops))
    return scripts


def _kv_scripts(threads, node_of, read_heavy: bool):
    keys = ["a", "b", "c"]
    scripts = []
    for t in range(threads):
        ops = []
        for i in range(4):
            key = keys[(t + i) % len(keys)]
            if read_heavy and (i % 2 == 0):
                ops.append((("get", key), True))
            elif i == 3 and not read_heavy:
                ops.append((("del", key), False))
            else:
                ops.append((("put", key, t * 100 + i), False))
        scripts.append(ThreadScript(thread=t, node=node_of(t), ops=ops))
    return scripts


def _vspace_scripts(threads, node_of):
    pages = [0x1000, 0x2000, 0x3000]
    scripts = []
    for t in range(threads):
        ops = []
        for i in range(4):
            va = pages[(t + i) % len(pages)]
            if i % 3 == 0:
                ops.append((("map", va, (t << 20) | i), False))
            elif i % 3 == 1:
                ops.append((("resolve", va), True))
            else:
                ops.append((("unmap", va), False))
        scripts.append(ThreadScript(thread=t, node=node_of(t), ops=ops))
    return scripts


def linearizability_vcs() -> list[VC]:
    vcs: list[VC] = []

    vcs.append(_lin_vc(
        "nr_counter_2threads_1node",
        "two writers on one replica stay linearizable",
        lambda: NodeReplicated(Counter, num_nodes=1),
        lambda: _counter_scripts_writes(2, lambda t: 0),
        0, counter_model_step,
    ))
    vcs.append(_lin_vc(
        "nr_counter_4threads_2nodes",
        "four writers across two replicas stay linearizable",
        lambda: NodeReplicated(Counter, num_nodes=2),
        lambda: _counter_scripts_writes(4, lambda t: t % 2, ops_per_thread=3),
        0, counter_model_step,
    ))
    vcs.append(_lin_vc(
        "nr_counter_mixed_reads_writes",
        "mixed reads/writes stay linearizable (reads see the log prefix)",
        lambda: NodeReplicated(Counter, num_nodes=2),
        lambda: _counter_scripts_mixed(4, lambda t: t % 2),
        0, counter_model_step,
    ))
    vcs.append(_lin_vc(
        "nr_kv_2threads_1node",
        "kv put/del/get on one replica stays linearizable",
        lambda: NodeReplicated(KvStore, num_nodes=1),
        lambda: _kv_scripts(2, lambda t: 0, read_heavy=False),
        EMPTY_MAP, kv_model_step,
    ))
    vcs.append(_lin_vc(
        "nr_kv_4threads_2nodes_readheavy",
        "read-heavy kv across two replicas stays linearizable",
        lambda: NodeReplicated(KvStore, num_nodes=2),
        lambda: _kv_scripts(4, lambda t: t % 2, read_heavy=True),
        EMPTY_MAP, kv_model_step,
    ))
    vcs.append(_lin_vc(
        "nr_kv_writeheavy_3nodes",
        "write-heavy kv across three replicas stays linearizable",
        lambda: NodeReplicated(KvStore, num_nodes=3),
        lambda: _kv_scripts(3, lambda t: t % 3, read_heavy=False),
        EMPTY_MAP, kv_model_step,
        seeds=(7, 8),
    ))
    vcs.append(_lin_vc(
        "nr_vspace_ops_linearizable",
        "address-space map/unmap/resolve through NR stays linearizable",
        lambda: NodeReplicated(VSpaceModel, num_nodes=2),
        lambda: _vspace_scripts(4, lambda t: t % 2),
        EMPTY_MAP, vspace_model_step,
    ))

    def replicas_converge():
        nr = NodeReplicated(KvStore, num_nodes=3)
        run_interleaved(nr, _kv_scripts(3, lambda t: t % 3, read_heavy=False),
                        seed=42)
        nr.sync_all()
        states = [r.ds.data for r in nr.replicas]
        if not all(s == states[0] for s in states):
            return ("replicas diverged", states)
        tails = {r.ltail for r in nr.replicas}
        if tails != {nr.log.tail}:
            return ("replica tails not at log tail", tails, nr.log.tail)
        return None

    vcs.append(VC(
        name="nr_replicas_converge",
        category="nr-linearizability",
        check=replicas_converge,
        description="after quiescence every replica holds the same state",
    ))

    def gc_safe():
        nr = NodeReplicated(Counter, num_nodes=2)
        history1 = run_interleaved(
            nr, _counter_scripts_writes(2, lambda t: t % 2), seed=5
        )
        nr.sync_all()
        dropped = nr.gc_log()
        if dropped == 0:
            return "GC collected nothing after quiescence"
        history2 = run_interleaved(
            nr, _counter_scripts_writes(2, lambda t: t % 2), seed=6
        )
        merged = history1
        for inv in history2.invocations:
            shifted = type(inv)(
                thread=inv.thread, op=inv.op, result=inv.result,
                invoked_at=inv.invoked_at + 1_000_000,
                responded_at=inv.responded_at + 1_000_000,
                is_read=inv.is_read,
            )
            merged.add(shifted)
        result = check_linearizable(merged, 0, counter_model_step)
        if not result.ok:
            return ("history after GC not linearizable", result.detail)
        return None

    vcs.append(VC(
        name="nr_log_gc_safe",
        category="nr-linearizability",
        check=gc_safe,
        description="log GC of the completed prefix preserves behaviour",
    ))

    def combining_batches():
        nr = NodeReplicated(Counter, num_nodes=1)
        run_interleaved(nr, _counter_scripts_writes(6, lambda t: 0), seed=11)
        if nr.replicas[0].max_batch < 2:
            return "flat combining never batched more than one op"
        return None

    vcs.append(VC(
        name="nr_flat_combining_batches",
        category="nr-linearizability",
        check=combining_batches,
        description="contended execution actually produces multi-op batches",
    ))

    return vcs
