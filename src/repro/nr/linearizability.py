"""The Wing–Gong linearizability checker.

IronSync's theorem — "a sequential data structure replicated with NR remains
linearizable" — is checked here dynamically: given a concurrent history of
invocations and responses, search for a linearization (a total order
respecting real-time order) whose sequential execution reproduces every
response.

The search is the classic Wing & Gong algorithm with memoisation on
(completed-set, state) pairs; histories of a few dozen operations check in
milliseconds when they are linearizable, and counterexamples report the
prefix that cannot be extended.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class Invocation:
    """One completed operation in a concurrent history."""

    thread: int
    op: object
    result: object
    invoked_at: int
    responded_at: int
    is_read: bool = False

    def __post_init__(self):
        if self.responded_at < self.invoked_at:
            raise ValueError("response before invocation")


@dataclass
class History:
    """A complete concurrent history (every invocation has a response)."""

    invocations: list[Invocation] = field(default_factory=list)

    def add(self, invocation: Invocation) -> None:
        self.invocations.append(invocation)

    def __len__(self) -> int:
        return len(self.invocations)


@dataclass
class LinCheckResult:
    ok: bool
    witness: list[int] = field(default_factory=list)  # linearized indices
    explored: int = 0
    detail: str = ""


def check_linearizable(
    history: History,
    initial_state: object,
    step: Callable[[object, object, bool], tuple[object, object]],
) -> LinCheckResult:
    """Check `history` against a sequential model.

    `step(state, op, is_read) -> (new_state, result)` is the sequential
    specification.  States must be hashable.
    """
    ops = history.invocations
    n = len(ops)
    if n == 0:
        return LinCheckResult(ok=True)

    # minimal-response-time pruning: an op may linearize only if no other
    # pending op *responded* before it was invoked.
    explored = 0
    seen: set[tuple[frozenset, object]] = set()

    def candidates(done: frozenset) -> list[int]:
        pending = [i for i in range(n) if i not in done]
        if not pending:
            return []
        earliest_response = min(ops[i].responded_at for i in pending)
        return [i for i in pending if ops[i].invoked_at <= earliest_response]

    def search(done: frozenset, state, order: list[int]) -> list[int] | None:
        nonlocal explored
        key = (done, state)
        if key in seen:
            return None
        seen.add(key)
        if len(done) == n:
            return order
        for i in candidates(done):
            explored += 1
            new_state, result = step(state, ops[i].op, ops[i].is_read)
            if result != ops[i].result:
                continue
            found = search(done | {i}, new_state, order + [i])
            if found is not None:
                return found
        return None

    witness = search(frozenset(), initial_state, [])
    if witness is None:
        return LinCheckResult(
            ok=False,
            explored=explored,
            detail=f"no linearization of {n} operations exists",
        )
    return LinCheckResult(ok=True, witness=witness, explored=explored)
