"""The three instrument kinds of the observability substrate.

* :class:`Counter` — a monotone (well, add-only) accumulator;
* :class:`Gauge` — a point-in-time value with a high-water mark;
* :class:`Histogram` — a mergeable sample population with nearest-rank
  percentiles and the CDF downsampling behind Figure 1a.

The histogram is *the* distribution type of the repository: per-VC
discharge times (:class:`repro.verif.engine.ProofReport`), per-operation
simulated latencies (:class:`repro.sim.stats.LatencyRecorder`), combiner
batch sizes (:class:`repro.nr.core.NodeReplicated`), and filesystem op
timings all store their populations here, so every figure-producing curve
is computed by exactly one implementation of the distribution math.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counter:
    """An add-only accumulator.  ``inc``/``add`` never go below zero-sum
    semantics on purpose: decrements are a :class:`Gauge`'s job."""

    name: str = ""
    labels: tuple = ()
    value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot add {amount}")
        self.value += amount

    add = inc

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return int(self.value)


@dataclass
class Gauge:
    """A point-in-time value; remembers its high-water mark."""

    name: str = ""
    labels: tuple = ()
    value: int | float = 0
    high_water: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, amount: int | float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0
        self.high_water = 0


@dataclass
class Histogram:
    """A mergeable population of samples.

    Keeps the raw samples (populations here are hundreds to a few
    thousands — the paper's own evaluation is 220 VCs), so percentiles
    are exact nearest-rank, merging is concatenation, and the CDF can be
    downsampled without binning error.
    """

    name: str = ""
    labels: tuple = ()
    samples: list[int | float] = field(default_factory=list)

    def record(self, value: int | float) -> None:
        self.samples.append(value)

    def __len__(self) -> int:
        return len(self.samples)

    def reset(self) -> None:
        self.samples.clear()

    # -- summary statistics -------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> int | float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def max(self) -> int | float:
        return max(self.samples, default=0)

    @property
    def min(self) -> int | float:
        return min(self.samples, default=0)

    def percentile(self, p: float) -> int | float:
        """Nearest-rank percentile, ``p`` in [0, 100].

        This is the single implementation of the repo's percentile
        convention (rank = round(p/100 * (n-1)) over the sorted samples);
        :meth:`repro.sim.stats.LatencyRecorder.percentile_ns` is an alias
        of it.  An empty histogram reports 0.
        """
        if not self.samples:
            return 0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of range")
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1,
                          int(round(p / 100 * (len(ordered) - 1)))))
        return ordered[rank]

    def sorted_samples(self) -> list[int | float]:
        return sorted(self.samples)

    def fraction_within(self, bound: int | float) -> float:
        """Cumulative fraction of samples <= `bound` (a CDF point)."""
        if not self.samples:
            return 0.0
        within = sum(1 for s in self.samples if s <= bound)
        return within / len(self.samples)

    def cdf(self, points: int = 50) -> list[tuple[int | float, float]]:
        """(value, cumulative fraction) pairs — the Figure 1a series.

        Downsampled to at most `points` entries, evenly spaced over the
        sorted population and always including the maximum, so plotting
        220 VCs at ``points=50`` yields 50 representative steps rather
        than silently returning all 220.  This is the single
        implementation of the repo's CDF convention;
        :meth:`repro.verif.engine.ProofReport.cdf` delegates here.
        """
        ordered = self.sorted_samples()
        n = len(ordered)
        if not n:
            return []
        if points <= 0:
            raise ValueError(f"points must be positive, got {points}")
        if n <= points:
            return [(value, (i + 1) / n) for i, value in enumerate(ordered)]
        # Evenly spaced ranks 1..n, rounded to integers; the last sample
        # is always rank n (the max), so the CDF still reaches 1.0.
        samples = []
        for j in range(1, points + 1):
            rank = round(j * n / points)
            samples.append((ordered[rank - 1], rank / n))
        return samples

    # -- composition --------------------------------------------------------

    def merge(self, other: "Histogram") -> None:
        """Fold `other`'s population into this one (concatenation: exact
        for every statistic above, unlike bucketed histogram merges)."""
        self.samples.extend(other.samples)

    def snapshot(self) -> dict:
        """A JSON-ready summary (what ``trace summary`` prints)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.max,
        }
