"""`repro.obs` — the unified observability substrate.

One spans/counters/histograms layer for every subsystem that used to
roll its own: the prover's event stream, the simulator's latency
recorder, the fault campaign's per-site tallies, and the raw
``time.perf_counter()`` pairs in the SMT solver and VC discharge path
all feed the instruments here, so the distributional evidence the paper
reports (Figure 1a's CDF, Figures 1b/1c's latency populations) is
produced by exactly one implementation.

Pieces:

* :mod:`repro.obs.instruments` — :class:`Counter`, :class:`Gauge`, and
  the mergeable :class:`Histogram` (nearest-rank percentiles,
  ``cdf(points)``);
* :mod:`repro.obs.span` — :class:`Span`, timing wall-clock work or
  charging simulated nanoseconds under the sim kernel's virtual clock;
* :mod:`repro.obs.events` — the typed, frozen :class:`Event` records,
  the :class:`EventBus` (off by default; free when inactive), JSONL
  export, and the trace schema (:func:`validate_record`);
* :mod:`repro.obs.registry` — the process-wide :class:`Registry` with
  labeled instrument lookup;
* :mod:`repro.obs.console` — the one sink CLI text goes through
  (library code never prints).

Shorthand: ``obs.counter(...)``, ``obs.gauge(...)``,
``obs.histogram(...)``, ``obs.span(...)`` and ``obs.bus()`` operate on
the process-wide registry.
"""

from repro.obs.console import Console, err, get_console, out, set_console
from repro.obs.events import (
    CLOCK_DOMAINS,
    Event,
    EventBus,
    JsonlWriter,
    SCHEMA_REQUIRED,
    make_event,
    validate_jsonl_line,
    validate_record,
)
from repro.obs.instruments import Counter, Gauge, Histogram
from repro.obs.registry import Registry, registry
from repro.obs.span import Span, sim_clock

__all__ = [
    "CLOCK_DOMAINS",
    "Console",
    "Counter",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "JsonlWriter",
    "Registry",
    "SCHEMA_REQUIRED",
    "Span",
    "bus",
    "counter",
    "err",
    "gauge",
    "get_console",
    "histogram",
    "make_event",
    "out",
    "registry",
    "set_console",
    "sim_clock",
    "span",
    "validate_jsonl_line",
    "validate_record",
]


def counter(name: str, **labels) -> Counter:
    """A labeled counter from the process-wide registry."""
    return registry().counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    """A labeled gauge from the process-wide registry."""
    return registry().gauge(name, **labels)


def histogram(name: str, **labels) -> Histogram:
    """A labeled histogram from the process-wide registry."""
    return registry().histogram(name, **labels)


def span(name: str, clock=None, histogram: str | None = None,
         labels: dict | None = None, **fields) -> Span:
    """A span wired to the process-wide registry's bus."""
    return registry().span(name, clock=clock, histogram=histogram,
                           labels=labels, **fields)


def bus() -> EventBus:
    """The process-wide event bus (inactive until enabled/subscribed)."""
    return registry().bus
