"""The console sink: the one place repro writes human-facing text.

Library code never prints; CLI output flows through :func:`out` /
:func:`err`, which a caller can redirect wholesale (tests capture with a
list, the trace CLI tees into a file) by swapping the active
:class:`Console`.  Output is byte-compatible with the ``print()`` calls
it replaced: one line per call, ``\\n``-terminated, resolved against
``sys.stdout``/``sys.stderr`` at call time so pytest's capsys and shell
redirection both keep working.
"""

from __future__ import annotations

import sys


class Console:
    """Writes lines to stdout/stderr (or wherever it is pointed)."""

    def __init__(self, stdout=None, stderr=None) -> None:
        # None = resolve sys.stdout/sys.stderr at write time.
        self._stdout = stdout
        self._stderr = stderr

    def out(self, text: str = "") -> None:
        stream = self._stdout if self._stdout is not None else sys.stdout
        stream.write(f"{text}\n")

    def err(self, text: str = "") -> None:
        stream = self._stderr if self._stderr is not None else sys.stderr
        stream.write(f"{text}\n")

    def out_lines(self, lines, indent: str = "") -> None:
        for line in lines:
            self.out(f"{indent}{line}")


class CapturedConsole(Console):
    """A console that remembers everything (for tests)."""

    def __init__(self) -> None:
        super().__init__()
        self.stdout_lines: list[str] = []
        self.stderr_lines: list[str] = []

    def out(self, text: str = "") -> None:
        self.stdout_lines.append(text)

    def err(self, text: str = "") -> None:
        self.stderr_lines.append(text)


_ACTIVE = Console()


def get_console() -> Console:
    return _ACTIVE


def set_console(console: Console) -> Console:
    """Install `console` as the active sink; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = console
    return previous


def out(text: str = "") -> None:
    _ACTIVE.out(text)


def err(text: str = "") -> None:
    _ACTIVE.err(text)


def out_lines(lines, indent: str = "") -> None:
    _ACTIVE.out_lines(lines, indent=indent)
