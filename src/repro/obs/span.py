"""Spans: timed regions that work in either clock domain.

A span times real wall-clock work by default (``time.perf_counter``), or
charges **simulated nanoseconds** when given the virtual clock of a
:class:`repro.sim.kernel.Simulator` (``clock=lambda: sim.now``).  The
second mode is what keeps deterministic runs deterministic: a traced
simulated workload produces byte-identical JSONL on every run, because
no wall-clock value ever enters the trace.

A span can deliver its elapsed time to up to two sinks:

* a :class:`repro.obs.instruments.Histogram` (the duration joins a
  population — this is how every latency figure is fed), and
* an :class:`repro.obs.events.EventBus` (a ``name`` event with ``dur``
  appears in the trace — free when the bus is inactive).

Spans compose with generator-style simulated processes too: because the
clock is sampled only at :meth:`start` and :meth:`finish`, a process may
``yield`` between the two and the span charges exactly the simulated
time that passed.
"""

from __future__ import annotations

import time


class Span:
    """One timed region.  Usable as a context manager or via explicit
    ``start()`` / ``finish()`` (the latter for generator code)."""

    __slots__ = ("name", "clock", "clock_domain", "histogram", "bus",
                 "fields", "t0", "elapsed")

    def __init__(self, name: str, clock=None, clock_domain: str | None = None,
                 histogram=None, bus=None, **fields) -> None:
        self.name = name
        self.clock = clock if clock is not None else time.perf_counter
        # Wall is the default domain; passing any custom clock without
        # saying otherwise marks the span as simulated time.
        if clock_domain is None:
            clock_domain = "wall" if clock is None else "sim"
        self.clock_domain = clock_domain
        self.histogram = histogram
        self.bus = bus
        self.fields = fields
        self.t0: int | float | None = None
        self.elapsed: int | float = 0

    def start(self) -> "Span":
        self.t0 = self.clock()
        return self

    def finish(self) -> int | float:
        """Stop the span; records/emits and returns the elapsed time."""
        if self.t0 is None:
            raise RuntimeError(f"span {self.name!r} finished before start")
        end = self.clock()
        self.elapsed = end - self.t0
        if self.histogram is not None:
            self.histogram.record(self.elapsed)
        if self.bus is not None and self.bus.active:
            self.bus.emit(self.name, t=end, clock=self.clock_domain,
                          dur=self.elapsed, **self.fields)
        return self.elapsed

    def __enter__(self) -> "Span":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()


def sim_clock(simulator):
    """The virtual clock of a simulator as a span clock (integer ns)."""
    return lambda: simulator.now
