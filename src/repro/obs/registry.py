"""The process-wide instrument registry.

``registry()`` returns the singleton every instrumented layer shares;
lookups are by ``(name, labels)``, creating the instrument on first use:

    from repro import obs
    obs.counter("block.io_retries").inc()
    obs.histogram("fs.op_seconds", op="write_at").record(dt)

The singleton object is never replaced (module-level instrument handles
stay valid for the life of the process); tests and the CLI reset its
*state* with :meth:`Registry.reset`, which zeroes every instrument in
place and clears the bus.
"""

from __future__ import annotations

from repro.obs.events import EventBus
from repro.obs.instruments import Counter, Gauge, Histogram
from repro.obs.span import Span


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Registry:
    """Labeled instrument lookup plus the event bus of a scope."""

    def __init__(self) -> None:
        self._instruments: dict[tuple, object] = {}
        self.bus = EventBus()

    # -- lookup -------------------------------------------------------------

    def _get(self, kind, name: str, labels: dict):
        key = (kind.__name__, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = kind(name=name, labels=_label_key(labels))
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def span(self, name: str, clock=None, histogram: str | None = None,
             labels: dict | None = None, **fields) -> Span:
        """A span wired to this registry's bus.

        When `histogram` is given, the duration also lands in that
        histogram, labeled by `labels` only — `fields` (which may be
        high-cardinality, e.g. a VC name) go to the trace event but
        never mint new instruments."""
        labels = labels or {}
        hist = self.histogram(histogram, **labels) if histogram else None
        return Span(name, clock=clock, histogram=hist, bus=self.bus,
                    **labels, **fields)

    # -- enumeration --------------------------------------------------------

    def instruments(self) -> list:
        """Every registered instrument, in deterministic (key) order."""
        return [self._instruments[key]
                for key in sorted(self._instruments)]

    def counters(self) -> list[Counter]:
        return [i for i in self.instruments() if isinstance(i, Counter)]

    def gauges(self) -> list[Gauge]:
        return [i for i in self.instruments() if isinstance(i, Gauge)]

    def histograms(self) -> list[Histogram]:
        return [i for i in self.instruments() if isinstance(i, Histogram)]

    def snapshot(self) -> dict:
        """A JSON-ready dump of every instrument's current state."""
        out: dict = {}
        for instrument in self.instruments():
            label = ",".join(f"{k}={v}" for k, v in instrument.labels)
            key = f"{instrument.name}{{{label}}}" if label else instrument.name
            if isinstance(instrument, Histogram):
                out[key] = instrument.snapshot()
            elif isinstance(instrument, Gauge):
                out[key] = {"value": instrument.value,
                            "high_water": instrument.high_water}
            else:
                out[key] = instrument.value
        return out

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Zero every instrument *in place* (handles stay valid) and
        clear the bus."""
        for instrument in self._instruments.values():
            instrument.reset()
        self.bus.clear()


_GLOBAL = Registry()


def registry() -> Registry:
    """The process-wide registry (a true singleton)."""
    return _GLOBAL
