"""The structured event bus: typed, frozen records with JSONL export.

Design points:

* **frozen records** — an :class:`Event` is immutable once emitted;
  attributes beyond the two required fields (`name`, `t`) live in a
  sorted tuple of key/value pairs, so equal events compare and hash
  equal and JSONL serialisation is canonical (deterministic runs export
  byte-identical traces);
* **off by default** — ``emit`` on a disabled bus with no subscribers is
  a few instruction no-op, so instrumented hot paths (block driver,
  RDP, filesystem) cost nothing until someone turns tracing on
  (``--trace`` on the CLIs, or a test subscribing a sink);
* **one schema** — every line of an exported trace validates against
  :func:`validate_record`, which is what ``python -m repro trace
  validate`` and the CI trace job enforce.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: JSON scalar types an event field may carry.
_SCALARS = (str, int, float, bool, type(None))


def _canonical_fields(fields: dict) -> tuple:
    return tuple(sorted(fields.items()))


@dataclass(frozen=True)
class Event:
    """One observed fact: a name, a timestamp, and scalar attributes.

    `t` is in the emitter's clock domain — wall-clock seconds since the
    run started for real work, simulated integer nanoseconds when the
    emitter runs under :class:`repro.sim.kernel.Simulator`'s virtual
    clock.  The ``clock`` field says which ("wall" or "sim").
    """

    name: str
    t: int | float = 0
    clock: str = "wall"
    fields: tuple = ()

    def get(self, key: str, default=None):
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def to_dict(self) -> dict:
        record = {"name": self.name, "t": self.t, "clock": self.clock}
        for key, value in self.fields:
            record[key] = value
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


def make_event(name: str, t: int | float = 0, clock: str = "wall",
               **fields) -> Event:
    """Build a frozen :class:`Event`, validating field values early."""
    for key, value in fields.items():
        if not isinstance(value, _SCALARS):
            raise TypeError(
                f"event field {key!r} must be a JSON scalar, "
                f"got {type(value).__name__}")
    return Event(name=name, t=t, clock=clock,
                 fields=_canonical_fields(fields))


class EventBus:
    """Collects events and fans them out to subscribers.

    A bus starts *disabled*: events are dropped unless recording was
    switched on (:meth:`enable`) or at least one subscriber is attached.
    This keeps always-on instrumentation free when nobody is watching and
    memory bounded in long library runs.
    """

    def __init__(self, record: bool = False) -> None:
        self.events: list[Event] = []
        self._record = record
        self._subscribers: list = []

    # -- lifecycle ----------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._record or bool(self._subscribers)

    def enable(self) -> None:
        """Start keeping emitted events in :attr:`events`."""
        self._record = True

    def disable(self) -> None:
        self._record = False

    def clear(self) -> None:
        self.events.clear()

    def subscribe(self, sink) -> None:
        """`sink` is called with every subsequent :class:`Event`."""
        self._subscribers.append(sink)

    def unsubscribe(self, sink) -> None:
        self._subscribers.remove(sink)

    # -- emission -----------------------------------------------------------

    def emit(self, name: str, t: int | float = 0, clock: str = "wall",
             **fields) -> Event | None:
        """Emit one event; returns it, or None when the bus is inactive."""
        if not self.active:
            return None
        event = make_event(name, t=t, clock=clock, **fields)
        return self.emit_event(event)

    def emit_event(self, event: Event) -> Event | None:
        if not self.active:
            return None
        if self._record:
            self.events.append(event)
        for sink in self._subscribers:
            sink(event)
        return event

    # -- queries ------------------------------------------------------------

    def of_name(self, name: str) -> list[Event]:
        return [e for e in self.events if e.name == name]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for event in self.events:
            out[event.name] = out.get(event.name, 0) + 1
        return out

    # -- export -------------------------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(e.to_json() + "\n" for e in self.events)

    def export_jsonl(self, path: str) -> int:
        """Write every recorded event, one JSON object per line."""
        with open(path, "w", encoding="utf-8") as fh:
            for event in self.events:
                fh.write(event.to_json() + "\n")
        return len(self.events)


class JsonlWriter:
    """A subscriber that streams events straight to a JSONL file.

    Line-buffered on purpose: every event is flushed as one write, so a
    forked worker process (the prover's process pool inherits the bus and
    this writer) never duplicates a parent's half-flushed buffer and
    never tears a line — worker-side spans simply append to the same
    trace.  `count` is per-process; the file may hold more lines than
    the parent counted."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.count = 0
        self._fh = open(path, "w", encoding="utf-8", buffering=1)

    def __call__(self, event: Event) -> None:
        self._fh.write(event.to_json() + "\n")
        self.count += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


# ---------------------------------------------------------------------------
# The trace schema
# ---------------------------------------------------------------------------

#: Required keys of every trace record and their accepted types.
SCHEMA_REQUIRED = {
    "name": (str,),
    "t": (int, float),
    "clock": (str,),
}

#: Accepted values of the `clock` discriminator.
CLOCK_DOMAINS = ("wall", "sim")


def validate_record(record: object) -> list[str]:
    """Validate one parsed JSONL record; returns a list of problems
    (empty = valid).  This is the schema the CI trace job enforces."""
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    for key, types in SCHEMA_REQUIRED.items():
        if key not in record:
            problems.append(f"missing required key {key!r}")
        elif not isinstance(record[key], types) or isinstance(record[key],
                                                              bool):
            problems.append(
                f"key {key!r} has type {type(record[key]).__name__}")
    if isinstance(record.get("name"), str) and not record["name"]:
        problems.append("empty event name")
    if "clock" in record and record.get("clock") not in CLOCK_DOMAINS:
        problems.append(f"unknown clock domain {record.get('clock')!r}")
    if isinstance(record.get("t"), (int, float)) \
            and not isinstance(record.get("t"), bool) and record["t"] < 0:
        problems.append(f"negative timestamp {record['t']}")
    for key, value in record.items():
        if not isinstance(key, str):
            problems.append(f"non-string key {key!r}")
        elif key not in SCHEMA_REQUIRED and not isinstance(value, _SCALARS):
            problems.append(
                f"field {key!r} is not a JSON scalar "
                f"({type(value).__name__})")
    return problems


def validate_jsonl_line(line: str) -> list[str]:
    """Parse + validate one line of a trace file."""
    try:
        record = json.loads(line)
    except ValueError as exc:
        return [f"not JSON: {exc}"]
    return validate_record(record)
