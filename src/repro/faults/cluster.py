"""The ``cluster`` fault campaign: attacking the replicated KV service.

Three scenarios, all through the real deployment (kernels, NICs, links,
the verified UDP stack, NR-backed shards — no mocks):

* **node crash at a message boundary** — a rule at site
  ``cluster.node.*`` fires while some node is mid-inbox, fail-stopping
  it between two datagrams.  The failure detector must promote the
  surviving replica and the invariant under attack is the service's
  contract: *no acknowledged write may be lost* and every client keeps
  read-your-writes.
* **link partition + heal** — rules at site ``cluster.link`` sever
  cables for a bounded number of ticks.  Requests may degrade into
  client-visible retries; the membership protocol must reconverge after
  the heal and the durability audit must still find every acked write.
* **replica lag** — rules at site ``cluster.repl`` delay the primary's
  replica forwards.  Acks stall (the primary may not acknowledge until
  the replica applied), so the only acceptable effect is latency; a
  fast-acked-then-lost write would be a violation.

Classification follows the campaign convention: injections that the
service absorbed with the contract intact are *survived*; client-visible
failures (typed, reported request failures) are *degraded*; a lost
acknowledged write, a read-your-writes violation, or an undrained
request is *failed* and lands in :attr:`CampaignReport.violations`.
"""

from __future__ import annotations

from repro.faults.campaign import CampaignReport
from repro.faults.plan import FaultPlan, FaultRule


def _run_deployment(seed: int, plan: FaultPlan, ops: int,
                    num_nodes: int = 3, rf: int = 2):
    from repro.cluster.deploy import Deployment
    from repro.cluster.workload import WorkloadProfile, run_workload
    from repro.obs.registry import Registry

    deployment = Deployment(num_nodes, rf=rf, fault_plan=plan,
                            registry=Registry())
    report = run_workload(deployment,
                          WorkloadProfile(ops=ops, seed=seed))
    return deployment, report


def _classify(report, wl, site_name: str, plan: FaultPlan,
              note: str) -> None:
    """Shared outcome accounting for one cluster scenario."""
    site = report.site(site_name)
    site.injected += plan.injections
    before = len(report.violations)
    for problem in wl.lost_acked_writes:
        report.violation(site_name, f"acked write lost: {problem}")
    for problem in wl.ryw_violations:
        report.violation(site_name, f"read-your-writes: {problem}")
    if wl.undrained:
        report.violation(site_name,
                         f"{wl.undrained} requests never completed")
    if len(report.violations) != before:
        return
    if wl.failed:
        site.degraded += min(wl.failed, plan.injections)
        site.survived += max(0, plan.injections - wl.failed)
    else:
        site.survived += plan.injections
    report.notes.append(note)


def _cluster_node_crash(seed: int, report: CampaignReport) -> None:
    plan = FaultPlan(seed, rules=[
        FaultRule(site="cluster.node.*", kind="crash", at=120),
    ])
    deployment, wl = _run_deployment(seed, plan, ops=500)
    if plan.injections == 0:
        report.violation("cluster.node",
                         "crash rule never reached its trigger")
        return
    dead = sorted(set(deployment.nodes) - set(deployment.alive_nodes))
    _classify(report, wl, "cluster.node", plan,
              f"cluster.node: {','.join(dead) or 'nobody'} fail-stopped "
              f"at a message boundary; {wl.acked}/{wl.issued} ops acked, "
              f"{wl.audited_keys} acked keys audited intact after "
              f"failover ({wl.retries} client retries)")


def _cluster_partition(seed: int, report: CampaignReport) -> None:
    plan = FaultPlan(seed, rules=[
        FaultRule(site="cluster.link", kind="partition",
                  probability=0.001, max_triggers=3),
    ])
    deployment, wl = _run_deployment(seed, plan, ops=500)
    if plan.injections == 0:
        report.violation("cluster.link", "no partition ever fired")
        return
    _classify(report, wl, "cluster.link", plan,
              f"cluster.link: {deployment.partitions.value} link "
              f"partitions injected and healed; {wl.acked}/{wl.issued} "
              f"ops acked, durability audit clean "
              f"({wl.retries} client retries)")


def _cluster_replica_lag(seed: int, report: CampaignReport) -> None:
    plan = FaultPlan(seed, rules=[
        FaultRule(site="cluster.repl", kind="lag", probability=0.25),
    ])
    _, wl = _run_deployment(seed, plan, ops=500)
    if plan.injections == 0:
        report.violation("cluster.repl", "no replica forward ever lagged")
        return
    _classify(report, wl, "cluster.repl", plan,
              f"cluster.repl: {plan.injections} replica forwards lagged; "
              f"acks waited (no early acknowledgement), "
              f"{wl.acked}/{wl.issued} ops acked, audit clean")


def run_cluster_campaign(seed: int = 1) -> CampaignReport:
    report = CampaignReport("cluster", seed)
    _cluster_node_crash(seed, report)
    _cluster_partition(seed, report)
    _cluster_replica_lag(seed, report)
    return report
