"""The ``cluster`` fault campaign: attacking the replicated KV service.

Five scenarios, all through the real deployment (kernels, NICs, links,
the verified UDP stack, NR-backed shards, per-node WALs on the verified
filesystem — no mocks):

* **node crash at a message boundary** — a rule at site
  ``cluster.node.*`` fires while some node is mid-inbox, fail-stopping
  it between two datagrams.  The failure detector must promote the
  surviving replica and the invariant under attack is the service's
  contract: *no acknowledged write may be lost* and every client keeps
  read-your-writes.
* **link partition + heal** — rules at site ``cluster.link`` sever
  cables for a bounded number of ticks.  Requests may degrade into
  client-visible retries; the membership protocol must reconverge after
  the heal and the durability audit must still find every acked write.
* **replica lag** — rules at site ``cluster.repl`` delay the primary's
  replica forwards.  Acks stall (the primary may not acknowledge until
  the replica applied), so the only acceptable effect is latency; a
  fast-acked-then-lost write would be a violation.
* **crash + restart** — the node-crash scenario with
  ``auto_restart_delay`` armed: the killed node must remount its disk,
  fsck clean, replay its WAL, rejoin via the join/pull protocol, and
  return to serving — all mid-workload, with the durability audit and
  read-your-writes checks still green (site ``cluster.restart``).
* **WAL write-boundary crash matrix** — :func:`run_wal_crash_matrix`
  kills one node's *disk* at every sector-write boundary its WAL (and
  compaction) generates during a workload, restarts the node from the
  surviving image each time, and requires every crash point to be
  fsck-recoverable with the node back in service and zero acked-write
  loss (site ``cluster.wal``) — the cluster-level extension of the
  PR 2 filesystem crash matrix.

Classification follows the campaign convention: injections that the
service absorbed with the contract intact are *survived*; client-visible
failures (typed, reported request failures) are *degraded*; a lost
acknowledged write, a read-your-writes violation, or an undrained
request is *failed* and lands in :attr:`CampaignReport.violations`.
"""

from __future__ import annotations

from repro.faults.campaign import CampaignReport
from repro.faults.crash import is_recoverable
from repro.faults.plan import FaultPlan, FaultRule


def _run_deployment(seed: int, plan: FaultPlan, ops: int,
                    num_nodes: int = 3, rf: int = 2,
                    auto_restart_delay: int | None = None):
    from repro.cluster.deploy import Deployment
    from repro.cluster.workload import WorkloadProfile, run_workload
    from repro.obs.registry import Registry

    deployment = Deployment(num_nodes, rf=rf, fault_plan=plan,
                            registry=Registry(), seed=seed,
                            auto_restart_delay=auto_restart_delay)
    report = run_workload(deployment,
                          WorkloadProfile(ops=ops, seed=seed))
    return deployment, report


def _classify(report, wl, site_name: str, plan: FaultPlan,
              note: str) -> None:
    """Shared outcome accounting for one cluster scenario."""
    site = report.site(site_name)
    site.injected += plan.injections
    before = len(report.violations)
    for problem in wl.lost_acked_writes:
        report.violation(site_name, f"acked write lost: {problem}")
    for problem in wl.ryw_violations:
        report.violation(site_name, f"read-your-writes: {problem}")
    if wl.undrained:
        report.violation(site_name,
                         f"{wl.undrained} requests never completed")
    if len(report.violations) != before:
        return
    if wl.failed:
        site.degraded += min(wl.failed, plan.injections)
        site.survived += max(0, plan.injections - wl.failed)
    else:
        site.survived += plan.injections
    report.notes.append(note)


def _cluster_node_crash(seed: int, report: CampaignReport) -> None:
    plan = FaultPlan(seed, rules=[
        FaultRule(site="cluster.node.*", kind="crash", at=120),
    ])
    deployment, wl = _run_deployment(seed, plan, ops=500)
    if plan.injections == 0:
        report.violation("cluster.node",
                         "crash rule never reached its trigger")
        return
    dead = sorted(set(deployment.nodes) - set(deployment.alive_nodes))
    _classify(report, wl, "cluster.node", plan,
              f"cluster.node: {','.join(dead) or 'nobody'} fail-stopped "
              f"at a message boundary; {wl.acked}/{wl.issued} ops acked, "
              f"{wl.audited_keys} acked keys audited intact after "
              f"failover ({wl.retries} client retries)")


def _cluster_partition(seed: int, report: CampaignReport) -> None:
    plan = FaultPlan(seed, rules=[
        FaultRule(site="cluster.link", kind="partition",
                  probability=0.001, max_triggers=3),
    ])
    deployment, wl = _run_deployment(seed, plan, ops=500)
    if plan.injections == 0:
        report.violation("cluster.link", "no partition ever fired")
        return
    _classify(report, wl, "cluster.link", plan,
              f"cluster.link: {deployment.partitions.value} link "
              f"partitions injected and healed; {wl.acked}/{wl.issued} "
              f"ops acked, durability audit clean "
              f"({wl.retries} client retries)")


def _cluster_replica_lag(seed: int, report: CampaignReport) -> None:
    plan = FaultPlan(seed, rules=[
        FaultRule(site="cluster.repl", kind="lag", probability=0.25),
    ])
    _, wl = _run_deployment(seed, plan, ops=500)
    if plan.injections == 0:
        report.violation("cluster.repl", "no replica forward ever lagged")
        return
    _classify(report, wl, "cluster.repl", plan,
              f"cluster.repl: {plan.injections} replica forwards lagged; "
              f"acks waited (no early acknowledgement), "
              f"{wl.acked}/{wl.issued} ops acked, audit clean")


def _cluster_crash_restart(seed: int, report: CampaignReport) -> None:
    plan = FaultPlan(seed, rules=[
        FaultRule(site="cluster.node.*", kind="crash", at=150),
    ])
    deployment, wl = _run_deployment(seed, plan, ops=500,
                                     auto_restart_delay=200)
    if plan.injections == 0:
        report.violation("cluster.restart",
                         "crash rule never reached its trigger")
        return
    site = "cluster.restart"
    before = len(report.violations)
    if wl.restarts == 0:
        report.violation(site, "killed node was never restarted")
    for rec in wl.recovery:
        node = deployment.nodes[rec["node"]]
        if not rec["serving"]:
            report.violation(site, f"{rec['node']} restarted but never "
                                   f"returned to serving")
        for issue in node.fsck_issues:
            if not is_recoverable(issue):
                report.violation(site, f"{rec['node']} remount fsck: "
                                       f"{issue}")
    if len(report.violations) != before:
        return
    recs = wl.recovery
    _classify(report, wl, site, plan,
              f"cluster.restart: {plan.injections} injected crash(es), "
              f"{wl.restarts} restart(s); "
              + "; ".join(
                  f"{r['node']} replayed {r['replayed_records']} wal "
                  f"records ({r['recovered_keys']} keys, "
                  f"{r['fsck_issues']} fsck issues), serving after "
                  f"{r.get('recovery_ticks', '?')} ticks" for r in recs)
              + f"; {wl.acked}/{wl.issued} ops acked, audit clean")


def run_wal_crash_matrix(seed: int = 1, ops: int = 120,
                         compact_every: int = 16,
                         target: str = "node1") -> "CrashMatrixReport":
    """Kill `target`'s disk at every write boundary, restart, audit.

    Pass 1 runs the seeded workload undisturbed and counts the sector
    writes the target's WAL + compaction generate; pass 2 re-runs it
    once per boundary with a crash armed at exactly that write.  The
    node fail-stops when the disk dies, the deployment restarts it from
    the surviving platter image, and the crash point passes only if the
    remount fsck is clean-or-recoverable, the node returns to serving,
    and the workload's durability and session invariants hold."""
    from repro.cluster.deploy import Deployment
    from repro.cluster.workload import WorkloadProfile, run_workload
    from repro.faults.crash import CrashMatrixReport, CrashPointResult
    from repro.obs.registry import Registry

    def build() -> "Deployment":
        return Deployment(3, rf=2, registry=Registry(), seed=seed,
                          compact_every=compact_every,
                          auto_restart_delay=150)

    profile = WorkloadProfile(ops=ops, seed=seed)
    report = CrashMatrixReport(scenario=f"cluster-wal/{target}")

    # Pass 1: count the target's write boundaries on an undisturbed run.
    deployment = build()
    disk = deployment.kernels[target].disk
    before = disk.writes
    run_workload(deployment, profile)
    report.total_writes = disk.writes - before

    # Pass 2: one full kill+restart run per crash point.
    for n in range(1, report.total_writes + 1):
        deployment = build()
        plan = FaultPlan(seed=n, rules=[
            FaultRule(site="disk.write", kind="crash", at=n),
        ])
        deployment.kernels[target].disk.fault_plan = plan
        wl = run_workload(deployment, profile)
        issues: list[str] = []
        if plan.injections == 0:
            issues.append(f"crash at write {n} never fired "
                          f"(non-deterministic run?)")
        node = deployment.nodes[target]
        issues.extend(node.fsck_issues)
        if not (node.alive and node.state == "serving"):
            issues.append(f"{target} not back to serving after restart")
        for problem in wl.lost_acked_writes:
            issues.append(f"acked write lost: {problem}")
        for problem in wl.ryw_violations:
            issues.append(f"read-your-writes: {problem}")
        if wl.undrained:
            issues.append(f"{wl.undrained} requests never completed")
        report.points.append(CrashPointResult(write_number=n,
                                              issues=issues))
    return report


def _cluster_wal_matrix(seed: int, report: CampaignReport) -> None:
    # a reduced matrix (still covering append + compaction boundaries)
    # keeps the campaign fast; CI's cluster-recovery job runs the full
    # run_wal_crash_matrix() at its default size
    matrix = run_wal_crash_matrix(seed=seed, ops=24, compact_every=4)
    site = report.site("cluster.wal")
    site.injected += matrix.crash_points
    for violation in matrix.violations:
        report.violation("cluster.wal", violation)
    if matrix.ok:
        site.survived += matrix.clean
        site.degraded += matrix.degraded
        report.notes.append(f"cluster.wal: {matrix.summary()}")


def run_cluster_campaign(seed: int = 1) -> CampaignReport:
    report = CampaignReport("cluster", seed)
    _cluster_node_crash(seed, report)
    _cluster_partition(seed, report)
    _cluster_replica_lag(seed, report)
    _cluster_crash_restart(seed, report)
    _cluster_wal_matrix(seed, report)
    return report
