"""Crash-recovery harness: kill the disk at every write boundary.

The crash-consistency model is the classic one: sector writes are atomic,
power can be lost *between* any two of them.  For a filesystem scenario
(a callable driving a mounted :class:`~repro.nros.fs.fs.FileSystem`), the
harness

1. runs the scenario once against a pristine volume to count its write
   boundaries W;
2. for each crash point n in 1..W: restores the pristine image, arms a
   ``crash``-at-write-n :class:`~repro.faults.plan.FaultPlan` rule on the
   disk, re-runs the scenario until :class:`DiskCrash` fires, then
   *remounts* the surviving image and audits it with
   :func:`repro.nros.fs.fsck.fsck`.

A crash point passes when the volume remounts and every fsck issue is in
the *recoverable* class — resource leaks a collector can reclaim (leaked
blocks, orphan inodes, stale link counts).  Structural damage (cross-linked
blocks, corrupt directories, entries naming freed inodes) fails the point:
those are exactly the states the filesystem's write ordering exists to
make unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.plan import FaultPlan, FaultRule
from repro.hw.devices.disk import Disk, DiskCrash
from repro.nros.drivers.block import BlockDriver
from repro.nros.fs.fs import FileSystem
from repro.nros.fs.fsck import fsck

#: fsck issue prefixes a crash may legitimately leave behind: resources
#: that leaked (and a repair pass could reclaim), never dangling structure.
RECOVERABLE_MARKERS = (
    "leaked block",
    "orphan inode",
    "nlink",
)


def is_recoverable(issue: str) -> bool:
    return any(marker in issue for marker in RECOVERABLE_MARKERS)


@dataclass
class CrashPointResult:
    write_number: int
    issues: list[str]

    @property
    def clean(self) -> bool:
        return not self.issues

    @property
    def ok(self) -> bool:
        return all(is_recoverable(issue) for issue in self.issues)


@dataclass
class CrashMatrixReport:
    scenario: str
    total_writes: int = 0
    points: list[CrashPointResult] = field(default_factory=list)

    @property
    def crash_points(self) -> int:
        return len(self.points)

    @property
    def clean(self) -> int:
        return sum(1 for p in self.points if p.clean)

    @property
    def degraded(self) -> int:
        return sum(1 for p in self.points if p.ok and not p.clean)

    @property
    def violations(self) -> list[str]:
        out = []
        for point in self.points:
            for issue in point.issues:
                if not is_recoverable(issue):
                    out.append(f"{self.scenario} @ write "
                               f"{point.write_number}: {issue}")
        return out

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        return (f"{self.scenario}: {self.crash_points} crash points "
                f"({self.total_writes} writes), {self.clean} clean, "
                f"{self.degraded} recoverable, "
                f"{len(self.violations)} violations")


def _fresh_volume(num_sectors: int) -> tuple[Disk, FileSystem]:
    disk = Disk(num_sectors)
    driver = BlockDriver(disk)
    fs = FileSystem.mkfs(driver, num_inodes=64)
    return disk, fs


def run_crash_matrix(scenario, name: str = "scenario",
                     num_sectors: int = 64,
                     setup=None) -> CrashMatrixReport:
    """Crash `scenario` at every write boundary and audit recovery.

    `scenario(fs)` drives a mounted filesystem; the optional `setup(fs)`
    runs before the pristine image is taken (its writes are not crash
    points — they model pre-existing state)."""
    report = CrashMatrixReport(scenario=name)

    # Pass 1: count the scenario's write boundaries on a pristine volume.
    disk, fs = _fresh_volume(num_sectors)
    if setup is not None:
        setup(fs)
    pristine = disk.snapshot()
    writes_before = disk.writes
    scenario(fs)
    report.total_writes = disk.writes - writes_before

    # Pass 2: one run per crash point.
    for n in range(1, report.total_writes + 1):
        plan = FaultPlan(seed=n, rules=[
            FaultRule(site="disk.write", kind="crash", at=n),
        ])
        disk = Disk(num_sectors, fault_plan=plan)
        disk.restore(pristine)
        driver = BlockDriver(disk)
        fs = FileSystem(driver)
        try:
            scenario(fs)
        except DiskCrash:
            pass
        else:
            raise AssertionError(
                f"{name}: crash at write {n} never fired "
                f"(non-deterministic scenario?)")

        # power is gone; remount whatever reached the platter
        survivor = Disk(num_sectors)
        survivor.restore(disk.snapshot())
        remounted = FileSystem(BlockDriver(survivor))
        issues = fsck(remounted)
        report.points.append(CrashPointResult(write_number=n, issues=issues))
    return report


# -- canonical scenarios (shared by tests and the disk campaign) -----------


def scenario_create(fs: FileSystem) -> None:
    fs.create("/a.txt")
    fs.mkdir("/d")
    fs.create("/d/b.txt")


def scenario_write(fs: FileSystem) -> None:
    inum = fs.create("/data")
    fs.write_at(inum, 0, b"x" * 5000)          # direct blocks
    fs.write_at(inum, 5000, b"y" * 3000)


def scenario_rename(fs: FileSystem) -> None:
    fs.rename("/old.txt", "/new.txt")
    fs.rename("/d1/f.txt", "/d2/f.txt")


def scenario_rename_setup(fs: FileSystem) -> None:
    inum = fs.create("/old.txt")
    fs.write_at(inum, 0, b"payload")
    fs.mkdir("/d1")
    fs.mkdir("/d2")
    inum = fs.create("/d1/f.txt")
    fs.write_at(inum, 0, b"moved")


def scenario_unlink(fs: FileSystem) -> None:
    fs.unlink("/f1.txt")
    fs.unlink("/d/f2.txt")
    fs.unlink("/d")


def scenario_unlink_setup(fs: FileSystem) -> None:
    inum = fs.create("/f1.txt")
    fs.write_at(inum, 0, b"z" * 9000)          # spills into a second block
    fs.mkdir("/d")
    inum = fs.create("/d/f2.txt")
    fs.write_at(inum, 0, b"w" * 100)


def scenario_link(fs: FileSystem) -> None:
    fs.link("/orig", "/alias")
    fs.unlink("/orig")


def scenario_link_setup(fs: FileSystem) -> None:
    inum = fs.create("/orig")
    fs.write_at(inum, 0, b"shared")


#: name -> (scenario, setup | None); the matrix the tests parametrize over.
CRASH_SCENARIOS = {
    "create": (scenario_create, None),
    "write": (scenario_write, None),
    "rename": (scenario_rename, scenario_rename_setup),
    "unlink": (scenario_unlink, scenario_unlink_setup),
    "link": (scenario_link, scenario_link_setup),
}
