"""The fault plan: seeded, rule-driven, fully replayable.

A :class:`FaultPlan` is built from a seed and a list of :class:`FaultRule`
entries.  Injection sites call :meth:`FaultPlan.draw` with their site name
(``"disk.write"``, ``"link.tx"``, ``"pmem.alloc"``, ...); the plan matches
the site against each rule's glob pattern, advances that rule's private
counter and RNG stream, and returns the first rule that fires as a
:class:`FaultDecision` (or ``None``).

Determinism contract: two plans constructed from the same ``(seed, rules)``
tuple, asked the same sequence of ``draw`` calls, make identical decisions
— each rule owns an independent ``random.Random`` stream seeded from the
plan seed and the rule's position, so one site's traffic never perturbs
another rule's dice.  The full decision history is kept in
:attr:`FaultPlan.log` so campaigns can print and compare runs.
"""

from __future__ import annotations

import fnmatch
import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class FaultRule:
    """One injection rule.

    Triggering, in precedence order:

    * ``at`` — fire exactly on the Nth matching operation (1-based);
    * ``every`` — fire on every Nth matching operation;
    * ``probability`` — fire with this per-operation probability.

    ``after`` suppresses triggers for the first N matching operations and
    ``max_triggers`` caps the total number of injections from this rule.
    """

    site: str                      # glob pattern: "disk.write", "link.*"
    kind: str                      # "io-error", "torn", "crash", "drop", ...
    probability: float = 0.0
    at: int | None = None
    every: int | None = None
    after: int = 0
    max_triggers: int | None = None

    def describe(self) -> str:
        if self.at is not None:
            trigger = f"at operation {self.at}"
        elif self.every is not None:
            trigger = f"every {self.every} operations"
        else:
            trigger = f"p={self.probability}"
        return f"{self.site}: {self.kind} ({trigger})"


@dataclass
class FaultDecision:
    """A single fired injection, handed to the site that asked."""

    site: str          # the concrete site that drew (not the rule pattern)
    kind: str
    rule: FaultRule
    sequence: int      # global decision number (1-based)
    operation: int     # the rule's matching-operation counter at fire time
    _rng: random.Random = field(repr=False, default=None)

    def rand_below(self, bound: int) -> int:
        """A deterministic value in [0, bound) from the rule's stream —
        sites use this for torn-write lengths, corrupt byte offsets, ..."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self._rng.randrange(bound)


class FaultPlan:
    """Seeded decision engine shared by every injection site."""

    def __init__(self, seed: int, rules: list[FaultRule]) -> None:
        self.seed = seed
        self.rules = list(rules)
        self._rngs = [
            random.Random(f"{seed}/{index}/{rule.site}/{rule.kind}")
            for index, rule in enumerate(self.rules)
        ]
        self._matches = [0] * len(self.rules)
        self._fired = [0] * len(self.rules)
        self.log: list[FaultDecision] = []

    # -- the one call sites make -------------------------------------------

    def draw(self, site: str) -> FaultDecision | None:
        """Should `site` misbehave right now?  First firing rule wins."""
        decision = None
        for index, rule in enumerate(self.rules):
            if not fnmatch.fnmatchcase(site, rule.site):
                continue
            self._matches[index] += 1
            count = self._matches[index]
            rng = self._rngs[index]
            if rule.probability and rule.at is None and rule.every is None:
                # always consume the dice so later rules in the same stream
                # see the same sequence regardless of earlier outcomes
                roll = rng.random()
            else:
                roll = None
            if decision is not None:
                continue
            if count <= rule.after:
                continue
            if rule.max_triggers is not None \
                    and self._fired[index] >= rule.max_triggers:
                continue
            if rule.at is not None:
                fire = count == rule.at
            elif rule.every is not None:
                fire = count % rule.every == 0
            else:
                fire = roll is not None and roll < rule.probability
            if not fire:
                continue
            self._fired[index] += 1
            decision = FaultDecision(
                site=site,
                kind=rule.kind,
                rule=rule,
                sequence=len(self.log) + 1,
                operation=count,
                _rng=rng,
            )
            self.log.append(decision)
        return decision

    # -- accounting --------------------------------------------------------

    def injected_by_site(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for decision in self.log:
            out[decision.site] = out.get(decision.site, 0) + 1
        return out

    def injected_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for decision in self.log:
            out[decision.kind] = out.get(decision.kind, 0) + 1
        return out

    @property
    def injections(self) -> int:
        return len(self.log)

    def replayed(self) -> "FaultPlan":
        """A fresh plan with the same (seed, rules) — same future behavior."""
        return FaultPlan(self.seed, self.rules)

    def trace(self) -> list[str]:
        """Human-readable decision history (stable across replays)."""
        return [f"#{d.sequence} {d.site} {d.kind} (op {d.operation})"
                for d in self.log]
