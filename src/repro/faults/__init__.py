"""Deterministic fault injection across the system's layers.

The paper's claim is that a verified OS contract lets applications survive
the environment's *misbehavior*, not just its absence.  This package turns
that claim into a gated test surface:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a seeded, replayable
  decision engine.  Every injection site in the tree (disk, block driver,
  link, physical/user memory, prover) asks the plan whether to misbehave;
  the same ``(seed, rules)`` tuple always yields the same campaign.
* :mod:`repro.faults.crash` — the crash-recovery harness: run a filesystem
  scenario once to count its write boundaries, then re-run it crashing the
  disk at every boundary, remount, and audit the volume with ``fsck``.
* :mod:`repro.faults.campaign` — the seeded campaigns behind
  ``python -m repro faults``: disk, net, mem, prover, and cluster, each
  reporting injected / survived / degraded / failed per site and
  collecting invariant violations.
* :mod:`repro.faults.cluster` — the cluster campaign's scenarios: node
  crashes at message boundaries, link partitions with bounded heals, and
  replica lag, all against the replicated KV service's durability and
  session guarantees.

The injection sites themselves live in the layers (``Disk``,
``BlockDriver``, ``Link``, ``BuddyAllocator``, ``Heap``,
``ProverScheduler``) so campaigns exercise the real code paths rather than
mocks around them.
"""

from repro.faults.campaign import (
    CampaignReport,
    SiteSummary,
    run_campaign,
    run_cluster_campaign,
    run_disk_campaign,
    run_mem_campaign,
    run_net_campaign,
    run_prover_campaign,
)
from repro.faults.crash import CrashMatrixReport, run_crash_matrix
from repro.faults.plan import FaultDecision, FaultPlan, FaultRule

__all__ = [
    "CampaignReport",
    "CrashMatrixReport",
    "FaultDecision",
    "FaultPlan",
    "FaultRule",
    "SiteSummary",
    "run_campaign",
    "run_cluster_campaign",
    "run_crash_matrix",
    "run_disk_campaign",
    "run_mem_campaign",
    "run_net_campaign",
    "run_prover_campaign",
]
