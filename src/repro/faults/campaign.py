"""Seeded fault-injection campaigns: disk, net, mem, prover, cluster, ring.

Each campaign wires a :class:`~repro.faults.plan.FaultPlan` into the real
layers (no mocks), drives a deterministic workload through them, and
classifies every injection:

* **survived** — absorbed with no caller-visible effect (a retry healed a
  torn write, RDP retransmitted through loss, a poisoned cache entry was
  re-proved);
* **degraded** — surfaced as a *typed, recoverable* error the caller
  observed (``DiskIOError`` after retries, ``QueueFull``, ``OutOfMemory``,
  ``AllocFailed``, ``RdpGiveUp``, an ERROR verdict from a crashed prover
  worker);
* **failed** — an invariant was violated: data loss, corruption fsck can't
  classify as a leak, wrong delivery order, a lost proof run.  Every
  *failed* count comes with an entry in :attr:`CampaignReport.violations`,
  and any violation makes the CLI exit nonzero.

Determinism contract: a campaign's :meth:`CampaignReport.summary_lines`
depend only on ``(campaign, seed)`` — no wall-clock, no paths, no
iteration over unordered containers — so two runs with the same seed must
produce byte-identical summaries (the CLI's ``--check-determinism`` and
the CI gate verify exactly that).
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
from dataclasses import dataclass, field

from repro import obs
from repro.obs.registry import Registry
from repro.faults.crash import CRASH_SCENARIOS, run_crash_matrix
from repro.faults.plan import FaultPlan, FaultRule

CAMPAIGNS = ("disk", "net", "mem", "prover", "cluster", "ring")

#: The four outcome classes a fault-injection site tallies.
OUTCOMES = ("injected", "survived", "degraded", "failed")


class SiteSummary:
    """Per-site tallies, backed by labeled :mod:`repro.obs` counters
    (``faults.injected{site=...}`` etc.) in the campaign's registry.

    The ``site.injected += n`` call sites read naturally while every
    count lives in the shared instrument substrate — ``trace summary``
    and the JSONL export see the same numbers the text report prints.
    """

    __slots__ = ("_counters",)

    def __init__(self, registry: Registry, site: str) -> None:
        self._counters = {
            outcome: registry.counter(f"faults.{outcome}", site=site)
            for outcome in OUTCOMES
        }

    def _get(self, outcome: str) -> int:
        return self._counters[outcome].value

    def _set(self, outcome: str, value: int) -> None:
        counter = self._counters[outcome]
        delta = value - counter.value
        if delta < 0:
            raise ValueError(f"faults.{outcome} cannot decrease")
        counter.inc(delta)

    injected = property(lambda s: s._get("injected"),
                        lambda s, v: s._set("injected", v))
    survived = property(lambda s: s._get("survived"),
                        lambda s, v: s._set("survived", v))
    degraded = property(lambda s: s._get("degraded"),
                        lambda s, v: s._set("degraded", v))
    failed = property(lambda s: s._get("failed"),
                      lambda s, v: s._set("failed", v))


@dataclass
class CampaignReport:
    name: str
    seed: int
    sites: dict[str, SiteSummary] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Every per-site counter of this run lives here; summaries read the
    #: counters back, so the campaign has no private tallies left.
    registry: Registry = field(default_factory=Registry)

    def site(self, name: str) -> SiteSummary:
        if name not in self.sites:
            self.sites[name] = SiteSummary(self.registry, name)
        return self.sites[name]

    def violation(self, site: str, message: str) -> None:
        self.site(site).failed += 1
        self.violations.append(f"[{self.name}] {site}: {message}")
        shared = obs.bus()
        if shared.active:
            shared.emit("faults.violation", campaign=self.name, site=site,
                        message=message)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def injections(self) -> int:
        return sum(s.injected for s in self.sites.values())

    def summary_lines(self) -> list[str]:
        lines = [f"campaign {self.name} (seed {self.seed}): "
                 f"{self.injections} injections, "
                 f"{len(self.violations)} violations"]
        for name in sorted(self.sites):
            s = self.sites[name]
            lines.append(f"  {name:<16} injected {s.injected:>4}  "
                         f"survived {s.survived:>4}  "
                         f"degraded {s.degraded:>4}  failed {s.failed:>4}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return lines


# ---------------------------------------------------------------------------
# disk
# ---------------------------------------------------------------------------


def _resync_shadow(fs, shadow, path: str) -> None:
    """After a failed operation, re-learn the on-disk truth for `path`
    (small retry loop: the re-read itself may hit a transient fault)."""
    from repro.hw.devices.disk import DiskIOError
    from repro.nros.drivers.block import QueueFull

    for _ in range(4):
        try:
            if not fs.exists(path):
                shadow.pop(path, None)
                return
            inum = fs.lookup(path)
            size = fs.stat_inum(inum).size
            shadow[path] = fs.read_at(inum, 0, size)
            return
        except (DiskIOError, QueueFull):
            continue
    shadow.pop(path, None)  # unknowable right now; stop verifying it


def _disk_transient_workload(seed: int, report: CampaignReport) -> None:
    """File operations under transient write errors, torn writes, sparse
    read errors, and injected device-busy rejections."""
    from repro.hw.devices.disk import Disk, DiskIOError
    from repro.nros.drivers.block import BlockDriver, QueueFull
    from repro.nros.fs.fs import FileSystem, FsError
    from repro.nros.fs.fsck import fsck
    from repro.faults.crash import is_recoverable

    plan = FaultPlan(seed, rules=[
        FaultRule(site="disk.write", kind="io-error", probability=0.05),
        FaultRule(site="disk.write", kind="torn", probability=0.03),
        FaultRule(site="disk.read", kind="io-error", probability=0.01),
        FaultRule(site="block.submit", kind="queue-full", every=97,
                  max_triggers=4),
    ])
    disk = Disk(256)
    driver = BlockDriver(disk, fault_plan=plan)
    fs = FileSystem.mkfs(driver, num_inodes=128)
    disk.fault_plan = plan  # armed only after the volume is formatted

    rng = random.Random(f"{seed}/disk-workload")
    shadow: dict[str, bytes] = {}
    site = report.site("disk.io")
    next_file = 0

    for _ in range(150):
        before = plan.injections
        paths = sorted(shadow)
        op = rng.choice(["create", "write", "read", "rename", "unlink"])
        path = rng.choice(paths) if paths else None
        try:
            if op == "create" or path is None:
                path = f"/f{next_file}"
                next_file += 1
                fs.create(path)
                shadow[path] = b""
            elif op == "write":
                payload = bytes([rng.randrange(256)]) * rng.randrange(1, 6000)
                offset = rng.randrange(0, len(shadow[path]) + 1)
                inum = fs.lookup(path)
                fs.write_at(inum, offset, payload)
                data = bytearray(shadow[path])
                if offset + len(payload) > len(data):
                    data.extend(bytes(offset + len(payload) - len(data)))
                data[offset:offset + len(payload)] = payload
                shadow[path] = bytes(data)
            elif op == "read":
                inum = fs.lookup(path)
                data = fs.read_at(inum, 0, len(shadow[path]))
                if data != shadow[path]:
                    # one transient bus fault may damage a buffer; a
                    # re-read must see the intact medium
                    data = fs.read_at(inum, 0, len(shadow[path]))
                    if data != shadow[path]:
                        report.violation(
                            "disk.io", f"persistent mismatch reading {path}")
                        continue
            elif op == "rename":
                new = f"/f{next_file}"
                next_file += 1
                fs.rename(path, new)
                shadow[new] = shadow.pop(path)
            elif op == "unlink":
                fs.unlink(path)
                del shadow[path]
            injected = plan.injections - before
            site.injected += injected
            site.survived += injected
        except (DiskIOError, QueueFull) as exc:
            injected = plan.injections - before
            site.injected += injected
            site.degraded += injected
            del exc
            for touched in {path} | ({new} if op == "rename" else set()):
                if touched is not None:
                    _resync_shadow(fs, shadow, touched)
        except FsError as exc:
            report.violation("disk.io", f"{op} raised {exc}")

    # The volume must still audit clean up to recoverable leaks from the
    # operations that failed mid-flight.
    disk.fault_plan = None
    for issue in fsck(fs):
        if is_recoverable(issue):
            report.site("disk.io").degraded += 1
        else:
            report.violation("disk.io", f"fsck: {issue}")

    # Power-cycle: remount the image on a pristine device and verify every
    # surviving file byte-for-byte.
    survivor = Disk(256)
    survivor.restore(disk.snapshot())
    remounted = FileSystem(BlockDriver(survivor))
    for issue in fsck(remounted):
        if not is_recoverable(issue):
            report.violation("disk.io", f"fsck after remount: {issue}")
    for path in sorted(shadow):
        inum = remounted.lookup(path)
        data = remounted.read_at(inum, 0, len(shadow[path]))
        if data != shadow[path]:
            report.violation("disk.io", f"{path} lost data across remount")
    report.notes.append(
        f"disk.io: {len(shadow)} files verified byte-for-byte after "
        f"remount; driver retried {driver.io_retries} transient errors "
        f"({disk.torn_writes} torn)")


def _disk_read_corruption(seed: int, report: CampaignReport) -> None:
    """Bus-level read corruption is detected by comparison and shown
    transient: the medium is intact, a re-read heals."""
    from repro.hw.devices.disk import Disk

    disk = Disk(16)
    expected = []
    for sector in range(disk.num_sectors):
        pattern = bytes([sector * 17 % 256]) * Disk.SECTOR_SIZE
        disk.write_sector(sector, pattern)
        expected.append(pattern)
    plan = FaultPlan(seed, rules=[
        FaultRule(site="disk.read", kind="corrupt", probability=0.3),
    ])
    disk.fault_plan = plan
    rng = random.Random(f"{seed}/corrupt-reads")
    site = report.site("disk.read")
    for _ in range(120):
        sector = rng.randrange(disk.num_sectors)
        before = plan.injections
        data = disk.read_sector(sector)
        if plan.injections == before:
            if data != expected[sector]:
                report.violation("disk.read",
                                 f"uninjected mismatch at sector {sector}")
            continue
        if data == expected[sector]:
            site.injected += plan.injections - before
            report.violation("disk.read",
                             f"injected corruption invisible at {sector}")
            continue
        persisted = False
        while True:   # re-reads heal; each may itself be corrupted again
            prev = plan.injections
            healed = disk.read_sector(sector)
            if healed == expected[sector]:
                break
            if plan.injections == prev:
                persisted = True   # clean read, still wrong: medium damage
                break
        incident = plan.injections - before
        site.injected += incident
        if persisted:
            report.violation("disk.read",
                             f"corruption persisted at sector {sector}")
        else:
            site.survived += incident


def _disk_queue_backpressure(seed: int, report: CampaignReport) -> None:
    """A stalled device fills the bounded queue; QueueFull is typed
    backpressure the caller rides out with service() + retry, and no
    accepted request is ever lost."""
    from repro.hw.devices.disk import Disk
    from repro.nros.drivers.block import BlockDriver, BlockRequest, QueueFull

    plan = FaultPlan(seed, rules=[
        FaultRule(site="block.submit", kind="stall", every=1,
                  max_triggers=40),
    ])
    disk = Disk(64)
    driver = BlockDriver(disk, fault_plan=plan)
    site = report.site("block.submit")
    total = 45
    rejections = 0
    for sector in range(total):
        payload = bytes([sector]) * Disk.SECTOR_SIZE
        for attempt in range(3):
            try:
                driver.submit(BlockRequest("write", sector, data=payload))
                break
            except QueueFull:
                rejections += 1
                driver.service()
        else:
            report.violation("block.submit",
                             f"write {sector} rejected after retries")
    driver.service()
    site.injected += plan.injections
    site.degraded += rejections
    site.survived += plan.injections - rejections
    if rejections == 0:
        report.violation("block.submit",
                         "stalled queue never exerted backpressure")
    for sector in range(total):
        if disk.read_sector(sector) != bytes([sector]) * Disk.SECTOR_SIZE:
            report.violation("block.submit",
                             f"accepted write {sector} was lost")
    report.notes.append(
        f"block.submit: {rejections} QueueFull rejections ridden out; "
        f"all {total} writes landed")


def _disk_crash_matrix(report: CampaignReport) -> None:
    site = report.site("disk.crash")
    for name in sorted(CRASH_SCENARIOS):
        scenario, setup = CRASH_SCENARIOS[name]
        matrix = run_crash_matrix(scenario, name=name, setup=setup)
        site.injected += matrix.crash_points
        site.survived += matrix.clean
        site.degraded += matrix.degraded
        for violation in matrix.violations:
            report.violation("disk.crash", violation)
        report.notes.append(matrix.summary())


def run_disk_campaign(seed: int = 1) -> CampaignReport:
    report = CampaignReport("disk", seed)
    _disk_transient_workload(seed, report)
    _disk_read_corruption(seed, report)
    _disk_queue_backpressure(seed, report)
    _disk_crash_matrix(report)
    return report


# ---------------------------------------------------------------------------
# net
# ---------------------------------------------------------------------------


def _net_hosts():
    from repro.hw.devices.nic import Nic
    from repro.nros.net.stack import NetStack

    nic_a = Nic(b"\xaa" * 6)
    nic_b = Nic(b"\xbb" * 6)
    stack_a = NetStack(1, nic_a)
    stack_b = NetStack(2, nic_b)
    stack_a.add_neighbour(2, nic_b.mac)
    stack_b.add_neighbour(1, nic_a.mac)
    return nic_a, nic_b, stack_a, stack_b


def _net_adversarial(seed: int, report: CampaignReport) -> None:
    """Exactly-once, in-order delivery through a fabric that drops,
    duplicates, reorders, and corrupts (checksums turn corruption into
    detectable loss; retransmission covers the rest)."""
    from repro.nros.net.link import Link

    plan = FaultPlan(seed, rules=[
        FaultRule(site="link.tx", kind="drop", probability=0.15),
        FaultRule(site="link.tx", kind="dup", probability=0.10),
        FaultRule(site="link.tx", kind="corrupt", probability=0.08),
        FaultRule(site="link.tx", kind="reorder", probability=0.12),
    ])
    nic_a, nic_b, stack_a, stack_b = _net_hosts()
    link = Link(nic_a, nic_b, fault_plan=plan)
    listener = stack_b.rdp_listen(9000)
    conn = stack_a.rdp_connect(2, 9000)
    messages = [f"msg-{i:03d}".encode() for i in range(30)]
    for message in messages:
        stack_a.rdp_send(conn, message)

    site = report.site("link.tx")
    delivered: list[bytes] = []
    server_conns: list = []
    completed = False
    for now in range(1, 6000):
        stack_a.tick(now)
        link.pump()
        stack_b.poll()
        stack_b.tick(now)
        link.pump()
        stack_a.poll()
        while listener.pending:
            server_conns.append(listener.pending.popleft())
        for sconn in server_conns:
            while sconn.recv_queue:
                delivered.append(sconn.recv_queue.popleft())
        if (len(delivered) >= len(messages) and conn.unacked is None
                and not conn.send_queue):
            completed = True
            break
    site.injected += plan.injections
    if not completed:
        report.violation("link.tx",
                         f"session hung: {len(delivered)}/{len(messages)} "
                         f"messages after 6000 rounds")
    elif delivered != messages:
        report.violation("link.tx",
                         "delivery violated exactly-once-in-order")
    else:
        site.survived += plan.injections
        report.notes.append(
            f"link.tx: {len(messages)} messages exactly-once in-order "
            f"through {link.dropped} drops, {link.duplicated} dups, "
            f"{link.corrupted} corruptions, {link.reordered} reorders "
            f"({conn.retransmissions} retransmissions)")


def _net_blackout(seed: int, report: CampaignReport) -> None:
    """Total loss: the handshake must give up with a typed RdpGiveUp
    surfaced to the caller, not stall forever."""
    from repro.nros.net.link import Link
    from repro.nros.net.rdp import RdpGiveUp

    plan = FaultPlan(seed, rules=[
        FaultRule(site="link.tx", kind="drop", probability=1.0),
    ])
    nic_a, nic_b, stack_a, stack_b = _net_hosts()
    link = Link(nic_a, nic_b, fault_plan=plan)
    stack_b.rdp_listen(9000)
    conn = stack_a.rdp_connect(2, 9000)
    site = report.site("net.rdp")
    for now in range(1, 400):
        stack_a.tick(now)
        link.pump()
        stack_b.poll()
        if stack_a.stats_gave_up:
            break
    site.injected += plan.injections
    if not stack_a.stats_gave_up:
        report.violation("net.rdp", "SYN blackout never gave up")
        return
    try:
        stack_a.rdp_recv(conn)
    except RdpGiveUp:
        site.degraded += 1
        site.survived += plan.injections - 1 if plan.injections else 0
        report.notes.append(
            f"net.rdp: SYN blackout surfaced RdpGiveUp after "
            f"{conn.retries - 1} retransmissions")
    else:
        report.violation("net.rdp", "blackout error not surfaced to recv")


def _net_data_blackout(seed: int, report: CampaignReport) -> None:
    """An established connection whose path dies mid-stream: delivered
    data stays delivered, the next message surfaces RdpGiveUp."""
    from repro.nros.net.link import Link
    from repro.nros.net.rdp import RdpGiveUp

    nic_a, nic_b, stack_a, stack_b = _net_hosts()
    link = Link(nic_a, nic_b)
    listener = stack_b.rdp_listen(9000)
    conn = stack_a.rdp_connect(2, 9000)
    stack_a.rdp_send(conn, b"before-blackout")
    delivered = []
    for now in range(1, 200):
        stack_a.tick(now)
        link.pump()
        stack_b.poll()
        stack_b.tick(now)
        link.pump()
        stack_a.poll()
        for sconn in list(listener.pending):
            while sconn.recv_queue:
                delivered.append(sconn.recv_queue.popleft())
        if delivered and conn.unacked is None:
            break
    site = report.site("net.rdp")
    if delivered != [b"before-blackout"]:
        report.violation("net.rdp", "pre-blackout message not delivered")
        return
    plan = FaultPlan(seed, rules=[
        FaultRule(site="link.tx", kind="drop", probability=1.0),
    ])
    link.fault_plan = plan
    stack_a.rdp_send(conn, b"into-the-void")
    gave_up = False
    for now in range(200, 800):
        stack_a.tick(now)
        link.pump()
        stack_b.poll()
        if stack_a.stats_gave_up:
            gave_up = True
            break
    site.injected += plan.injections
    if not gave_up:
        report.violation("net.rdp", "data blackout never gave up")
        return
    try:
        stack_a.rdp_recv(conn)
    except RdpGiveUp:
        site.degraded += 1
        site.survived += max(0, plan.injections - 1)
        report.notes.append(
            "net.rdp: data blackout kept delivered data and surfaced "
            "RdpGiveUp for the in-flight message")
    else:
        report.violation("net.rdp", "data blackout error not surfaced")


def run_net_campaign(seed: int = 1) -> CampaignReport:
    report = CampaignReport("net", seed)
    _net_adversarial(seed, report)
    _net_blackout(seed, report)
    _net_data_blackout(seed, report)
    return report


# ---------------------------------------------------------------------------
# mem
# ---------------------------------------------------------------------------


def _mem_pmem(seed: int, report: CampaignReport) -> None:
    from repro.hw.mem import PhysicalMemory
    from repro.nros.pmem import BuddyAllocator, OutOfMemory

    plan = FaultPlan(seed, rules=[
        FaultRule(site="pmem.alloc", kind="alloc-fail", probability=0.08),
    ])
    memory = PhysicalMemory(4 * 1024 * 1024)
    allocator = BuddyAllocator(memory, fault_plan=plan)
    rng = random.Random(f"{seed}/pmem")
    site = report.site("pmem.alloc")
    live: list[int] = []
    for step in range(400):
        if live and rng.random() < 0.45:
            allocator.free_block(live.pop(rng.randrange(len(live))))
        else:
            order = rng.randrange(0, 4)
            before = plan.injections
            try:
                live.append(allocator.alloc_block(order))
            except OutOfMemory:
                if plan.injections == before:
                    report.violation("pmem.alloc",
                                     "genuine OOM in a fitted workload")
                else:
                    site.degraded += 1
        if step % 80 == 0:
            problem = allocator.check_integrity()
            if problem is not None:
                report.violation("pmem.alloc", f"integrity: {problem}")
    site.injected += plan.injections
    site.survived += plan.injections - site.degraded
    for block in live:
        allocator.free_block(block)
    problem = allocator.check_integrity()
    if problem is not None:
        report.violation("pmem.alloc", f"final integrity: {problem}")
    if allocator.stats.free_frames != allocator.stats.total_frames:
        report.violation(
            "pmem.alloc",
            f"{allocator.stats.total_frames - allocator.stats.free_frames} "
            f"frames lost after freeing everything")
    report.notes.append(
        f"pmem.alloc: {allocator.stats.allocations} allocations, "
        f"{allocator.injected_failures} injected failures, allocator "
        f"integrity held")


def _drive(gen, next_base: list):
    """Drive a ulib generator, answering vm_map with growing bases."""
    from repro.nros.syscall.abi import Syscall

    try:
        request = next(gen)
        while True:
            value = None
            if isinstance(request, Syscall) and request.name == "vm_map":
                value = next_base[0]
                next_base[0] += request.args[0] * 4096
            request = gen.send(value)
    except StopIteration as stop:
        return stop.value


def _mem_heap(seed: int, report: CampaignReport) -> None:
    from repro.ulib.alloc import AllocFailed, Heap

    plan = FaultPlan(seed, rules=[
        FaultRule(site="heap.alloc", kind="alloc-fail", probability=0.15),
    ])
    heap = Heap(fault_plan=plan)
    rng = random.Random(f"{seed}/heap")
    site = report.site("heap.alloc")
    next_base = [0x100000]
    live: list[tuple[int, int]] = []
    for _ in range(200):
        if live and rng.random() < 0.4:
            vaddr, size = live.pop(rng.randrange(len(live)))
            _drive(heap.free(vaddr, size), next_base)
        else:
            size = rng.randrange(8, 2000)
            try:
                vaddr = _drive(heap.alloc(size), next_base)
            except AllocFailed:
                site.degraded += 1
                continue
            if any(vaddr < v + s and v < vaddr + ((size + 7) & ~7)
                   for v, s in live):
                report.violation("heap.alloc",
                                 f"allocation at {vaddr:#x} overlaps a "
                                 f"live block")
            live.append((vaddr, (size + 7) & ~7))
    site.injected += plan.injections
    site.survived += plan.injections - site.degraded
    # after every injected failure the heap must still serve requests
    vaddr = None
    for _ in range(10):
        try:
            vaddr = _drive(heap.alloc(64), next_base)
            break
        except AllocFailed:
            continue
    if vaddr is None:
        report.violation("heap.alloc", "heap unusable after injections")
    report.notes.append(
        f"heap.alloc: {heap.injected_failures} injected failures, heap "
        f"stayed serviceable ({heap.pages_mapped} pages mapped)")


def run_mem_campaign(seed: int = 1) -> CampaignReport:
    report = CampaignReport("mem", seed)
    _mem_pmem(seed, report)
    _mem_heap(seed, report)
    return report


# ---------------------------------------------------------------------------
# prover
# ---------------------------------------------------------------------------


def _prover_engine(hard: bool = False):
    """A small synthetic VC population: enough to schedule, cache, and
    crash against without paying for the full Figure 1a proof."""
    from repro.smt import ast
    from repro.verif.engine import ProofEngine
    from repro.verif.vc import forall_vc, smt_vc

    engine = ProofEngine()
    for i in range(10):
        def build(i=i):
            # (x & c) + (x | c) == x + c: valid, solver-hard enough that
            # term construction cannot fold it away, and the distinct
            # constant keeps every VC's cache fingerprint distinct
            x = ast.bv_var(f"x{i}", 8)
            c = ast.bv_const(i + 1, 8)
            return ast.eq(ast.bvadd(ast.bvand(x, c), ast.bvor(x, c)),
                          ast.bvadd(x, c))

        engine.add(smt_vc(f"faults-smt-{i}", "contract", build),
                   group="faults")
    if hard:
        def build_hard():
            x = ast.bv_var("hx", 4)
            y = ast.bv_var("hy", 4)
            s = ast.bvadd(x, y)
            lhs = ast.bvmul(s, s)
            two = ast.bv_const(2, 4)
            rhs = ast.bvadd(ast.bvadd(ast.bvmul(x, x), ast.bvmul(y, y)),
                            ast.bvmul(two, ast.bvmul(x, y)))
            return ast.eq(lhs, rhs)

        engine.add(smt_vc("faults-smt-hard", "contract", build_hard),
                   group="faults")
    for i in range(5):
        engine.add(forall_vc(f"faults-forall-{i}", "contract",
                             range(64), lambda n: n >= 0),
                   group="faults")
    return engine


def _prover_worker_crash(seed: int, report: CampaignReport) -> None:
    from repro.prover import ProverConfig, prove_all
    from repro.verif.vc import VCStatus

    plan = FaultPlan(seed, rules=[
        FaultRule(site="prover.worker", kind="worker-crash", every=4),
    ])
    engine = _prover_engine()
    config = ProverConfig(use_cache=False, fault_plan=plan)
    site = report.site("prover.worker")
    try:
        result = prove_all(engine, jobs=1, config=config)
    except Exception as exc:
        report.violation("prover.worker", f"run died: {exc}")
        return
    site.injected += plan.injections
    errors = sum(1 for r in result.results
                 if r.status is VCStatus.ERROR)
    proved = sum(1 for r in result.results if r.ok)
    if len(result.results) != engine.vc_count:
        report.violation("prover.worker",
                         f"lost results: {len(result.results)} of "
                         f"{engine.vc_count}")
    if errors != plan.injections:
        report.violation("prover.worker",
                         f"{plan.injections} crashes but {errors} ERROR "
                         f"verdicts")
    site.degraded += errors
    report.notes.append(
        f"prover.worker: {plan.injections} worker crashes absorbed as "
        f"ERROR verdicts; {proved} VCs still proved")


def _prover_poisoned_cache(seed: int, report: CampaignReport) -> None:
    from repro.prover import ProofCache, ProverConfig, prove_all

    site = report.site("prover.cache")
    cache_dir = tempfile.mkdtemp(prefix="repro-faults-cache-")
    try:
        engine = _prover_engine()
        config = ProverConfig(cache_dir=cache_dir)
        prove_all(engine, jobs=1, config=config,
                  cache=ProofCache(cache_dir))

        entries = []
        for root, _, files in os.walk(cache_dir):
            for name in files:
                if name.endswith(".json") and name != "timings.json":
                    entries.append(os.path.join(root, name))
        entries.sort()
        poisoned = entries[::max(1, len(entries) // 3)][:3]
        for path in poisoned:
            with open(path, "wb") as fh:
                fh.write(b"{ this is not a cached verdict")
        with open(os.path.join(cache_dir, "timings.json"), "wb") as fh:
            fh.write(b"\x00garbage")
        site.injected += len(poisoned) + 1

        cache = ProofCache(cache_dir)
        engine = _prover_engine()
        try:
            result = prove_all(engine, jobs=1,
                               config=ProverConfig(cache_dir=cache_dir),
                               cache=cache)
        except Exception as exc:
            report.violation("prover.cache", f"poisoned cache killed the "
                                             f"run: {exc}")
            return
        if not result.all_proved:
            report.violation("prover.cache",
                             "poisoned entries broke re-verification")
            return
        if cache.stats.invalid < len(poisoned):
            report.violation("prover.cache",
                             f"only {cache.stats.invalid} of "
                             f"{len(poisoned)} poisoned entries detected")
            return
        site.survived += len(poisoned) + 1
        report.notes.append(
            f"prover.cache: {len(poisoned)} poisoned entries + corrupt "
            f"timings treated as cold misses and re-proved")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def _prover_budget_exhaustion(seed: int, report: CampaignReport) -> None:
    from repro.prover import ProverConfig, prove_all
    from repro.verif.vc import VCStatus

    engine = _prover_engine(hard=True)
    config = ProverConfig(use_cache=False, conflict_budget=1,
                          max_attempts=2, hard_budget=True)
    site = report.site("prover.budget")
    try:
        result = prove_all(engine, jobs=1, config=config)
    except Exception as exc:
        report.violation("prover.budget", f"run died: {exc}")
        return
    timeouts = sum(1 for r in result.results
                   if r.status is VCStatus.TIMEOUT)
    bad = sum(1 for r in result.results
              if r.status in (VCStatus.FAILED, VCStatus.ERROR))
    site.injected += timeouts
    site.degraded += timeouts
    if len(result.results) != engine.vc_count:
        report.violation("prover.budget", "budget exhaustion lost results")
    if bad:
        report.violation("prover.budget",
                         f"{bad} VCs mis-verdicted under a tiny budget "
                         f"(TIMEOUT is the only honest answer)")
    if timeouts == 0:
        report.violation("prover.budget",
                         "hard 1-conflict budget never exhausted")
    report.notes.append(
        f"prover.budget: {timeouts} VCs surfaced TIMEOUT under a hard "
        f"1-conflict budget ladder; none mis-verdicted")


def run_prover_campaign(seed: int = 1) -> CampaignReport:
    report = CampaignReport("prover", seed)
    _prover_worker_crash(seed, report)
    _prover_poisoned_cache(seed, report)
    _prover_budget_exhaustion(seed, report)
    return report


# ---------------------------------------------------------------------------
# ring
# ---------------------------------------------------------------------------


def _ring_workload(plan, payloads, sq_depth: int = 16):
    """Drive a real kernel whose user program appends `payloads` to one
    file through a syscall ring, re-entering until every submitted entry
    has completed.  Returns (kernel, completions, pid)."""
    from repro.nros.fs.fd import O_CREAT, O_RDWR
    from repro.nros.kernel import Kernel
    from repro.nros.syscall import ring as ringmod
    from repro.nros.syscall.abi import SYSCALLS, sys

    results: list[tuple] = []

    def prog():
        rid, _sq, _cq, _sqd, _cqd = yield sys("ring_setup",
                                              sq_depth, sq_depth)
        fd = yield sys("open", "/ring.dat", O_CREAT | O_RDWR)
        for start in range(0, len(payloads), sq_depth):
            chunk = payloads[start:start + sq_depth]
            blob = b"".join(
                ringmod.encode_sqe(start + i + 1, SYSCALLS["write"],
                                   (fd, chunk[i]))
                for i in range(len(chunk)))
            cqes = list((yield sys("ring_enter", rid, blob, True)))
            # backpressure / crash-mid-batch leaves SQEs pending; an
            # empty enter re-drives the dispatch pass
            stalls = 0
            while len(cqes) < len(chunk) and stalls < 64:
                more = yield sys("ring_enter", rid, b"", True)
                cqes.extend(more)
                stalls += 1
            results.extend(cqes)

    kernel = Kernel(num_cores=2)
    kernel.fault_plan = plan
    kernel.register_program("ring-workload", prog)
    pid = kernel.spawn("ring-workload")
    kernel.run()
    return kernel, results, pid


def _ring_verify(report: CampaignReport, site: str, kernel, pid: int,
                 payloads, results) -> int:
    """The invariants every ring scenario must uphold: the process
    finished, every entry completed exactly once in submission order,
    the file holds exactly the successful writes, the ring indices
    audit clean, and the volume fscks clean.  Returns the number of
    EBADMSG (torn-entry) completions."""
    from repro.faults.crash import is_recoverable
    from repro.nros.fs.fsck import fsck
    from repro.nros.syscall import abi

    process = kernel.processes[pid]
    if process.exit_code != 0:
        report.violation(site, f"workload exited {process.exit_code}")
        return 0
    if len(results) != len(payloads):
        report.violation(
            site, f"{len(results)} completions for {len(payloads)} "
                  f"submissions (lost or duplicated entries)")
        return 0
    # Completion order is submission order, so position identifies the
    # entry — which matters for torn slots, whose user_data field is
    # itself part of the corrupted bytes and cannot be trusted.
    torn = 0
    expected = bytearray()
    for index, (ud, status, _value) in enumerate(results):
        if status == 0:
            if ud != index + 1:
                report.violation(
                    site, f"completion {index} carries user_data {ud}, "
                          f"expected {index + 1} (out of order)")
                return torn
            expected.extend(payloads[index])
        elif status == abi.EBADMSG:
            torn += 1
        else:
            report.violation(
                site, f"entry {index + 1} completed with unexpected errno "
                      f"{abi.ERRNO_NAMES.get(status, status)}")
            return torn
    inum = kernel.fs.lookup("/ring.dat")
    size = kernel.fs.stat_inum(inum).size
    content = kernel.fs.read_at(inum, 0, size)
    if content != bytes(expected):
        report.violation(
            site, f"file holds {len(content)} bytes, expected "
                  f"{len(expected)} (writes lost, duplicated, or "
                  f"misordered)")
    for ring in process.rings.values():
        for problem in ring.audit():
            report.violation(site, f"ring audit: {problem}")
    for issue in fsck(kernel.fs):
        if not is_recoverable(issue):
            report.violation(site, f"fsck: {issue}")
    return torn


def _ring_torn_sqes(seed: int, report: CampaignReport) -> None:
    """Torn SQEs in user memory: every corrupted slot must surface as a
    typed EBADMSG completion for that entry alone — never a silently
    different syscall, never a kernel crash."""
    plan = FaultPlan(seed, rules=[
        FaultRule(site="ring.sqe", kind="torn", every=5, max_triggers=9),
    ])
    payloads = [f"torn-{i:03d};".encode() for i in range(60)]
    kernel, results, pid = _ring_workload(plan, payloads)
    site = report.site("ring.sqe")
    site.injected += plan.injections
    torn = _ring_verify(report, "ring.sqe", kernel, pid, payloads, results)
    if torn != plan.injections:
        report.violation(
            "ring.sqe", f"{plan.injections} slots torn but {torn} EBADMSG "
                        f"completions")
    else:
        site.degraded += torn
    report.notes.append(
        f"ring.sqe: {plan.injections} torn slots all caught by the SQE "
        f"checksum as EBADMSG; the other {len(payloads) - torn} entries "
        f"executed exactly once")


def _ring_cq_backpressure(seed: int, report: CampaignReport) -> None:
    """Forced completion-queue-full: the dispatch pass stops early, the
    undrained SQEs stay pending, and re-entering completes them with no
    entry lost or duplicated."""
    plan = FaultPlan(seed, rules=[
        FaultRule(site="ring.cq", kind="full", every=11, max_triggers=6),
    ])
    payloads = [f"bp-{i:03d};".encode() for i in range(48)]
    kernel, results, pid = _ring_workload(plan, payloads)
    site = report.site("ring.cq")
    site.injected += plan.injections
    _ring_verify(report, "ring.cq", kernel, pid, payloads, results)
    if plan.injections == 0:
        report.violation("ring.cq", "backpressure rule never fired")
    if not report.violations:
        site.survived += plan.injections
    report.notes.append(
        f"ring.cq: {plan.injections} forced CQ-full stalls ridden out; "
        f"every entry completed exactly once after re-entry")


def _ring_crash_mid_batch(seed: int, report: CampaignReport) -> None:
    """The dispatch pass dies partway through a batch: completed entries
    keep their CQEs, the rest stay submitted, and the next enter resumes
    where the pass stopped — exactly-once dispatch across the crash."""
    plan = FaultPlan(seed, rules=[
        FaultRule(site="ring.dispatch", kind="crash", every=13,
                  max_triggers=5),
    ])
    payloads = [f"crash-{i:03d};".encode() for i in range(52)]
    kernel, results, pid = _ring_workload(plan, payloads)
    site = report.site("ring.dispatch")
    site.injected += plan.injections
    _ring_verify(report, "ring.dispatch", kernel, pid, payloads, results)
    if plan.injections == 0:
        report.violation("ring.dispatch", "crash rule never fired")
    if not report.violations:
        site.survived += plan.injections
    report.notes.append(
        f"ring.dispatch: {plan.injections} mid-batch crashes; dispatch "
        f"resumed with exactly-once completion and intact file contents")


def run_ring_campaign(seed: int = 1) -> CampaignReport:
    report = CampaignReport("ring", seed)
    _ring_torn_sqes(seed, report)
    _ring_cq_backpressure(seed, report)
    _ring_crash_mid_batch(seed, report)
    return report


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def run_cluster_campaign(seed: int = 1) -> CampaignReport:
    from repro.faults.cluster import run_cluster_campaign as run

    return run(seed)


_RUNNERS = {
    "disk": run_disk_campaign,
    "net": run_net_campaign,
    "mem": run_mem_campaign,
    "prover": run_prover_campaign,
    "cluster": run_cluster_campaign,
    "ring": run_ring_campaign,
}


def run_campaign(name: str, seed: int = 1) -> list[CampaignReport]:
    """Run one campaign (or ``"all"``); returns the reports."""
    if name == "all":
        return [_RUNNERS[c](seed) for c in CAMPAIGNS]
    if name not in _RUNNERS:
        raise ValueError(f"unknown campaign {name!r}; "
                         f"choose from {sorted(_RUNNERS)} or 'all'")
    return [_RUNNERS[name](seed)]


def summary_text(reports: list[CampaignReport]) -> str:
    """The deterministic, comparable text of a run."""
    lines: list[str] = []
    for report in reports:
        lines.extend(report.summary_lines())
    total_injected = sum(r.injections for r in reports)
    total_violations = sum(len(r.violations) for r in reports)
    lines.append(f"total: {total_injected} injections, "
                 f"{total_violations} violations")
    return "\n".join(lines)
