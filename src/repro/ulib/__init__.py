"""The userspace library -- the paper's "verified standard library" layer.

"It is also possible to implement and verify core 'standard library'
features like those in glibc and pthreads ... for example, we might expose
futexes from the kernel and then verify a userspace mutex implementation on
top."  That is exactly this package: synchronization built on the kernel's
futex syscalls (following Drepper's *Futexes are Tricky*, the paper's
citation [14]), a user-level heap over `vm_map`, user-level threads, and
file/IO convenience wrappers.

All library routines are generators: user code invokes them with
``yield from`` so their syscalls flow through the calling thread.
"""

from repro.ulib.sync import Mutex, Condvar, Semaphore
from repro.ulib.alloc import Heap
from repro.ulib.ring import Ring
from repro.ulib.uthread import UScheduler, uyield

__all__ = ["Mutex", "Condvar", "Semaphore", "Heap", "Ring", "UScheduler",
           "uyield"]
