"""User-side syscall ring: stage many requests, cross the boundary once.

The library mirrors liburing's shape: ``prepare`` encodes a fixed-size
SQE into library state (the staging list is the allocator-metadata trick
of :mod:`repro.ulib.alloc` — slot *bytes* live in the mapped ring pages
once submitted, bookkeeping lives in Python), and ``submit`` crosses the
kernel boundary exactly once per batch via ``ring_enter``.  Compare one
``yield sys(...)`` per operation on the unbatched path.

All routines are generators, invoked with ``yield from`` so their
syscalls flow through the calling thread.
"""

from __future__ import annotations

from repro.nros.syscall import ring as ringmod
from repro.nros.syscall.abi import SYSCALLS, SyscallError, sys


class Ring:
    """One process-private submission/completion ring pair."""

    def __init__(self, sq_depth: int = 64, cq_depth: int = 0) -> None:
        self.sq_depth = sq_depth
        self.cq_depth = cq_depth or sq_depth
        self.ring_id: int | None = None
        self.sq_base = 0
        self.cq_base = 0
        self._staged: list[bytes] = []
        self._next_user_data = 1
        self.submitted = 0
        self.completed = 0

    def setup(self):
        """Create the kernel-side ring pair (generator)."""
        (self.ring_id, self.sq_base, self.cq_base,
         self.sq_depth, self.cq_depth) = yield sys(
            "ring_setup", self.sq_depth, self.cq_depth)
        return self.ring_id

    def prepare(self, name: str, args: tuple = (),
                user_data: int | None = None) -> int:
        """Stage one request; returns its user_data tag.

        Raises :class:`~repro.nros.syscall.ring.RingError` when the
        syscall is unknown, ring-forbidden, or its arguments do not fit
        an SQE (bulk data must go by ``(vaddr, length)`` reference)."""
        if name not in SYSCALLS:
            raise ringmod.RingError(f"unknown syscall {name!r}")
        if name in ringmod.RING_FORBIDDEN:
            raise ringmod.RingError(f"{name} cannot go through a ring")
        if user_data is None:
            user_data = self._next_user_data
            self._next_user_data += 1
        self._staged.append(
            ringmod.encode_sqe(user_data, SYSCALLS[name], tuple(args)))
        return user_data

    @property
    def staged(self) -> int:
        return len(self._staged)

    def submit(self):
        """Submit everything staged; one ``ring_enter`` per SQ-depth
        chunk (generator).  Returns ``((user_data, status, value), ...)``
        in submission order."""
        if self.ring_id is None:
            raise ringmod.RingError("ring not set up")
        staged, self._staged = self._staged, []
        completions: list[tuple] = []
        for start in range(0, len(staged), self.sq_depth):
            chunk = staged[start:start + self.sq_depth]
            cqes = yield sys("ring_enter", self.ring_id,
                             b"".join(chunk), True)
            self.submitted += len(chunk)
            self.completed += len(cqes)
            completions.extend(cqes)
        return tuple(completions)

    def submit_noreap(self):
        """Submit staged SQEs without harvesting; returns
        (submitted, completed) — completions wait for :meth:`reap`."""
        if self.ring_id is None:
            raise ringmod.RingError("ring not set up")
        staged, self._staged = self._staged, []
        total_submitted = total_completed = 0
        for start in range(0, len(staged), self.sq_depth):
            chunk = staged[start:start + self.sq_depth]
            submitted, completed = yield sys(
                "ring_enter", self.ring_id, b"".join(chunk), False)
            total_submitted += submitted
            total_completed += completed
        self.submitted += total_submitted
        return (total_submitted, total_completed)

    def enter(self):
        """Run a dispatch pass without submitting anything new
        (generator) — re-drives SQEs left pending by completion-queue
        backpressure and returns their CQEs."""
        if self.ring_id is None:
            raise ringmod.RingError("ring not set up")
        cqes = yield sys("ring_enter", self.ring_id, b"", True)
        self.completed += len(cqes)
        return cqes

    def reap(self, max_entries: int = 0):
        """Harvest ready completions (generator)."""
        if self.ring_id is None:
            raise ringmod.RingError("ring not set up")
        cqes = yield sys("ring_reap", self.ring_id, max_entries)
        self.completed += len(cqes)
        return cqes

    @staticmethod
    def unwrap(completions) -> tuple:
        """Values of an all-success batch, raising the first per-entry
        error as a :class:`SyscallError` (the typed errors a careful
        caller would branch on)."""
        values = []
        for user_data, status, value in completions:
            if status != 0:
                raise SyscallError(
                    status, f"ring entry {user_data}: {value}")
            values.append(value)
        return tuple(values)
