"""File and console convenience wrappers over the syscall ABI.

The thin `stdio` of our libc layer: ``yield from`` these from user code.
"""

from __future__ import annotations

from repro.nros.fs.fd import O_CREAT, O_RDONLY, O_RDWR, O_TRUNC
from repro.nros.syscall.abi import sys


class File:
    """An open file; create with :func:`open_file`."""

    def __init__(self, fd: int) -> None:
        self.fd = fd

    def read(self, length: int):
        data = yield sys("read", self.fd, length)
        return data

    def read_all(self, chunk: int = 4096):
        out = bytearray()
        while True:
            data = yield sys("read", self.fd, chunk)
            if not data:
                return bytes(out)
            out += data

    def write(self, data: bytes):
        written = yield sys("write", self.fd, data)
        return written

    def seek(self, offset: int):
        result = yield sys("seek", self.fd, offset)
        return result

    def close(self):
        yield sys("close", self.fd)


def open_file(path: str, flags: int = O_RDONLY):
    """Open (optionally creating) a file; returns a :class:`File`."""
    fd = yield sys("open", path, flags)
    return File(fd)


def create_file(path: str):
    return (yield from open_file(path, O_CREAT | O_RDWR | O_TRUNC))


def write_file(path: str, data: bytes):
    """Create/truncate `path` and write `data`."""
    handle = yield from create_file(path)
    yield from handle.write(data)
    yield from handle.close()


def read_file(path: str):
    """Read all of `path`."""
    handle = yield from open_file(path)
    data = yield from handle.read_all()
    yield from handle.close()
    return data


def log(message: str):
    yield sys("log", message)
