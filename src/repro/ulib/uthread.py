"""A user-level thread scheduler.

NrOS "provides a user-level thread scheduler with synchronization
primitives" in user space; this is that component.  Green threads are
generators that yield either :data:`uyield` (voluntary reschedule) or
syscalls (forwarded to the kernel through the hosting kernel thread).

Cooperative round-robin: a green thread that blocks in the kernel blocks
the whole hosting thread — the standard N:1 threading trade-off.
"""

from __future__ import annotations

from collections import deque

from repro.nros.syscall.abi import Syscall, SyscallError


class _UYield:
    def __repr__(self) -> str:
        return "<uyield>"


uyield = _UYield()


class UScheduler:
    """Round-robin over green threads inside one kernel thread.

    `run()` is itself a generator the hosting kernel thread delegates to
    with ``yield from``; it returns the dict of green-thread results."""

    def __init__(self) -> None:
        self._queue: deque[tuple[int, object]] = deque()
        self._results: dict[int, object] = {}
        self._next_id = 0
        self.switches = 0

    def spawn(self, gen) -> int:
        """Add a green thread; returns its id."""
        gid = self._next_id
        self._next_id += 1
        self._queue.append((gid, gen))
        return gid

    def run(self):
        """Drive all green threads to completion (generator)."""
        while self._queue:
            gid, gen = self._queue.popleft()
            self.switches += 1
            send_value = None
            throw_exc = None
            while True:
                try:
                    if throw_exc is not None:
                        item = gen.throw(throw_exc)
                        throw_exc = None
                    else:
                        item = gen.send(send_value)
                except StopIteration as stop:
                    self._results[gid] = stop.value
                    break
                if isinstance(item, _UYield):
                    self._queue.append((gid, gen))
                    break
                if isinstance(item, Syscall):
                    try:
                        send_value = yield item
                    except SyscallError as exc:
                        throw_exc = exc
                        send_value = None
                    continue
                raise TypeError(
                    f"green thread yielded {item!r}; expected uyield or a "
                    f"Syscall"
                )
        return dict(self._results)
