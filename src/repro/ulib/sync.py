"""Userspace synchronization on kernel futexes.

The mutex is the three-state futex mutex from Drepper's "Futexes are
Tricky" (cited as [14] by the paper): 0 = free, 1 = locked, 2 = locked with
waiters.  The fast path is a single CAS with no kernel involvement; the
slow path parks on the futex.  Condition variables use a generation counter
to avoid lost wakeups; semaphores a counted futex.

Every method is a generator (``yield from`` it): the syscalls it makes are
the calling thread's syscalls.
"""

from __future__ import annotations

from repro.nros.syscall.abi import EAGAIN, SyscallError, sys


class Mutex:
    """Three-state futex mutex.  `vaddr` is one mapped, zeroed u64."""

    def __init__(self, vaddr: int) -> None:
        self.vaddr = vaddr

    def acquire(self):
        won, old = yield sys("cas", self.vaddr, 0, 1)
        if won:
            return
        state = old
        while True:
            # Advertise contention: move 1 -> 2 (or observe an existing 2).
            if state == 2:
                contended = True
            else:
                moved, state = yield sys("cas", self.vaddr, 1, 2)
                contended = moved or state == 2
            if contended:
                try:
                    yield sys("futex_wait", self.vaddr, 2)
                except SyscallError as exc:
                    if exc.errno != EAGAIN:
                        raise
            won, state = yield sys("cas", self.vaddr, 0, 2)
            if won:
                return

    def release(self):
        # Swap to 0; only wake when there may be waiters (old state 2).
        while True:
            old = yield sys("peek", self.vaddr)
            won, _ = yield sys("cas", self.vaddr, old, 0)
            if won:
                break
        if old == 2:
            yield sys("futex_wake", self.vaddr, 1)

    def locked(self):
        value = yield sys("peek", self.vaddr)
        return value != 0


class Condvar:
    """Condition variable: a generation counter at `vaddr`."""

    def __init__(self, vaddr: int) -> None:
        self.vaddr = vaddr

    def wait(self, mutex: Mutex):
        generation = yield sys("peek", self.vaddr)
        yield from mutex.release()
        try:
            yield sys("futex_wait", self.vaddr, generation)
        except SyscallError as exc:
            if exc.errno != EAGAIN:
                raise
            # the generation already moved: wakeup was not lost
        yield from mutex.acquire()

    def signal(self):
        yield from self._bump()
        yield sys("futex_wake", self.vaddr, 1)

    def broadcast(self):
        yield from self._bump()
        yield sys("futex_wake", self.vaddr, 1 << 30)

    def _bump(self):
        while True:
            generation = yield sys("peek", self.vaddr)
            won, _ = yield sys("cas", self.vaddr, generation,
                               (generation + 1) & 0xFFFF_FFFF)
            if won:
                return


class Semaphore:
    """Counting semaphore at `vaddr` (initial value set with `init`)."""

    def __init__(self, vaddr: int) -> None:
        self.vaddr = vaddr

    def init(self, value: int):
        yield sys("poke", self.vaddr, value)

    def post(self):
        while True:
            value = yield sys("peek", self.vaddr)
            won, _ = yield sys("cas", self.vaddr, value, value + 1)
            if won:
                break
        yield sys("futex_wake", self.vaddr, 1)

    def wait(self):
        while True:
            value = yield sys("peek", self.vaddr)
            if value > 0:
                won, _ = yield sys("cas", self.vaddr, value, value - 1)
                if won:
                    return
                continue
            try:
                yield sys("futex_wait", self.vaddr, 0)
            except SyscallError as exc:
                if exc.errno != EAGAIN:
                    raise
