"""A user-level heap allocator over `vm_map`.

First-fit free list with splitting and coalescing over pages obtained from
the kernel — the `malloc` of our libc layer.  Word-granular (8-byte)
allocation; the free list lives in Python (the allocator's *data* is user
memory, its *metadata* is library state, which keeps the example honest
without simulating pointer-chasing in simulated memory)."""

from __future__ import annotations

from repro.nros.syscall.abi import sys

PAGE_SIZE = 4096
ALIGN = 8


class AllocFailed(MemoryError):
    """The heap cannot satisfy this allocation.

    Typed and recoverable — the caller can shed load, free, and retry.
    Raised for injected failures (:mod:`repro.faults` site
    ``"heap.alloc"``) so out-of-memory handling is exercised without an
    actually exhausted kernel."""


class Heap:
    """Per-process user heap."""

    def __init__(self, fault_plan=None) -> None:
        # free list of (vaddr, size), kept sorted by vaddr
        self._free: list[tuple[int, int]] = []
        self.pages_mapped = 0
        self.fault_plan = fault_plan
        self.injected_failures = 0

    def alloc(self, size: int):
        """Allocate `size` bytes; returns the vaddr (generator)."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if self.fault_plan is not None:
            decision = self.fault_plan.draw("heap.alloc")
            if decision is not None and decision.kind == "alloc-fail":
                self.injected_failures += 1
                raise AllocFailed(f"injected heap failure ({size} bytes)")
        size = (size + ALIGN - 1) & ~(ALIGN - 1)
        for index, (vaddr, block_size) in enumerate(self._free):
            if block_size >= size:
                return self._take(index, size)
        npages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        base = yield sys("vm_map", npages)
        self.pages_mapped += npages
        self._insert(base, npages * PAGE_SIZE)
        for index, (vaddr, block_size) in enumerate(self._free):
            if block_size >= size:
                return self._take(index, size)
        raise AssertionError("fresh pages cannot be too small")

    def _take(self, index: int, size: int) -> int:
        vaddr, block_size = self._free.pop(index)
        if block_size > size:
            self._free.insert(index, (vaddr + size, block_size - size))
        return vaddr

    def free(self, vaddr: int, size: int):
        """Return a block; coalesces with neighbours (generator for
        interface symmetry — frees never syscall)."""
        size = (size + ALIGN - 1) & ~(ALIGN - 1)
        self._insert(vaddr, size)
        return
        yield  # pragma: no cover - makes this a generator

    def _insert(self, vaddr: int, size: int) -> None:
        self._free.append((vaddr, size))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for block_vaddr, block_size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == block_vaddr:
                prev_vaddr, prev_size = merged.pop()
                merged.append((prev_vaddr, prev_size + block_size))
            else:
                merged.append((block_vaddr, block_size))
        self._free = merged

    def free_bytes(self) -> int:
        return sum(size for _, size in self._free)
