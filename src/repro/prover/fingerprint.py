"""Content-addressed fingerprints for proof-cache keys.

A cache key must change exactly when the *meaning* of a discharge changes:

* the goal term — serialized canonically (a postorder DAG walk with local
  numbering, so fingerprints are stable across processes and interpreter
  runs even though :class:`repro.smt.ast.Term` interning ids are not);
* the solver configuration — the `simplify` / `preprocess` / `incremental`
  flags (including the preprocessor's own parameter fingerprint) plus a
  digest of the :mod:`repro.smt` source code, so any edit to the solver
  stack invalidates every cached verdict while leaving spec-side edits to
  invalidate only the goals they actually change.
"""

from __future__ import annotations

import hashlib
import os
from functools import lru_cache

from repro.smt.ast import Term


def serialize_term(term: Term) -> str:
    """A canonical, process-independent text form of the term DAG.

    Nodes are numbered in postorder of first visit; each line is
    ``<local-id> <op> <sort> <params> <value-or-name> <child ids>``.
    Structurally equal DAGs serialize identically; any change to an
    operator, constant, variable name, sort, or shape changes the output.
    """
    numbering: dict[int, int] = {}
    lines: list[str] = []
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        node, children_done = stack.pop()
        if id(node) in numbering:
            continue
        if not children_done:
            stack.append((node, True))
            for child in reversed(node.args):
                if id(child) not in numbering:
                    stack.append((child, False))
            continue
        numbering[id(node)] = len(numbering)
        child_ids = ",".join(str(numbering[id(a)]) for a in node.args)
        lines.append(
            f"{numbering[id(node)]} {node.op} {node.sort.width} "
            f"{node.params} {node.value!r} {node.name!r} [{child_ids}]"
        )
    return "\n".join(lines)


def term_fingerprint(term: Term) -> str:
    return hashlib.sha256(serialize_term(term).encode()).hexdigest()


def serialize_shape(term: Term) -> str:
    """Like :func:`serialize_term` but abstracting constant *values* and
    operator params while keeping ops, sorts, variable names, and DAG shape.

    Two goals with the same shape serialization are the same lemma template
    instantiated at different constants (``index_extract_12`` vs
    ``index_extract_30``, ``no_carry_0x1000`` vs ``no_carry_0x20_0000``):
    their AIG cones overlap heavily under structural hashing, which is what
    makes discharging them through one shared incremental solver pay off.
    """
    numbering: dict[int, int] = {}
    lines: list[str] = []
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        node, children_done = stack.pop()
        if id(node) in numbering:
            continue
        if not children_done:
            stack.append((node, True))
            for child in reversed(node.args):
                if id(child) not in numbering:
                    stack.append((child, False))
            continue
        numbering[id(node)] = len(numbering)
        child_ids = ",".join(str(numbering[id(a)]) for a in node.args)
        lines.append(
            f"{numbering[id(node)]} {node.op} {node.sort.width} "
            f"{node.name!r} [{child_ids}]"
        )
    return "\n".join(lines)


def family_fingerprint(term: Term) -> str:
    """Groups structurally-similar goals for shared-solver discharge."""
    return hashlib.sha256(serialize_shape(term).encode()).hexdigest()


@lru_cache(maxsize=1)
def smt_code_digest() -> str:
    """Digest of every source file in the repro.smt package.

    Editing the rewriter, bit-blaster, CNF encoder, or SAT solver changes
    this digest and therefore misses every cached entry — a cached verdict
    is only trusted for the exact solver stack that produced it.
    """
    import repro.smt

    package_dir = os.path.dirname(repro.smt.__file__)
    digest = hashlib.sha256()
    for filename in sorted(os.listdir(package_dir)):
        if not filename.endswith(".py"):
            continue
        digest.update(filename.encode())
        with open(os.path.join(package_dir, filename), "rb") as fh:
            digest.update(fh.read())
    return digest.hexdigest()


def solver_config_fingerprint(simplify: bool = True, preprocess: bool = True,
                              incremental: bool = True) -> str:
    """Digest of everything about the solver stack that can change a
    verdict's provenance: the rewriter flag, the CNF-preprocessor
    configuration, whether family discharge (incremental assumption
    solving) is enabled, and the smt source digest.  Cached entries from a
    differently-configured stack never match."""
    from repro.smt.preprocess import PreprocessConfig

    pre = PreprocessConfig().fingerprint() if preprocess else "off"
    blob = (
        f"simplify={simplify};preprocess={pre}"
        f";incremental={incremental};smt={smt_code_digest()}"
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def goal_fingerprint(goal: Term, simplify: bool = True,
                     preprocess: bool = True,
                     incremental: bool = True) -> str:
    """The proof-cache key: goal content + solver configuration."""
    blob = (
        f"{term_fingerprint(goal)}:"
        f"{solver_config_fingerprint(simplify, preprocess, incremental)}"
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@lru_cache(maxsize=1)
def source_tree_digest() -> str:
    """Digest of every ``.py`` file under the installed ``repro`` package."""
    import repro

    root = os.path.dirname(repro.__file__)
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as fh:
                digest.update(fh.read())
    return digest.hexdigest()


def structural_fingerprint(builder: str, kwargs: dict, vc_name: str) -> str:
    """Cache key for a non-SMT VC of a *reconstructible* population.

    A structural VC's verdict is an arbitrary Python computation, so the
    finest sound key is coarse: the builder identity (name + exact kwargs),
    the VC name, and a digest of the whole source tree — any source edit
    invalidates every structural entry (ccache-style), while SMT entries
    keep their fine-grained goal-term keys.  Only populations registered
    with :mod:`repro.prover.registry` qualify; ad-hoc VCs with unknown
    provenance are never cached.
    """
    frozen = tuple(sorted(kwargs.items()))
    blob = f"{builder}:{frozen!r}:{vc_name}:{source_tree_digest()}"
    return hashlib.sha256(blob.encode()).hexdigest()
