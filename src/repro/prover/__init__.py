"""`repro.prover` — scheduled, cached, observable VC discharge.

The serial loop in :class:`repro.verif.engine.ProofEngine` discharges the
Figure 1a population one VC at a time with no caching or telemetry.  This
subsystem is the production path around it:

* :mod:`repro.prover.scheduler` — a work scheduler fanning VCs out across a
  process pool, longest-expected-first, with per-VC conflict budgets and a
  retry ladder;
* :mod:`repro.prover.cache` — a content-addressed persistent proof cache,
  keyed by goal-term fingerprint + solver configuration;
* :mod:`repro.prover.fingerprint` — the stable fingerprints behind the
  cache keys;
* :mod:`repro.prover.registry` — named proof builders that let worker
  processes rebuild unpicklable VCs by name;
* :mod:`repro.prover.events` — the structured event stream
  (queued / started / finished / cache-hit) of a run.

Entry points: :func:`prove_all` and ``python -m repro prove --jobs N``.
"""

from repro.prover.cache import CacheStats, ProofCache, default_cache_dir
from repro.prover.events import EventLog, ProofEvent
from repro.prover.fingerprint import goal_fingerprint, term_fingerprint
from repro.prover.registry import register_builder
from repro.prover.scheduler import (
    DEFAULT_CONFLICT_BUDGET,
    ProverConfig,
    ProverScheduler,
    WorkerCrash,
    prove_all,
)

__all__ = [
    "CacheStats",
    "DEFAULT_CONFLICT_BUDGET",
    "EventLog",
    "ProofCache",
    "ProofEvent",
    "ProverConfig",
    "ProverScheduler",
    "WorkerCrash",
    "default_cache_dir",
    "goal_fingerprint",
    "prove_all",
    "register_builder",
    "term_fingerprint",
]
