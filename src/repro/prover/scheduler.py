"""The parallel VC-discharge scheduler.

Turns a :class:`repro.verif.engine.ProofEngine` population into a scheduled,
cached, observable job system:

* **cache pass** — every SMT VC's goal is built and fingerprinted in the
  parent; persistent-cache hits never reach a worker;
* **fan-out** — remaining VCs run on a process pool (the CDCL solver is
  GIL-bound, so threads cannot scale it).  Goal-builder closures do not
  pickle, so workers receive ``(builder name, kwargs, vc name)`` and rebuild
  their VCs from :mod:`repro.prover.registry`; VCs with no registered
  builder fall back to an in-process thread lane;
* **ordering** — longest-expected-first, using last-observed durations from
  the cache's timing history, so the slowest VC (the paper's 11 s tail)
  starts first instead of serializing the end of the run;
* **family grouping** — SMT goals with the same *shape* (same lemma
  template at different constants) are grouped by
  :func:`repro.prover.fingerprint.family_fingerprint` and discharged as one
  unit through a shared :class:`repro.smt.solver.FamilySolver`: one AIG,
  one CNF, per-goal assumption literals, learnt clauses amortised across
  the family.  Singleton families keep the classic single-shot path, so
  their results (counterexample models included) are bit-identical to the
  serial engine's;
* **per-VC timeout + retry** — SMT discharges run under a deterministic
  conflict budget; a budget overrun is a ``TIMEOUT`` that is retried with a
  geometrically larger budget, unbounded on the final attempt by default so
  a scheduled run proves exactly what the serial engine proves;
* **determinism** — results are reassembled into the engine's insertion
  order, so the :class:`ProofReport` contents and ordering are identical
  for any ``jobs`` value (only the wall-clock changes).

Every lifecycle step is emitted on a structured event stream
(:mod:`repro.prover.events`).
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, \
    ThreadPoolExecutor, wait
from dataclasses import dataclass, field

from repro import obs
from repro.prover import events as ev
from repro.prover import registry
from repro.prover.cache import ProofCache, default_cache_dir
from repro.prover.events import EventLog, ProofEvent
from repro.prover.fingerprint import family_fingerprint, goal_fingerprint, \
    structural_fingerprint
from repro.verif.engine import ProofEngine, ProofReport
from repro.verif.vc import VC, VCResult, VCStatus, discharge_family

#: First-attempt conflict budget.  Generous — the Figure 1a population
#: stays well under it — so timeouts only appear for genuinely hard goals
#: or when callers tighten the budget.
DEFAULT_CONFLICT_BUDGET = 100_000

#: Cold-start duration estimates (seconds) per category, used for
#: longest-expected-first ordering before any timing history exists.
_EXPECTED_BY_CATEGORY = {
    "invariants": 3.0,
    "refinement": 2.0,
    "simulation": 1.5,
    "nr-linearizability": 1.0,
    "hardware-agreement": 0.5,
    "tlb": 0.3,
    "contract": 0.2,
}
_EXPECTED_DEFAULT = 0.05


@dataclass
class ProverConfig:
    """Knobs of a scheduled run."""

    jobs: int = 1
    use_cache: bool = True
    cache_dir: str | None = None
    #: First-attempt conflict budget for SMT goals (None = unbounded).
    conflict_budget: int | None = DEFAULT_CONFLICT_BUDGET
    #: Budget multiplier between attempts.
    budget_growth: int = 4
    #: Total attempts; the last runs unbounded unless `hard_budget` is set.
    max_attempts: int = 3
    #: When True the final attempt keeps the largest finite budget instead
    #: of running unbounded — undecided goals then surface as TIMEOUT.
    hard_budget: bool = False
    #: Optional :class:`repro.faults.plan.FaultPlan`.  The inline and
    #: thread lanes draw at site ``"prover.worker"`` before each
    #: discharge; a firing ``worker-crash`` rule kills that worker, which
    #: the scheduler must absorb as an ERROR verdict, never a lost run.
    fault_plan: object | None = None
    #: Run the SatELite CNF preprocessor on every SMT discharge.
    preprocess: bool = True
    #: Group same-shape SMT goals into families discharged through one
    #: shared incremental solver (assumption-based).  Disabling forces the
    #: classic one-solver-per-VC path for every goal.
    incremental: bool = True

    def budgets(self) -> list[int | None]:
        """The retry ladder of conflict budgets, e.g. [100k, 400k, None]."""
        if self.conflict_budget is None:
            return [None]
        attempts = max(1, self.max_attempts)
        ladder: list[int | None] = [
            self.conflict_budget * self.budget_growth ** i
            for i in range(attempts - 1)
        ]
        if self.hard_budget:
            last = (self.conflict_budget
                    * self.budget_growth ** max(0, attempts - 1))
            ladder.append(last)
        else:
            ladder.append(None)
        return ladder


class WorkerCrash(RuntimeError):
    """A (simulated) prover worker died mid-discharge."""


def _crash_result(vc: VC, exc: BaseException) -> VCResult:
    return VCResult(
        name=vc.name,
        status=VCStatus.ERROR,
        seconds=0.0,
        category=vc.category,
        detail=f"worker failed: {type(exc).__name__}: {exc}",
    )


def _discharge_with_ladder(vc: VC, budgets,
                           preprocess: bool = True) -> tuple[VCResult, int]:
    """Run the retry ladder; returns the final result (its `seconds`
    accumulated across attempts) and the attempt count."""
    total_seconds = 0.0
    total_solver = 0.0
    ladder = budgets if vc.is_smt else [None]
    for attempt, budget in enumerate(ladder, start=1):
        result = vc.discharge(max_conflicts=budget, preprocess=preprocess)
        total_seconds += result.seconds
        total_solver += result.solver_seconds
        if result.status is not VCStatus.TIMEOUT or attempt == len(ladder):
            result.seconds = total_seconds
            result.solver_seconds = total_solver
            return result, attempt
    raise AssertionError("unreachable: ladder always returns")


# ---------------------------------------------------------------------------
# Process-pool worker side
# ---------------------------------------------------------------------------


def _serialize_result(result: VCResult, attempt: int) -> dict:
    counterexample = result.counterexample
    if counterexample is not None:
        try:
            pickle.dumps(counterexample)
        except Exception:
            counterexample = repr(counterexample)
    return {
        "name": result.name,
        "status": result.status.value,
        "seconds": result.seconds,
        "category": result.category,
        "detail": result.detail,
        "counterexample": counterexample,
        "solver_seconds": result.solver_seconds,
        "solver_stats": result.solver_stats,
        "attempt": attempt,
    }


def _deserialize_result(payload: dict) -> tuple[VCResult, int]:
    result = VCResult(
        name=payload["name"],
        status=VCStatus(payload["status"]),
        seconds=payload["seconds"],
        category=payload["category"],
        detail=payload["detail"],
        counterexample=payload["counterexample"],
        solver_seconds=payload["solver_seconds"],
        solver_stats=payload["solver_stats"],
    )
    return result, payload["attempt"]


def _pool_discharge(builder: str, kwargs: dict, vc_name: str,
                    budgets: list, preprocess: bool = True) -> dict:
    """Worker entry point: rebuild the VC by name and discharge it."""
    vc = registry.rebuild_vc(builder, kwargs, vc_name)
    result, attempt = _discharge_with_ladder(vc, budgets, preprocess)
    return _serialize_result(result, attempt)


def _pool_discharge_family(builder: str, kwargs: dict, vc_names: list,
                           budgets: list,
                           preprocess: bool = True) -> list[dict]:
    """Worker entry point for a whole family: rebuild every member and
    discharge them in order through one shared solver."""
    vcs = [registry.rebuild_vc(builder, kwargs, name) for name in vc_names]
    return [
        _serialize_result(result, attempt)
        for result, attempt in discharge_family(vcs, budgets,
                                                preprocess=preprocess)
    ]


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------


@dataclass
class _Job:
    index: int       # position in the engine's canonical order
    vc: VC
    fingerprint: str | None = None   # cache key (SMT VCs only)
    family: str | None = None        # shape-grouping key (SMT VCs only)
    build_seconds: float = 0.0       # goal construction + cache lookup
    expected: float = _EXPECTED_DEFAULT


class ProverScheduler:
    """One scheduled run over an engine's VC population."""

    def __init__(self, engine: ProofEngine,
                 config: ProverConfig | None = None,
                 cache: ProofCache | None = None,
                 on_event=None, progress=None) -> None:
        self.engine = engine
        self.config = config or ProverConfig()
        if cache is not None:
            self.cache = cache
        elif self.config.use_cache:
            self.cache = ProofCache(self.config.cache_dir
                                    or default_cache_dir())
        else:
            self.cache = None
        self.events = EventLog(sink=on_event)
        self.progress = progress
        self._t0 = 0.0
        self._unique_names: set[str] = set()

    # -- event helpers -----------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _emit(self, kind: str, vc: VC | None = None, **kw) -> None:
        self.events.emit(ProofEvent(
            kind=kind,
            vc=vc.name if vc is not None else "",
            category=vc.category if vc is not None else "",
            t=self._now(),
            **kw,
        ))

    # -- run ---------------------------------------------------------------

    def run(self) -> ProofReport:
        self._t0 = time.perf_counter()
        run_span = obs.span("prover.run",
                            histogram="prover.run_seconds").start()
        ordered = self.engine.vcs()
        results: list[VCResult | None] = [None] * len(ordered)
        history = self.cache.load_timings() if self.cache else {}
        fresh_timings: dict[str, float] = {}

        # Name-keyed reconstruction and structural cache keys both require
        # unambiguous names; VCs sharing a name stay in-process, uncached.
        counts: dict[str, int] = {}
        for vc in ordered:
            counts[vc.name] = counts.get(vc.name, 0) + 1
        self._unique_names = {n for n, c in counts.items() if c == 1}

        pending: list[_Job] = []
        for index, vc in enumerate(ordered):
            self._emit(ev.QUEUED, vc)
            job = _Job(index=index, vc=vc)
            job.expected = history.get(
                vc.name, _EXPECTED_BY_CATEGORY.get(vc.category,
                                                   _EXPECTED_DEFAULT))
            if self.cache is not None or (self.config.incremental
                                          and vc.is_smt):
                start = time.perf_counter()
                hit = None
                try:
                    if vc.is_smt:
                        goal = vc.goal_builder()
                        if self.config.incremental:
                            job.family = family_fingerprint(goal)
                        if self.cache is not None:
                            job.fingerprint = goal_fingerprint(
                                goal, vc.simplify, self.config.preprocess,
                                self.config.incremental)
                    elif (self.cache is not None
                          and self.engine.rebuild_spec is not None
                          and vc.name in self._unique_names):
                        builder, kwargs = self.engine.rebuild_spec
                        job.fingerprint = structural_fingerprint(
                            builder, kwargs, vc.name)
                    if job.fingerprint is not None:
                        hit = self.cache.get(job.fingerprint)
                except Exception:
                    # A goal builder that cannot even construct its term
                    # will surface the error through the normal discharge
                    # path below; never let the cache pass crash the run.
                    job.fingerprint = None
                    job.family = None
                job.build_seconds = time.perf_counter() - start
                if hit is not None:
                    result = self.cache.result_from(hit, vc,
                                                    job.build_seconds)
                    results[index] = result
                    obs.counter("prover.cache_hits").inc()
                    self._emit(ev.CACHE_HIT, vc, seconds=job.build_seconds)
                    if self.progress is not None:
                        self.progress(result)
                    continue
            pending.append(job)

        # Longest-expected-first; index breaks ties deterministically.
        pending.sort(key=lambda j: (-j.expected, j.index))
        units = self._form_units(pending)

        if self.config.jobs <= 1 or not pending:
            self._run_inline(units, results, fresh_timings)
        else:
            self._run_pools(units, results, fresh_timings)

        report = ProofReport(results=[r for r in results if r is not None])
        run_span.finish()
        report.wall_seconds = self._now()
        if self.cache is not None and fresh_timings:
            self.cache.store_timings(fresh_timings)
        self._emit(ev.RUN_FINISHED, None, seconds=report.wall_seconds,
                   solver_seconds=report.solver_seconds)
        return report

    # -- inline lane -------------------------------------------------------

    def _finish(self, job: _Job, result: VCResult, attempt: int, lane: str,
                results, fresh_timings) -> None:
        result.seconds += job.build_seconds
        results[job.index] = result
        fresh_timings[job.vc.name] = result.seconds
        obs.counter("prover.discharged", lane=lane).inc()
        if (job.fingerprint is not None and self.cache is not None):
            self.cache.put(job.fingerprint, result)
        self._emit(ev.FINISHED, job.vc, seconds=result.seconds,
                   solver_seconds=result.solver_seconds, worker=lane,
                   status=result.status.value, attempt=attempt)
        if self.progress is not None:
            self.progress(result)

    def _maybe_crash(self, vc: VC) -> None:
        plan = self.config.fault_plan
        if plan is None:
            return
        decision = plan.draw("prover.worker")
        if decision is not None and decision.kind == "worker-crash":
            raise WorkerCrash(f"injected crash discharging {vc.name}")

    def _lane_discharge(self, vc: VC, budgets) -> tuple[VCResult, int]:
        self._maybe_crash(vc)
        return _discharge_with_ladder(vc, budgets, self.config.preprocess)

    def _lane_discharge_family(self, unit, budgets):
        return discharge_family([job.vc for job in unit], budgets,
                                preprocess=self.config.preprocess,
                                on_member=self._maybe_crash)

    def _form_units(self, pending) -> list[list[_Job]]:
        """Group pending jobs into dispatch units.

        A unit is a list of jobs discharged together: singletons take the
        classic one-solver-per-VC path; families of ≥2 same-shape SMT goals
        share one incremental solver.  A unit is placed at the position of
        its highest-priority member, with members in canonical engine
        order, so unit formation is a deterministic function of the
        population regardless of job count.
        """
        if not self.config.incremental:
            return [[job] for job in pending]
        by_family: dict[tuple, list[_Job]] = {}
        for job in pending:
            if job.family is not None:
                key = (job.family, job.vc.simplify)
                by_family.setdefault(key, []).append(job)
        units: list[list[_Job]] = []
        claimed: set[int] = set()
        for job in pending:
            if job.index in claimed:
                continue
            members = (by_family.get((job.family, job.vc.simplify), [])
                       if job.family is not None else [])
            if len(members) >= 2:
                unit = sorted(members, key=lambda j: j.index)
                claimed.update(j.index for j in unit)
                obs.counter("prover.family_reuse").inc(len(unit) - 1)
                units.append(unit)
            else:
                units.append([job])
        return units

    def _run_inline(self, units, results, fresh_timings) -> None:
        budgets = self.config.budgets()
        for unit in units:
            for job in unit:
                self._emit(ev.STARTED, job.vc, worker="inline")
            if len(unit) == 1:
                job = unit[0]
                try:
                    result, attempt = self._lane_discharge(job.vc, budgets)
                except Exception as exc:
                    # a dead worker costs one ERROR verdict, not the run —
                    # same contract the pool lanes already keep
                    result, attempt = _crash_result(job.vc, exc), 1
                outs = [(result, attempt)]
            else:
                try:
                    outs = self._lane_discharge_family(unit, budgets)
                except Exception as exc:
                    outs = [(_crash_result(j.vc, exc), 1) for j in unit]
            for job, (result, attempt) in zip(unit, outs):
                self._finish(job, result, attempt, "inline", results,
                             fresh_timings)

    # -- parallel lanes ----------------------------------------------------

    def _fork_context(self):
        import multiprocessing

        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            return None

    def _run_pools(self, units, results, fresh_timings) -> None:
        budgets = self.config.budgets()
        spec = self.engine.rebuild_spec
        context = self._fork_context() if spec is not None else None

        proc_units: list[list[_Job]] = []
        thread_units: list[list[_Job]] = []
        if spec is not None and context is not None:
            for unit in units:
                # Reconstruction is by name: ambiguous (duplicated) names
                # cannot be dispatched to a worker process.  A family unit
                # travels whole — one ambiguous member keeps the family in
                # the thread lane.
                (proc_units
                 if all(j.vc.name in self._unique_names for j in unit)
                 else thread_units).append(unit)
        else:
            thread_units = list(units)

        pools = []
        future_to_unit = {}
        try:
            if proc_units:
                executor = ProcessPoolExecutor(
                    max_workers=self.config.jobs, mp_context=context)
                pools.append(executor)
                builder_name, builder_kwargs = spec
                for unit in proc_units:
                    for job in unit:
                        self._emit(ev.STARTED, job.vc, worker="proc")
                    if len(unit) == 1:
                        future = executor.submit(
                            _pool_discharge, builder_name, builder_kwargs,
                            unit[0].vc.name, budgets, self.config.preprocess)
                    else:
                        future = executor.submit(
                            _pool_discharge_family, builder_name,
                            builder_kwargs, [j.vc.name for j in unit],
                            budgets, self.config.preprocess)
                    future_to_unit[future] = (unit, "proc")
            if thread_units:
                executor = ThreadPoolExecutor(
                    max_workers=self.config.jobs,
                    thread_name_prefix="prover")
                pools.append(executor)
                for unit in thread_units:
                    for job in unit:
                        self._emit(ev.STARTED, job.vc, worker="thread")
                    if len(unit) == 1:
                        future = executor.submit(
                            self._lane_discharge, unit[0].vc, budgets)
                    else:
                        future = executor.submit(
                            self._lane_discharge_family, unit, budgets)
                    future_to_unit[future] = (unit, "thread")

            outstanding = set(future_to_unit)
            while outstanding:
                done, outstanding = wait(outstanding,
                                         return_when=FIRST_COMPLETED)
                for future in done:
                    unit, lane = future_to_unit[future]
                    try:
                        payload = future.result()
                    except Exception as exc:
                        outs = [(_crash_result(j.vc, exc), 1) for j in unit]
                    else:
                        if len(unit) == 1:
                            outs = [_deserialize_result(payload)
                                    if lane == "proc" else payload]
                        elif lane == "proc":
                            outs = [_deserialize_result(p) for p in payload]
                        else:
                            outs = payload
                    for job, (result, attempt) in zip(unit, outs):
                        self._finish(job, result, attempt, lane, results,
                                     fresh_timings)
        finally:
            for pool in pools:
                pool.shutdown(wait=True)


def prove_all(engine: ProofEngine, jobs: int = 1,
              cache: ProofCache | None = None,
              config: ProverConfig | None = None,
              on_event=None, progress=None) -> ProofReport:
    """Discharge every VC of `engine` under the scheduler.

    Returns a :class:`ProofReport` whose contents and ordering are
    independent of `jobs`; `report.wall_seconds` carries the end-to-end
    time and `report.cache_hits` the number of VCs served from the
    persistent proof cache.  Pass ``config=ProverConfig(use_cache=False)``
    (or a `cache` instance) to control caching explicitly."""
    if config is None:
        config = ProverConfig(jobs=jobs)
    else:
        config.jobs = jobs
    scheduler = ProverScheduler(engine, config=config, cache=cache,
                                on_event=on_event, progress=progress)
    return scheduler.run()
