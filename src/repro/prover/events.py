"""Typed events of a scheduled proof run, carried by :mod:`repro.obs`.

Every VC's lifecycle is observable: ``queued`` when the scheduler accepts
it, ``cache-hit`` when the persistent proof cache already holds a verdict,
``started``/``finished`` around an actual discharge (with the attempt
number of the retry ladder), and ``run-finished`` with the run totals.

:class:`ProofEvent` is the typed, frozen record; :class:`EventLog` keeps
the run's own (bounded) list for report summaries *and* republishes every
event on the process-wide :func:`repro.obs.bus` as ``prover.<kind>`` —
which is how ``python -m repro prove --trace out.jsonl`` lands prover
events in the same JSONL stream as SMT-phase spans and kernel-path
counters, instead of the private stream this module used to maintain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.obs.events import Event

QUEUED = "queued"
STARTED = "started"
FINISHED = "finished"
CACHE_HIT = "cache-hit"
RUN_FINISHED = "run-finished"


@dataclass(frozen=True)
class ProofEvent:
    kind: str
    vc: str = ""
    category: str = ""
    #: Seconds since the run started (monotonic, relative).
    t: float = 0.0
    #: Wall-clock duration of the discharge (``finished`` events).
    seconds: float = 0.0
    #: Time inside the solving pipeline (rewrite + blast + SAT).
    solver_seconds: float = 0.0
    #: Which lane executed the VC: "inline", "proc", or "thread".
    worker: str = ""
    #: Result status for ``finished`` events ("proved", "failed", ...).
    status: str = ""
    #: 1-based attempt number in the conflict-budget retry ladder.
    attempt: int = 0

    def to_obs_event(self) -> Event:
        """This record as a bus event (name ``prover.<kind>``), carrying
        only the fields that are meaningful for the kind."""
        fields: dict = {}
        if self.vc:
            fields["vc"] = self.vc
        if self.category:
            fields["category"] = self.category
        if self.worker:
            fields["worker"] = self.worker
        if self.kind in (FINISHED, RUN_FINISHED):
            fields["dur"] = self.seconds
            fields["solver_seconds"] = self.solver_seconds
        if self.status:
            fields["status"] = self.status
        if self.attempt:
            fields["attempt"] = self.attempt
        return obs.make_event(f"prover.{self.kind}", t=self.t, **fields)

    def line(self) -> str:
        parts = [f"{self.t:8.3f}s", f"{self.kind:<12}"]
        if self.vc:
            parts.append(self.vc)
        if self.kind == FINISHED:
            parts.append(f"[{self.status}]")
            parts.append(f"wall={self.seconds:.3f}s")
            parts.append(f"solver={self.solver_seconds:.3f}s")
            if self.attempt > 1:
                parts.append(f"attempt={self.attempt}")
        if self.worker:
            parts.append(f"({self.worker})")
        return " ".join(parts)


@dataclass
class EventLog:
    """The run's event record: a bounded typed list for summaries, with
    every event republished on the shared :mod:`repro.obs` bus (free when
    nobody is tracing) and to an optional per-run callable sink."""

    events: list[ProofEvent] = field(default_factory=list)
    sink: object = None  # callable(ProofEvent) | None

    def emit(self, event: ProofEvent) -> None:
        self.events.append(event)
        shared = obs.bus()
        if shared.active:
            shared.emit_event(event.to_obs_event())
        if self.sink is not None:
            self.sink(event)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def of_kind(self, kind: str) -> list[ProofEvent]:
        return [e for e in self.events if e.kind == kind]

    def wall_seconds(self) -> float:
        return max((e.t for e in self.events), default=0.0)

    def cumulative_solver_seconds(self) -> float:
        return sum(e.solver_seconds for e in self.events
                   if e.kind == FINISHED)

    def summary_lines(self) -> list[str]:
        counts = self.counts()
        finished = self.of_kind(FINISHED)
        retried = sum(1 for e in finished if e.attempt > 1)
        lines = [
            f"events: {len(self.events)} "
            f"(queued {counts.get(QUEUED, 0)}, "
            f"cache-hit {counts.get(CACHE_HIT, 0)}, "
            f"started {counts.get(STARTED, 0)}, "
            f"finished {counts.get(FINISHED, 0)})",
            f"wall-clock: {self.wall_seconds():.2f} s, cumulative solver "
            f"time: {self.cumulative_solver_seconds():.2f} s",
        ]
        if retried:
            lines.append(f"budget retries: {retried} VCs needed more than "
                         f"one attempt")
        return lines
