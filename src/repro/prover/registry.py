"""Registry of named proof builders.

VC objects close over goal builders and scenario caches, so they cannot be
pickled across a process boundary.  Worker processes therefore receive only
``(builder name, kwargs, vc name)`` and rebuild their assigned VCs locally:
the builder name resolves — lazily, so workers need no imports beyond this
module — to a callable returning a :class:`repro.verif.engine.ProofEngine`
(or a plain list of VCs), and the VC is looked up by name in the rebuilt
population.

Builders registered at runtime (tests, ad-hoc populations) also work with
the process pool on platforms whose default start method is ``fork``, since
the child inherits this module's state; the scheduler falls back to
in-process threads whenever a VC is not reconstructible.
"""

from __future__ import annotations

import importlib
from typing import Callable

#: Builders shipped with the repository, resolved on first use.
_LAZY: dict[str, tuple[str, str]] = {
    "pt-refinement": ("repro.core.refine.proof", "build_proof"),
}

_BUILDERS: dict[str, Callable] = {}

#: Per-process memo of rebuilt populations, so a worker discharging many
#: VCs of one population pays the build cost once.
_POPULATIONS: dict[tuple, dict] = {}


def register_builder(name: str, builder: Callable) -> None:
    """Register `builder` under `name` (overwrites any previous binding)."""
    _BUILDERS[name] = builder
    _POPULATIONS.clear()


def get_builder(name: str) -> Callable:
    builder = _BUILDERS.get(name)
    if builder is not None:
        return builder
    lazy = _LAZY.get(name)
    if lazy is None:
        raise KeyError(
            f"no proof builder registered under {name!r}; "
            f"known: {sorted(set(_BUILDERS) | set(_LAZY))}"
        )
    module, attr = lazy
    builder = getattr(importlib.import_module(module), attr)
    _BUILDERS[name] = builder
    return builder


def builder_names() -> list[str]:
    return sorted(set(_BUILDERS) | set(_LAZY))


def _freeze(kwargs: dict) -> tuple:
    return tuple(sorted(kwargs.items()))


def rebuild_population(name: str, kwargs: dict) -> dict:
    """Build (once per process) and return ``{vc name: VC}`` for the named
    builder called with `kwargs`."""
    key = (name, _freeze(kwargs))
    population = _POPULATIONS.get(key)
    if population is None:
        built = get_builder(name)(**kwargs)
        vcs = built.vcs() if hasattr(built, "vcs") else list(built)
        population = {vc.name: vc for vc in vcs}
        _POPULATIONS[key] = population
    return population


def rebuild_vc(name: str, kwargs: dict, vc_name: str):
    """Rebuild one VC by name; raises KeyError if the builder's population
    does not contain it (the caller then falls back to in-process work)."""
    population = rebuild_population(name, kwargs)
    vc = population.get(vc_name)
    if vc is None:
        raise KeyError(
            f"builder {name!r} produced no VC named {vc_name!r}"
        )
    return vc
