"""Persistent, content-addressed proof cache.

Each definitive verdict (proved / failed-with-model) for an SMT goal is
stored as one JSON file keyed by the goal fingerprint
(:mod:`repro.prover.fingerprint`).  A re-verification run then discharges
only the VCs whose goals (or solver stack) actually changed — the
incremental-turnaround property that makes a proof-engineering loop usable.

Robustness contract: a corrupted, truncated, or hand-edited cache file is a
cold miss, never a crash; writes are atomic (temp file + rename) so a killed
run cannot corrupt an entry.

The cache directory also holds ``timings.json`` — last-observed per-VC
wall times (SMT and structural VCs alike), which the scheduler uses for
longest-expected-first ordering so the slowest VC starts first instead of
serializing the end of a parallel run.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field

from repro.verif.vc import VCResult, VCStatus

#: Cache format version: bump to invalidate every existing entry.
FORMAT = 1

#: Only definitive verdicts are cached.  TIMEOUT and ERROR are retried on
#: the next run (a larger budget or a fixed environment may decide them).
_CACHEABLE = {VCStatus.PROVED.value, VCStatus.FAILED.value}


def default_cache_dir() -> str:
    override = os.environ.get("REPRO_PROOF_CACHE")
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME",
                          os.path.join(os.path.expanduser("~"), ".cache"))
    return os.path.join(base, "repro", "proofs")


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0  # corrupted / unreadable entries treated as misses

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ProofCache:
    """On-disk proof cache; safe to share across runs, tolerant of damage."""

    directory: str = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)

    def _path(self, fingerprint: str) -> str:
        # Shard by prefix so directories stay listable at scale.
        return os.path.join(self.directory, fingerprint[:2],
                            fingerprint + ".json")

    # -- verdicts ----------------------------------------------------------

    def get(self, fingerprint: str) -> dict | None:
        """The stored verdict for `fingerprint`, or None on any miss
        (including a corrupted entry, which is discarded)."""
        path = self._path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            self._discard(path)
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        if not self._valid(entry):
            self._discard(path)
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    def put(self, fingerprint: str, result: VCResult,
            deterministic_stats: dict | None = None) -> bool:
        """Persist a definitive verdict; returns False (and stores nothing)
        for non-cacheable outcomes (TIMEOUT / ERROR)."""
        if result.status.value not in _CACHEABLE:
            return False
        entry = {
            "format": FORMAT,
            "vc": result.name,
            "category": result.category,
            "status": result.status.value,
            "detail": result.detail,
            "model": result.counterexample
            if isinstance(result.counterexample, dict) else None,
            "seconds": result.seconds,
            "solver_seconds": result.solver_seconds,
            "stats": deterministic_stats or result.solver_stats,
        }
        self._write_json(self._path(fingerprint), entry)
        self.stats.stores += 1
        return True

    def result_from(self, entry: dict, vc, seconds: float) -> VCResult:
        """Materialize a cached verdict as a :class:`VCResult` for `vc`.

        The verdict (status, detail, model) comes from the entry; the
        identity (name, category) comes from the VC being discharged —
        distinct VCs with structurally identical goals legitimately share
        one cache entry, so the entry's recorded name may differ from the
        VC that is hitting it.  `seconds` is the actual time this run
        spent (goal build + lookup); the original solve time stays
        available in the entry for the scheduler's duration estimates."""
        status = VCStatus(entry["status"])
        model = entry.get("model")
        return VCResult(
            name=vc.name,
            status=status,
            seconds=seconds,
            category=vc.category,
            detail=entry.get("detail", ""),
            counterexample=model if status is VCStatus.FAILED else None,
            solver_seconds=0.0,
            cached=True,
            solver_stats=entry.get("stats", {}),
        )

    @staticmethod
    def _valid(entry) -> bool:
        return (
            isinstance(entry, dict)
            and entry.get("format") == FORMAT
            and entry.get("status") in _CACHEABLE
            and isinstance(entry.get("vc"), str)
            and isinstance(entry.get("seconds"), (int, float))
        )

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- timing history ----------------------------------------------------

    def load_timings(self) -> dict[str, float]:
        path = os.path.join(self.directory, "timings.json")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError, UnicodeDecodeError):
            return {}
        if not isinstance(data, dict):
            return {}
        return {name: float(seconds) for name, seconds in data.items()
                if isinstance(name, str) and isinstance(seconds, (int, float))}

    def store_timings(self, timings: dict[str, float]) -> None:
        merged = self.load_timings()
        merged.update(timings)
        self._write_json(os.path.join(self.directory, "timings.json"), merged)

    # -- plumbing ----------------------------------------------------------

    @staticmethod
    def _write_json(path: str, payload: dict) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            ProofCache._discard(tmp)
            raise

    def clear(self) -> int:
        """Delete every cached verdict (keeps the directory); returns the
        number of entries removed."""
        removed = 0
        for root, _, files in os.walk(self.directory):
            for name in files:
                if name.endswith(".json"):
                    self._discard(os.path.join(root, name))
                    removed += 1
        return removed
