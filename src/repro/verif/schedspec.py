"""The scheduler specification: a small state machine with inductive
invariants.

Following Baumann et al.'s "specification is the bottleneck" advice,
the scheduler spec is written *first-class and small*: abstract threads
with tiny integer vruntimes and weights, per-core queue sets, and the
four invariants the implementation's :meth:`Scheduler.audit` mirrors at
runtime:

* ``one_place`` — every non-exited thread is in exactly one of
  {running, exactly-one-runqueue, blocked};
* ``weight_sums`` / ``ready_counts`` — the cached per-core aggregates
  match the queue members (the redundancy that makes ``has_runnable``
  O(1) in the implementation is *specified*, not incidental);
* ``spread_bounded`` — the vruntime spread of runnable fair threads on
  a core is bounded (weighted fairness: nobody laps the field);
* ``rt_first`` — a fair thread runs on a core with RT work queued only
  via the bandwidth throttle, i.e. with the core's RT streak reset.

Vruntimes are kept finite by *canonical renormalization*: after every
transition the minimum runnable fair vruntime is shifted to zero, so
bounded exploration in :mod:`repro.verif.schedproof` covers the whole
reachable quotient space.

This module is spec-layer: pure functions over frozen dataclasses
(checked by ``python -m repro analyze``'s purity lint).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.verif.statemachine import SpecStateMachine, Transition

#: Abstract quantum: one pick charges QUANTUM * MAX_WEIGHT / weight.
QUANTUM = 2
#: Fair weights the bounded configurations use.
WEIGHTS = (1, 2)
MAX_WEIGHT = 2
#: Sleeper bonus (virtual time a woken thread may lag the queue min).
BONUS = 1
#: Consecutive RT picks before a fair pick is forced (throttle).
RT_STREAK_LIMIT = 2
#: Bound on the vruntime spread of runnable fair threads per core:
#: one maximal charge (QUANTUM * MAX_WEIGHT / 1) plus the bonus.
SPREAD_LIMIT = QUANTUM * MAX_WEIGHT + BONUS
#: Migration imbalance threshold (queued fair count difference).
MIGRATE_GAP = 2

QUEUED = "queued"
RUNNING = "running"
BLOCKED = "blocked"
EXITED = "exited"

FAIR = "fair"
RT = "rt"


@dataclass(frozen=True, order=True)
class SpecThread:
    """One abstract thread: ``weight`` is the fair weight for fair
    threads and the RT priority for RT threads."""

    tid: int
    kind: str          # FAIR | RT
    weight: int
    vruntime: int
    state: str         # QUEUED | RUNNING | BLOCKED | EXITED
    core: int


@dataclass(frozen=True)
class SchedState:
    """Threads plus the redundant per-core caches the invariants pin."""

    ncores: int
    threads: tuple[SpecThread, ...]
    queues: tuple[tuple[int, ...], ...]       # queued tids per core
    weight_sums: tuple[int, ...]              # fair weight per core
    ready_counts: tuple[int, ...]
    rt_streak: tuple[int, ...]


# -- helpers (all pure) -------------------------------------------------------


def thread_by_tid(state: SchedState, tid: int) -> SpecThread:
    for thread in state.threads:
        if thread.tid == tid:
            return thread
    raise KeyError(tid)


def queued_on(state: SchedState, core: int,
              kind: str | None = None) -> tuple[SpecThread, ...]:
    found = []
    for tid in state.queues[core]:
        thread = thread_by_tid(state, tid)
        if kind is None or thread.kind == kind:
            found.append(thread)
    return tuple(found)


def running_on(state: SchedState, core: int) -> SpecThread | None:
    for thread in state.threads:
        if thread.state == RUNNING and thread.core == core:
            return thread
    return None


def runnable_fair(state: SchedState, core: int) -> tuple[SpecThread, ...]:
    found = []
    for thread in state.threads:
        if thread.kind == FAIR and thread.core == core \
                and thread.state in (QUEUED, RUNNING):
            found.append(thread)
    return tuple(found)


def min_fair_vruntime(state: SchedState, core: int) -> int:
    """The core's fairness floor: minimum vruntime over its runnable
    (queued or running) fair threads — the spec counterpart of the
    implementation's monotone ``min_vruntime`` watermark."""
    values = [t.vruntime for t in runnable_fair(state, core)]
    return min(values) if values else 0


def charge(weight: int) -> int:
    return QUANTUM * MAX_WEIGHT // weight


def _rebuild(state: SchedState,
             threads: tuple[SpecThread, ...]) -> SchedState:
    """Recompute the cached aggregates from the threads and normalize
    vruntimes *per core* so each core's minimum runnable fair vruntime
    is zero.  Nothing in the spec compares vruntimes across cores
    (migration renormalizes against per-core floors), so the shift is a
    congruence — and it is what keeps the reachable space finite."""
    shifts = []
    for core in range(state.ncores):
        runnable = [t.vruntime for t in threads
                    if t.kind == FAIR and t.core == core
                    and t.state in (QUEUED, RUNNING)]
        shifts.append(min(runnable) if runnable else 0)
    if any(shift > 0 for shift in shifts):
        shifted = []
        for t in threads:
            if t.kind == FAIR and t.state != EXITED:
                shifted.append(replace(
                    t, vruntime=max(0, t.vruntime - shifts[t.core])))
            else:
                shifted.append(t)
        threads = tuple(shifted)
    queues = []
    weight_sums = []
    ready_counts = []
    for core in range(state.ncores):
        members = [t for t in threads
                   if t.state == QUEUED and t.core == core]
        queues.append(tuple(sorted(t.tid for t in members)))
        weight_sums.append(sum(t.weight for t in members
                               if t.kind == FAIR))
        ready_counts.append(len(members))
    return replace(state, threads=threads, queues=tuple(queues),
                   weight_sums=tuple(weight_sums),
                   ready_counts=tuple(ready_counts))


def canonical(state: SchedState) -> SchedState:
    """Recompute the cached aggregates and renormalize vruntimes — the
    public entry the proof layer uses to re-canonicalize perturbed
    states before induction checks."""
    return _rebuild(state, state.threads)


def _update(state: SchedState, new: SpecThread,
            streak: tuple[int, ...] | None = None) -> SchedState:
    threads = tuple(new if t.tid == new.tid else t
                    for t in state.threads)
    mid = replace(state, threads=threads,
                  rt_streak=state.rt_streak if streak is None else streak)
    return _rebuild(mid, mid.threads)


# -- the pick policy (shared by transition and conformance VCs) ---------------


def pick_choice(state: SchedState, core: int) -> SpecThread | None:
    """Which thread a pick on `core` chooses: the max-priority RT
    thread, unless the throttle forces the min-vruntime fair thread."""
    rt_queue = queued_on(state, core, RT)
    fair_queue = queued_on(state, core, FAIR)
    throttled = state.rt_streak[core] >= RT_STREAK_LIMIT
    if rt_queue and (not throttled or not fair_queue):
        return max(rt_queue, key=lambda t: (t.weight, -t.tid))
    if fair_queue:
        return min(fair_queue, key=lambda t: (t.vruntime, t.tid))
    return None


# -- transitions --------------------------------------------------------------


def _pick_enabled(state: SchedState, args: tuple) -> bool:
    (core,) = args
    return core < state.ncores and running_on(state, core) is None \
        and len(state.queues[core]) > 0


def _pick_apply(state: SchedState, args: tuple) -> SchedState:
    (core,) = args
    chosen = pick_choice(state, core)
    streak = list(state.rt_streak)
    if chosen.kind == RT:
        streak[core] = min(streak[core] + 1, RT_STREAK_LIMIT)
    else:
        streak[core] = 0
    return _update(state, replace(chosen, state=RUNNING),
                   streak=tuple(streak))


def _deschedule_enabled(state: SchedState, args: tuple) -> bool:
    (core,) = args
    return core < state.ncores and running_on(state, core) is not None


def _charged(thread: SpecThread) -> SpecThread:
    if thread.kind == FAIR:
        return replace(thread,
                       vruntime=thread.vruntime + charge(thread.weight))
    return thread


def _requeue_apply(state: SchedState, args: tuple) -> SchedState:
    (core,) = args
    thread = _charged(running_on(state, core))
    return _update(state, replace(thread, state=QUEUED))


def _block_apply(state: SchedState, args: tuple) -> SchedState:
    (core,) = args
    thread = _charged(running_on(state, core))
    return _update(state, replace(thread, state=BLOCKED))


def _exit_apply(state: SchedState, args: tuple) -> SchedState:
    (core,) = args
    thread = running_on(state, core)
    return _update(state, replace(thread, state=EXITED))


def _wake_enabled(state: SchedState, args: tuple) -> bool:
    (tid,) = args
    for thread in state.threads:
        if thread.tid == tid:
            return thread.state == BLOCKED
    return False


def _wake_apply(state: SchedState, args: tuple) -> SchedState:
    (tid,) = args
    thread = thread_by_tid(state, tid)
    vruntime = thread.vruntime
    if thread.kind == FAIR:
        floor = min_fair_vruntime(state, thread.core)
        vruntime = max(vruntime, floor - BONUS)
    return _update(state, replace(thread, state=QUEUED,
                                  vruntime=max(0, vruntime)))


def _migrate_args(state: SchedState):
    pairs = []
    for src in range(state.ncores):
        for dst in range(state.ncores):
            if src == dst:
                continue
            fair_src = queued_on(state, src, FAIR)
            if len(fair_src) < len(queued_on(state, dst, FAIR)) \
                    + MIGRATE_GAP:
                continue
            # the steal candidate: max vruntime (most-run) fair thread
            chosen = max(fair_src, key=lambda t: (t.vruntime, t.tid))
            pairs.append((chosen.tid, dst))
    return pairs


def _migrate_enabled(state: SchedState, args: tuple) -> bool:
    return args in _migrate_args(state)


def _migrate_apply(state: SchedState, args: tuple) -> SchedState:
    tid, dst = args
    thread = thread_by_tid(state, tid)
    lead = max(0, thread.vruntime
               - min_fair_vruntime(state, thread.core))
    vruntime = min_fair_vruntime(state, dst) + lead
    return _update(state, replace(thread, core=dst, vruntime=vruntime))


def _wake_args(state: SchedState):
    return [(t.tid,) for t in state.threads if t.state == BLOCKED]


def _core_args(state: SchedState):
    return [(core,) for core in range(state.ncores)]


# -- invariants ---------------------------------------------------------------


def inv_one_place(state: SchedState) -> bool:
    """Every non-exited thread is in exactly one of {running, exactly
    one runqueue, blocked}; at most one thread runs per core."""
    for thread in state.threads:
        appearances = sum(thread.tid in queue for queue in state.queues)
        if thread.state == QUEUED:
            if appearances != 1 or thread.tid not in \
                    state.queues[thread.core]:
                return False
        elif appearances != 0:
            return False
    for core in range(state.ncores):
        running = [t for t in state.threads
                   if t.state == RUNNING and t.core == core]
        if len(running) > 1:
            return False
    return True


def inv_weight_sums(state: SchedState) -> bool:
    for core in range(state.ncores):
        expected = sum(t.weight for t in queued_on(state, core, FAIR))
        if state.weight_sums[core] != expected:
            return False
        if state.ready_counts[core] != len(state.queues[core]):
            return False
    return True


def inv_spread_bounded(state: SchedState) -> bool:
    for core in range(state.ncores):
        values = [t.vruntime for t in runnable_fair(state, core)]
        if values and max(values) - min(values) > SPREAD_LIMIT:
            return False
    return True


def inv_vruntime_bounded(state: SchedState) -> bool:
    """Renormalization keeps every vruntime in a finite window — the
    reason bounded exploration covers the reachable quotient space."""
    bound = SPREAD_LIMIT + QUANTUM * MAX_WEIGHT + BONUS
    return all(0 <= t.vruntime <= bound for t in state.threads
               if t.kind == FAIR and t.state != EXITED)


def inv_rt_first(state: SchedState) -> bool:
    """RT never waits behind fair except through the throttle.  The
    inductive strengthening: a fair thread running on a core implies
    the core's RT streak was reset by that very pick — which entails
    the user-facing property (fair running past queued RT work only
    happens with the streak at zero, i.e. through the throttle)."""
    for core in range(state.ncores):
        running = running_on(state, core)
        if running is None or running.kind != FAIR:
            continue
        if state.rt_streak[core] != 0:
            return False
    return True


def inv_running_lag(state: SchedState) -> bool:
    """Strengthening that makes ``spread_bounded`` inductive: a running
    fair thread leads the queued fair minimum by at most the sleeper
    bonus.  True because picks take the minimum and wakes clamp to the
    floor minus the bonus — and needed, because the deschedule charge
    is only spread-safe from states where the running thread has not
    already pulled ahead."""
    for core in range(state.ncores):
        running = running_on(state, core)
        if running is None or running.kind != FAIR:
            continue
        queued = [t.vruntime for t in queued_on(state, core, FAIR)]
        if queued and running.vruntime > min(queued) + BONUS:
            return False
    return True


def inv_blocked_bounded(state: SchedState) -> bool:
    """Strengthening that makes ``spread_bounded`` inductive across
    wakes: a blocked fair thread never sits above the spread window.
    True because blocking charges a lag-bounded running thread (at
    most ``BONUS`` past a zero floor, plus one maximal charge) and
    renormalization only ever shifts vruntimes down."""
    return all(t.vruntime <= SPREAD_LIMIT for t in state.threads
               if t.kind == FAIR and t.state == BLOCKED)


INVARIANTS = {
    "one_place": inv_one_place,
    "weight_sums": inv_weight_sums,
    "spread_bounded": inv_spread_bounded,
    "vruntime_bounded": inv_vruntime_bounded,
    "rt_first": inv_rt_first,
    "running_lag": inv_running_lag,
    "blocked_bounded": inv_blocked_bounded,
}


# -- bounded configurations ---------------------------------------------------


def make_state(threads: tuple[SpecThread, ...],
               ncores: int) -> SchedState:
    base = SchedState(ncores=ncores, threads=tuple(sorted(threads)),
                      queues=((),) * ncores,
                      weight_sums=(0,) * ncores,
                      ready_counts=(0,) * ncores,
                      rt_streak=(0,) * ncores)
    return _rebuild(base, base.threads)


def smp_config() -> SchedState:
    """Two cores, three fair threads of mixed weight + one RT thread:
    the configuration migration and the throttle both exercise."""
    return make_state((
        SpecThread(1, FAIR, 1, 0, QUEUED, 0),
        SpecThread(2, FAIR, 2, 0, QUEUED, 0),
        SpecThread(3, RT, 2, 0, QUEUED, 0),
        SpecThread(4, FAIR, 1, 0, QUEUED, 1),
    ), ncores=2)


def uniprocessor_config() -> SchedState:
    """One core, a sleeper and an RT thread: wake clamping + throttle."""
    return make_state((
        SpecThread(1, FAIR, 1, 0, QUEUED, 0),
        SpecThread(2, RT, 1, 0, QUEUED, 0),
        SpecThread(3, FAIR, 2, 0, BLOCKED, 0),
    ), ncores=1)


def sched_machine(init_states=None) -> SpecStateMachine:
    return SpecStateMachine(
        name="scheduler",
        init_states=(list(init_states) if init_states is not None
                     else [smp_config(), uniprocessor_config()]),
        transitions=[
            Transition("pick", _pick_enabled, _pick_apply,
                       args=_core_args),
            Transition("requeue", _deschedule_enabled, _requeue_apply,
                       args=_core_args),
            Transition("block", _deschedule_enabled, _block_apply,
                       args=_core_args),
            Transition("exit", _deschedule_enabled, _exit_apply,
                       args=_core_args),
            Transition("wake", _wake_enabled, _wake_apply,
                       args=_wake_args),
            Transition("migrate", _migrate_enabled, _migrate_apply,
                       args=_migrate_args),
        ],
        invariants=dict(INVARIANTS),
    )
