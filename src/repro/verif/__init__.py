"""A lightweight verification framework standing in for Verus.

The paper verifies NrOS with Verus: specifications are state machines,
implementations refine them, and the SMT solver discharges verification
conditions (VCs).  This package reproduces that structure with lightweight
formal methods:

* :mod:`repro.verif.statemachine` — specification state machines
* :mod:`repro.verif.vc` — verification-condition objects and results
* :mod:`repro.verif.engine` — the timed proof engine behind Figure 1a
* :mod:`repro.verif.explore` — bounded state-space exploration
* :mod:`repro.verif.refinement` — refinement obligations (simulation diagrams)
* :mod:`repro.verif.contracts` — requires/ensures runtime contracts
* :mod:`repro.verif.linear` — linear ownership tokens (data-race freedom)
"""

from repro.verif.vc import VC, VCResult, VCStatus
from repro.verif.engine import ProofEngine, ProofReport
from repro.verif.statemachine import SpecStateMachine, Transition
from repro.verif.contracts import requires, ensures, contracts_enabled, ContractError

__all__ = [
    "VC",
    "VCResult",
    "VCStatus",
    "ProofEngine",
    "ProofReport",
    "SpecStateMachine",
    "Transition",
    "requires",
    "ensures",
    "contracts_enabled",
    "ContractError",
]
