"""Linear ownership tokens — the data-race-freedom obligation.

Section 3 of the paper identifies three verification obligations for the
syscall boundary; the third is that memory holding syscall data is not
touched by other threads while the kernel handles the call.  In Rust this
falls out of `&mut` uniqueness.  Python has no borrow checker, so we provide
an explicit dynamic one: regions of an address space are claimed with
either *unique* (read-write) or *shared* (read-only) tokens, and conflicting
claims raise :class:`OwnershipError` — turning a latent data race into a
deterministic failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class OwnershipError(RuntimeError):
    """A claim conflicts with an outstanding token."""


@dataclass(frozen=True)
class Region:
    """A half-open byte range [start, end) in some address space."""

    start: int
    end: int

    def __post_init__(self):
        if self.start >= self.end:
            raise ValueError(f"empty or inverted region [{self.start:#x}, {self.end:#x})")

    def overlaps(self, other: "Region") -> bool:
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class Token:
    """An outstanding ownership claim."""

    region: Region
    owner: str
    unique: bool
    serial: int


@dataclass
class OwnershipTable:
    """Tracks outstanding tokens for one address space."""

    _tokens: dict[int, Token] = field(default_factory=dict)
    _next_serial: int = 0

    def claim_unique(self, start: int, length: int, owner: str) -> Token:
        """Claim exclusive (read-write) access to a buffer."""
        return self._claim(start, length, owner, unique=True)

    def claim_shared(self, start: int, length: int, owner: str) -> Token:
        """Claim shared (read-only) access; coexists with other shared
        claims but not with unique ones."""
        return self._claim(start, length, owner, unique=False)

    def _claim(self, start: int, length: int, owner: str, unique: bool) -> Token:
        region = Region(start, start + length)
        for token in self._tokens.values():
            if not token.region.overlaps(region):
                continue
            if unique or token.unique:
                kind = "unique" if token.unique else "shared"
                raise OwnershipError(
                    f"{owner} requested {'unique' if unique else 'shared'} "
                    f"access to [{start:#x}, {start + length:#x}) but "
                    f"{token.owner} holds a {kind} token on "
                    f"[{token.region.start:#x}, {token.region.end:#x})"
                )
        token = Token(region, owner, unique, self._next_serial)
        self._tokens[self._next_serial] = token
        self._next_serial += 1
        return token

    def release(self, token: Token) -> None:
        if token.serial not in self._tokens:
            raise OwnershipError(f"token {token.serial} already released")
        self._tokens.pop(token.serial)

    def outstanding(self) -> list[Token]:
        return list(self._tokens.values())

    def assert_quiescent(self) -> None:
        """Raise if any token is still outstanding (used at syscall exit)."""
        if self._tokens:
            held = ", ".join(
                f"{t.owner}[{t.region.start:#x},{t.region.end:#x})"
                for t in self._tokens.values()
            )
            raise OwnershipError(f"tokens leaked: {held}")
