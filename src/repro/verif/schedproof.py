"""The `scheduler` verification conditions.

Three families, all discharged through the existing prover scheduler
(category/group ``scheduler``):

* **spec obligations** — bounded exploration of
  :mod:`repro.verif.schedspec`'s state machine covers the *entire*
  reachable quotient space (per-core renormalization makes it finite),
  every invariant holds in every state, and each invariant is
  *inductive*: checked over the reachable states plus perturbed
  variants that satisfy the invariant but were never visited.  A
  vacuity VC hand-builds broken states (double-queued thread, stale
  weight cache, blown spread, RT waiting behind fair) and demands the
  invariants flag them;
* **conformance obligations** — seeded operation traces drive the real
  :class:`~repro.nros.sched.scheduler.Scheduler` and check
  :meth:`audit` (the runtime mirror of the spec invariants) after
  every operation, and the implementation's pick agrees with the
  spec's policy (max-priority RT unless throttled, else min-vruntime
  fair);
* **liveness-flavoured obligations** — bounded starvation freedom
  (a fair thread runs within ``RT_THROTTLE_STREAK + 1`` picks of any
  core under an RT busy loop), migration preserving the invariants,
  and ``forget`` purging queues.

This module is proof-layer code: it may use seeded randomness and
mutate scratch state freely; the spec it checks stays pure.
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.verif import schedspec as ss
from repro.verif.explore import check_inductive, reachable_states
from repro.verif.vc import VC

#: Exploration cap — comfortably above the measured reachable-space
#: size (7 451 states for the two bounded configurations), so hitting
#: the cap is itself a spec-regression signal (the space must stay
#: finite for the coverage claim to mean anything).
MAX_STATES = 20_000

_TRACE_SEEDS = (1, 2, 3)
_TRACE_OPS = 160


class _SchedSpecCache:
    """Explore once, share the reachable set across the VC family."""

    def __init__(self) -> None:
        self._result = None

    def result(self):
        if self._result is None:
            machine = ss.sched_machine()
            self._result = (machine,
                            reachable_states(machine,
                                             max_states=MAX_STATES))
        return self._result


def _perturbed_states(states, limit: int = 400):
    """Variants of reachable states that bounded exploration never
    visits: bumped vruntimes and RT streaks, re-canonicalized so the
    representation stays consistent.  ``check_inductive`` filters to
    the ones satisfying the invariant under test."""
    rng = random.Random(20_260_808)
    sample = states[::max(1, len(states) // limit)]
    variants = []
    for state in sample:
        which = rng.randrange(3)
        if which == 0 and state.threads:
            victim = rng.choice(state.threads)
            if victim.kind == ss.FAIR and victim.state != ss.EXITED:
                bumped = replace(victim,
                                 vruntime=victim.vruntime
                                 + rng.randint(1, 2))
                threads = tuple(bumped if t.tid == victim.tid else t
                                for t in state.threads)
                variants.append(ss.canonical(replace(state,
                                                     threads=threads)))
        elif which == 1:
            streak = tuple(rng.randint(0, ss.RT_STREAK_LIMIT)
                           for _ in range(state.ncores))
            variants.append(replace(state, rt_streak=streak))
        else:
            variants.append(state)
    return variants


def _spec_explored_vc(cache: _SchedSpecCache) -> VC:
    def check():
        _machine, result = cache.result()
        if result.truncated:
            return ("state space exceeded the exploration cap",
                    MAX_STATES)
        if not result.ok:
            name, state, trace = result.violation
            return (name, trace, state)
        return None

    return VC(
        name="sched-spec-explored",
        category="scheduler",
        check=check,
        description="bounded exploration covers the finite scheduler "
                    "state space with every invariant holding",
    )


def _spec_inductive_vc(cache: _SchedSpecCache, invariant: str) -> VC:
    def check():
        machine, result = cache.result()
        # Induction is relative to the invariant *conjunction* (the
        # usual strengthening): perturbed states that already violate a
        # sibling invariant are unreachable noise, not counterexamples.
        perturbed = [s for s in _perturbed_states(result.states)
                     if machine.check_invariants(s) is None]
        states = list(result.states) + perturbed
        return check_inductive(machine, states, invariant)

    return VC(
        name=f"sched-spec-inductive-{invariant.replace('_', '-')}",
        category="scheduler",
        check=check,
        description=f"scheduler invariant {invariant} is inductive "
                    f"over reachable + perturbed states",
    )


def _broken_states():
    """Hand-built invariant violations (one per invariant) for the
    vacuity guard."""
    base = ss.smp_config()
    t1 = ss.thread_by_tid(base, 1)
    # tid 1 queued on both cores
    double = replace(base, queues=(base.queues[0],
                                   base.queues[1] + (1,)))
    # weight cache out of sync with members
    stale = replace(base, weight_sums=(base.weight_sums[0] + 1,
                                       base.weight_sums[1]))
    # one queued fair thread lapped the field
    lapped_threads = tuple(
        replace(t, vruntime=ss.SPREAD_LIMIT + 50)
        if t.tid == 1 else t for t in base.threads)
    lapped = replace(base, threads=lapped_threads)
    # a fair thread running past queued RT work with a live streak
    running_threads = tuple(
        replace(t, state=ss.RUNNING) if t.tid == 1 else t
        for t in base.threads)
    rt_wait = replace(base, threads=running_threads,
                      queues=(tuple(tid for tid in base.queues[0]
                                    if tid != 1), base.queues[1]),
                      weight_sums=(base.weight_sums[0] - t1.weight,
                                   base.weight_sums[1]),
                      ready_counts=(base.ready_counts[0] - 1,
                                    base.ready_counts[1]),
                      rt_streak=(1, 0))
    return {
        "one_place": double,
        "weight_sums": stale,
        "spread_bounded": lapped,
        "rt_first": rt_wait,
    }


def _spec_vacuity_vc() -> VC:
    def check():
        machine = ss.sched_machine()
        for expected, state in _broken_states().items():
            violated = machine.check_invariants(state)
            if violated is None:
                return ("broken state not flagged", expected)
        return None

    return VC(
        name="sched-spec-detects-violations",
        category="scheduler",
        check=check,
        description="hand-broken states (double-queue, stale caches, "
                    "blown spread, RT behind fair) are flagged — the "
                    "invariants are not vacuous",
    )


# -- conformance: the real Scheduler under seeded op traces -------------------


def _make_thread(name: str):
    from repro.nros.proc.process import Thread

    class _Proc:
        def __init__(self) -> None:
            self.name = "schedproof"
            self.pid = 0

    def gen():
        yield

    return Thread(_Proc(), gen(), name=name)


def _drive_trace(seed: int, num_cores: int = 2,
                 ops: int = _TRACE_OPS):
    """Random ready/pick/block/wake/forget/set_policy trace; returns a
    counterexample tuple on the first audit violation, else None.

    Picks model the kernel's usage: at most one running thread per
    core (a core only asks for the next thread after descheduling the
    previous one) — the regime the spec's pick transition and the
    audit's rt_first mirror both assume."""
    from repro.nros.proc.process import BlockReason
    from repro.nros.sched.scheduler import Scheduler

    rng = random.Random(seed)
    sched = Scheduler(num_cores)
    spawned = 0
    ready: list = []
    running: list = []       # (thread, core) pairs
    blocked: list = []

    def spawn():
        nonlocal spawned
        spawned += 1
        thread = _make_thread(f"t{spawned}")
        kind = rng.randrange(4)
        if kind == 0:
            sched.set_nice(thread, rng.choice((-10, -5, 0, 5, 10)))
        elif kind == 1:
            sched.set_policy(thread, "fifo" if rng.random() < 0.5
                             else "rr", rt_prio=rng.randint(1, 99))
        sched.ready(thread)
        ready.append(thread)

    for _ in range(3):
        spawn()
    for step in range(ops):
        choice = rng.randrange(10)
        if choice <= 1 and spawned < 12:
            spawn()
        elif choice <= 4:
            busy = {core for (_t, core) in running}
            free = [core for core in range(num_cores)
                    if core not in busy]
            if free:
                core = rng.choice(free)
                thread = sched.next_thread(core=core)
                if thread is not None:
                    ready.remove(thread)
                    running.append((thread, core))
        elif choice <= 6 and running:
            thread, _core = running.pop(rng.randrange(len(running)))
            sched.ready(thread)
            ready.append(thread)
        elif choice == 7 and running:
            thread, _core = running.pop(rng.randrange(len(running)))
            sched.block(thread, BlockReason("sleep", step))
            blocked.append(thread)
        elif choice == 8 and blocked:
            thread = blocked.pop(rng.randrange(len(blocked)))
            sched.wake(thread)
            ready.append(thread)
        elif choice == 9:
            pools = [pool for pool in (ready, running, blocked) if pool]
            if pools:
                pool = rng.choice(pools)
                item = pool.pop(rng.randrange(len(pool)))
                sched.forget(item[0] if pool is running else item)
        problems = sched.audit()
        if problems:
            return (f"seed={seed}", f"step={step}", problems[0])
    return None


def _impl_trace_vc() -> VC:
    def check():
        for seed in _TRACE_SEEDS:
            counterexample = _drive_trace(seed)
            if counterexample is not None:
                return counterexample
        return None

    return VC(
        name="sched-impl-trace-invariants",
        category="scheduler",
        check=check,
        description="the implementation satisfies the spec invariants "
                    "(via Scheduler.audit) after every operation of "
                    "seeded random traces",
    )


def _impl_pick_policy_vc() -> VC:
    def check():
        from repro.nros.sched.entity import RT_THROTTLE_STREAK
        from repro.nros.sched.scheduler import Scheduler

        for seed in _TRACE_SEEDS:
            rng = random.Random(seed * 101)
            sched = Scheduler(1)
            threads = []
            for i in range(6):
                thread = _make_thread(f"p{i}")
                if i < 2:
                    sched.set_policy(thread, "fifo",
                                     rt_prio=rng.randint(1, 99))
                else:
                    sched.set_nice(thread, rng.choice((-5, 0, 5)))
                sched.ready(thread)
                threads.append(thread)
            for step in range(60):
                queue = sched._queues[0]
                top_rt = queue.top_rt_prio()
                fair_min = min(
                    (v for (v, _s, _w) in queue._valid.values()),
                    default=None)
                throttled = sched._rt_streak[0] >= RT_THROTTLE_STREAK
                picked = sched.next_thread(core=0)
                if picked is None:
                    break
                ent = sched._entities[picked.tid]
                if top_rt is not None and not (throttled
                                               and fair_min is not None):
                    if not ent.is_rt or ent.rt_prio != top_rt:
                        return (f"seed={seed}", f"step={step}",
                                "expected max-priority RT pick",
                                ent.policy.value, ent.rt_prio, top_rt)
                elif fair_min is not None:
                    if ent.is_rt or ent.vruntime != fair_min:
                        return (f"seed={seed}", f"step={step}",
                                "expected min-vruntime fair pick",
                                ent.vruntime, fair_min)
                sched.ready(picked)
        return None

    return VC(
        name="sched-impl-pick-policy",
        category="scheduler",
        check=check,
        description="every pick agrees with the spec's policy: "
                    "max-priority RT unless throttled, else the "
                    "min-vruntime fair thread",
    )


def _impl_starvation_vc() -> VC:
    def check():
        from repro.nros.sched.entity import RT_THROTTLE_STREAK
        from repro.nros.sched.scheduler import Scheduler

        sched = Scheduler(1)
        hog = _make_thread("hog")
        starved = _make_thread("starved")
        sched.set_policy(hog, "fifo", rt_prio=99)
        sched.set_nice(starved, 10)
        sched.ready(hog)
        sched.ready(starved)
        waited = 0
        for _ in range(6 * (RT_THROTTLE_STREAK + 1)):
            picked = sched.next_thread(core=0)
            if picked is starved:
                waited = 0
            else:
                waited += 1
                if waited > RT_THROTTLE_STREAK:
                    return ("fair thread waited past the throttle",
                            waited)
            sched.ready(picked)
        return None

    return VC(
        name="sched-impl-fair-starvation-free",
        category="scheduler",
        check=check,
        description="bounded starvation freedom: under an RT busy "
                    "loop the fair thread runs at least every "
                    "RT_THROTTLE_STREAK + 1 picks",
    )


def _impl_migration_vc() -> VC:
    def check():
        from repro.nros.sched.scheduler import Scheduler

        sched = Scheduler(2)
        threads = [_make_thread(f"m{i}") for i in range(6)]
        for thread in threads:
            sched.ready(thread)
        for thread in threads:
            if sched.core_of(thread) == 1:
                sched.forget(thread)
        for _ in range(120):
            picked = sched.next_thread()
            if picked is None:
                break
            sched.ready(picked)
            problems = sched.audit()
            if problems:
                return ("audit after balancing", problems[0])
        if sched.migrations < 1:
            return ("imbalance never balanced", sched.migrations)
        return None

    return VC(
        name="sched-impl-migration-invariants",
        category="scheduler",
        check=check,
        description="periodic load balancing migrates threads and "
                    "preserves every state invariant",
    )


def _impl_forget_vc() -> VC:
    def check():
        from repro.nros.sched.scheduler import Scheduler

        sched = Scheduler(2)
        threads = [_make_thread(f"f{i}") for i in range(5)]
        for thread in threads:
            sched.ready(thread)
        for thread in threads:
            sched.forget(thread)
        if sched.has_runnable():
            return ("has_runnable after forgetting everything",
                    sched.runnable_count())
        if sched.next_thread() is not None:
            return ("a forgotten thread was picked",)
        problems = sched.audit()
        if problems:
            return ("audit after forget", problems[0])
        return None

    return VC(
        name="sched-impl-forget-purges",
        category="scheduler",
        check=check,
        description="forget purges queued threads (the seed left them "
                    "enqueued until popped) and has_runnable stays "
                    "consistent",
    )


def scheduler_vcs() -> list[VC]:
    """The scheduler VC family (group ``scheduler``)."""
    cache = _SchedSpecCache()
    vcs = [_spec_explored_vc(cache)]
    for invariant in ss.INVARIANTS:
        vcs.append(_spec_inductive_vc(cache, invariant))
    vcs.append(_spec_vacuity_vc())
    vcs.append(_impl_trace_vc())
    vcs.append(_impl_pick_policy_vc())
    vcs.append(_impl_starvation_vc())
    vcs.append(_impl_migration_vc())
    vcs.append(_impl_forget_vc())
    return vcs
