"""Verification-condition objects.

A VC is a single, independently checkable proof obligation with a name, a
category (used to group the proof report the way Figure 2 groups the layers),
and a discharge strategy.  Discharging returns a :class:`VCResult` carrying
the outcome, the wall-clock time (the quantity plotted in Figure 1a), and a
counterexample when the obligation fails.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable


class VCStatus(enum.Enum):
    PROVED = "proved"
    FAILED = "failed"
    ERROR = "error"


@dataclass
class VCResult:
    """Outcome of discharging one verification condition."""

    name: str
    status: VCStatus
    seconds: float
    category: str = ""
    detail: str = ""
    counterexample: object = None

    @property
    def ok(self) -> bool:
        return self.status is VCStatus.PROVED


@dataclass
class VC:
    """A verification condition.

    `check` returns ``None`` on success or a counterexample object (anything
    truthy/printable) on failure.  Exceptions are caught by the engine and
    reported as ``ERROR``.
    """

    name: str
    category: str
    check: Callable[[], object | None]
    description: str = ""

    def discharge(self) -> VCResult:
        start = time.perf_counter()
        try:
            counterexample = self.check()
        except Exception as exc:  # surfaced, never swallowed silently
            elapsed = time.perf_counter() - start
            return VCResult(
                name=self.name,
                status=VCStatus.ERROR,
                seconds=elapsed,
                category=self.category,
                detail=f"{type(exc).__name__}: {exc}",
            )
        elapsed = time.perf_counter() - start
        if counterexample is None:
            return VCResult(
                name=self.name,
                status=VCStatus.PROVED,
                seconds=elapsed,
                category=self.category,
            )
        return VCResult(
            name=self.name,
            status=VCStatus.FAILED,
            seconds=elapsed,
            category=self.category,
            detail=str(counterexample),
            counterexample=counterexample,
        )


@dataclass
class VCGroup:
    """A named collection of VCs (one proof layer in Figure 2)."""

    name: str
    vcs: list[VC] = field(default_factory=list)

    def add(self, vc: VC) -> None:
        self.vcs.append(vc)

    def __len__(self) -> int:
        return len(self.vcs)


def smt_vc(name: str, category: str, goal_builder, description: str = "") -> VC:
    """A VC discharged by the SMT solver.

    `goal_builder` is a zero-argument callable returning the goal term, so
    term construction time is attributed to the VC the way Verus attributes
    encoding time to each function's verification time.
    """

    def check():
        from repro.smt.solver import prove

        result = prove(goal_builder())
        if result.sat:
            return result.model
        return None

    return VC(name=name, category=category, check=check, description=description)


def forall_vc(name: str, category: str, cases, predicate, description: str = "") -> VC:
    """A VC discharged by exhaustive enumeration of `cases`.

    `cases` is an iterable (or a callable returning one); `predicate` returns
    True for good cases.  The first failing case is the counterexample.
    """

    def check():
        iterable = cases() if callable(cases) else cases
        for case in iterable:
            if not predicate(case):
                return case
        return None

    return VC(name=name, category=category, check=check, description=description)
