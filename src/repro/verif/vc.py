"""Verification-condition objects.

A VC is a single, independently checkable proof obligation with a name, a
category (used to group the proof report the way Figure 2 groups the layers),
and a discharge strategy.  Discharging returns a :class:`VCResult` carrying
the outcome, the wall-clock time (the quantity plotted in Figure 1a), and a
counterexample when the obligation fails.

SMT-backed VCs additionally expose their `goal_builder`, so the prover
subsystem (:mod:`repro.prover`) can fingerprint the goal term for the
persistent proof cache and discharge it under a conflict budget.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro import obs


class VCStatus(enum.Enum):
    PROVED = "proved"
    FAILED = "failed"
    ERROR = "error"
    #: The solver ran out of its conflict budget before deciding the goal.
    #: Distinct from FAILED: a timed-out VC has no counterexample and may
    #: yet be proved with a larger budget (the scheduler's retry ladder).
    TIMEOUT = "timeout"


@dataclass
class VCResult:
    """Outcome of discharging one verification condition."""

    name: str
    status: VCStatus
    seconds: float
    category: str = ""
    detail: str = ""
    counterexample: object = None
    #: Time spent inside the solving pipeline itself (rewrite + bit-blast +
    #: SAT) — the "cumulative solver time" the event stream reports against
    #: wall-clock.  For non-SMT VCs this equals `seconds`.
    solver_seconds: float = 0.0
    #: True when the result was served from the persistent proof cache
    #: instead of being recomputed.
    cached: bool = False
    #: Machine-independent solver counters (conflicts, decisions, ...) for
    #: SMT VCs — what the proof cache persists alongside the verdict.
    solver_stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status is VCStatus.PROVED

    def key(self) -> tuple:
        """The machine-independent content of the result (no timings) —
        what must be identical between serial and parallel runs."""
        return (self.name, self.status.value, self.category, self.detail,
                repr(self.counterexample))


@dataclass
class VC:
    """A verification condition.

    `check` returns ``None`` on success or a counterexample object (anything
    truthy/printable) on failure.  Exceptions are caught by the engine and
    reported as ``ERROR``.

    When the VC is an SMT goal, `goal_builder` is the zero-argument term
    constructor and `simplify` the solver configuration; `check` may then be
    ``None`` — discharge routes through the solver directly, which lets
    callers impose a conflict budget (`max_conflicts`).
    """

    name: str
    category: str
    check: Callable[[], object | None] | None
    description: str = ""
    goal_builder: Callable[[], object] | None = None
    simplify: bool = True

    @property
    def is_smt(self) -> bool:
        return self.goal_builder is not None

    def _invoke(self, max_conflicts: int | None, preprocess: bool):
        if self.goal_builder is not None:
            from repro.smt.solver import prove

            result = prove(self.goal_builder(), simplify=self.simplify,
                           max_conflicts=max_conflicts,
                           preprocess=preprocess)
            return result.model if result.sat else None, result.stats
        assert self.check is not None, f"VC {self.name} has no strategy"
        return self.check(), None

    def discharge(self, max_conflicts: int | None = None,
                  preprocess: bool = True) -> VCResult:
        from repro.smt.sat import BudgetExceeded

        # The span is the Figure 1a unit of measurement: its duration
        # joins the labeled `vc.discharge_seconds` population and, when
        # tracing is on, appears as a `vc.discharge` event.
        span = obs.span("vc.discharge", histogram="vc.discharge_seconds",
                        labels={"category": self.category},
                        vc=self.name).start()
        try:
            counterexample, stats = self._invoke(max_conflicts, preprocess)
        except BudgetExceeded as exc:
            elapsed = span.finish()
            return VCResult(
                name=self.name,
                status=VCStatus.TIMEOUT,
                seconds=elapsed,
                category=self.category,
                detail=str(exc),
                solver_seconds=elapsed,
            )
        except Exception as exc:  # surfaced, never swallowed silently
            elapsed = span.finish()
            return VCResult(
                name=self.name,
                status=VCStatus.ERROR,
                seconds=elapsed,
                category=self.category,
                detail=f"{type(exc).__name__}: {exc}",
            )
        elapsed = span.finish()
        solver_seconds = stats.solver_seconds if stats is not None else elapsed
        solver_stats = stats.deterministic() if stats is not None else {}
        if counterexample is None:
            return VCResult(
                name=self.name,
                status=VCStatus.PROVED,
                seconds=elapsed,
                category=self.category,
                solver_seconds=solver_seconds,
                solver_stats=solver_stats,
            )
        return VCResult(
            name=self.name,
            status=VCStatus.FAILED,
            seconds=elapsed,
            category=self.category,
            detail=str(counterexample),
            counterexample=counterexample,
            solver_seconds=solver_seconds,
            solver_stats=solver_stats,
        )


def _discharge_single_with_ladder(vc: "VC", budgets, preprocess: bool,
                                  on_member) -> tuple[VCResult, int]:
    """Classic single-shot discharge under a retry ladder — the degraded
    path for family members whose shared context failed to build."""
    try:
        if on_member is not None:
            on_member(vc)
    except Exception as exc:
        return (VCResult(
            name=vc.name, status=VCStatus.ERROR, seconds=0.0,
            category=vc.category,
            detail=f"worker failed: {type(exc).__name__}: {exc}",
        ), 1)
    total_seconds = 0.0
    total_solver = 0.0
    ladder = list(budgets) or [None]
    for attempt, budget in enumerate(ladder, start=1):
        result = vc.discharge(max_conflicts=budget, preprocess=preprocess)
        total_seconds += result.seconds
        total_solver += result.solver_seconds
        if result.status is not VCStatus.TIMEOUT or attempt == len(ladder):
            result.seconds = total_seconds
            result.solver_seconds = total_solver
            return result, attempt
    raise AssertionError("unreachable: ladder always returns")


def discharge_family(vcs: list["VC"], budgets=(None,), preprocess: bool = True,
                     on_member: Callable[["VC"], None] | None = None,
                     ) -> list[tuple[VCResult, int]]:
    """Discharge structurally-similar SMT VCs through one shared
    incremental solver (:class:`repro.smt.solver.FamilySolver`).

    Members run in the given order — the scheduler passes canonical engine
    order, which makes every member's delta-counters a deterministic
    function of the family alone.  Each member gets the same per-attempt
    span / TIMEOUT / ERROR semantics as :meth:`VC.discharge`, with the
    retry ladder `budgets` applied per member (a retry reuses the shared
    solver, so clauses learnt during the failed attempt still help).

    `on_member` is called before each member's first attempt; an exception
    it raises (the scheduler's fault-injection hook) costs that member an
    ERROR verdict and the family moves on.
    """
    from repro.smt.sat import BudgetExceeded
    from repro.smt.solver import FamilySolver

    assert vcs and all(vc.is_smt for vc in vcs)
    try:
        goals = [vc.goal_builder() for vc in vcs]
        shared = FamilySolver(goals, simplify=vcs[0].simplify,
                              preprocess=preprocess)
    except Exception as exc:
        # A family that cannot even build its shared context degrades to
        # one classic single-shot discharge per member — the goal builder
        # (or solver) error then surfaces per-VC, exactly as it would have
        # without grouping.
        return [
            _discharge_single_with_ladder(vc, budgets, preprocess, on_member)
            for vc in vcs
        ]
    # Setup (rewrite + blast + encode + preprocess of the union) happened
    # once for everyone; spread it evenly over the members' timings.
    setup_share = shared.setup_seconds / len(vcs)
    out: list[tuple[VCResult, int]] = []
    for index, vc in enumerate(vcs):
        try:
            if on_member is not None:
                on_member(vc)
        except Exception as exc:
            out.append((VCResult(
                name=vc.name, status=VCStatus.ERROR, seconds=0.0,
                category=vc.category,
                detail=f"worker failed: {type(exc).__name__}: {exc}",
            ), 1))
            continue
        total_seconds = setup_share
        total_solver = 0.0
        ladder = list(budgets)
        for attempt, budget in enumerate(ladder, start=1):
            span = obs.span("vc.discharge",
                            histogram="vc.discharge_seconds",
                            labels={"category": vc.category},
                            vc=vc.name).start()
            try:
                res = shared.prove_member(index, max_conflicts=budget)
            except BudgetExceeded as exc:
                elapsed = span.finish()
                result = VCResult(
                    name=vc.name, status=VCStatus.TIMEOUT, seconds=elapsed,
                    category=vc.category, detail=str(exc),
                    solver_seconds=elapsed,
                )
            except Exception as exc:
                elapsed = span.finish()
                result = VCResult(
                    name=vc.name, status=VCStatus.ERROR, seconds=elapsed,
                    category=vc.category,
                    detail=f"{type(exc).__name__}: {exc}",
                )
            else:
                elapsed = span.finish()
                if res.sat:
                    result = VCResult(
                        name=vc.name, status=VCStatus.FAILED, seconds=elapsed,
                        category=vc.category, detail=str(res.model),
                        counterexample=res.model,
                        solver_seconds=res.stats.solver_seconds,
                        solver_stats=res.stats.deterministic(),
                    )
                else:
                    result = VCResult(
                        name=vc.name, status=VCStatus.PROVED, seconds=elapsed,
                        category=vc.category,
                        solver_seconds=res.stats.solver_seconds,
                        solver_stats=res.stats.deterministic(),
                    )
            total_seconds += result.seconds
            total_solver += result.solver_seconds
            if result.status is not VCStatus.TIMEOUT or attempt == len(ladder):
                result.seconds = total_seconds
                result.solver_seconds = total_solver
                out.append((result, attempt))
                break
    return out


@dataclass
class VCGroup:
    """A named collection of VCs (one proof layer in Figure 2)."""

    name: str
    vcs: list[VC] = field(default_factory=list)

    def add(self, vc: VC) -> None:
        self.vcs.append(vc)

    def __len__(self) -> int:
        return len(self.vcs)


def smt_vc(name: str, category: str, goal_builder, description: str = "",
           simplify: bool = True) -> VC:
    """A VC discharged by the SMT solver.

    `goal_builder` is a zero-argument callable returning the goal term, so
    term construction time is attributed to the VC the way Verus attributes
    encoding time to each function's verification time.
    """

    return VC(name=name, category=category, check=None,
              description=description, goal_builder=goal_builder,
              simplify=simplify)


def forall_vc(name: str, category: str, cases, predicate, description: str = "") -> VC:
    """A VC discharged by exhaustive enumeration of `cases`.

    `cases` is an iterable (or a callable returning one); `predicate` returns
    True for good cases.  The first failing case is the counterexample.
    """

    def check():
        iterable = cases() if callable(cases) else cases
        for case in iterable:
            if not predicate(case):
                return case
        return None

    return VC(name=name, category=category, check=check, description=description)
