"""The proof engine: runs verification conditions and reports timing.

This is the harness behind Figure 1a.  The paper reports the CDF of the
verification times of 220 verification conditions, their maximum (11 s), and
the total (~40 s); :class:`ProofReport` computes exactly those quantities.

`ProofEngine.run()` is the simple serial loop; the scheduled, cached,
parallel discharge path lives in :mod:`repro.prover` and produces the same
:class:`ProofReport` (same contents, same order) regardless of job count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.instruments import Histogram
from repro.verif.vc import VC, VCGroup, VCResult, VCStatus


@dataclass
class ProofReport:
    """Aggregated outcome of a proof-engine run."""

    results: list[VCResult] = field(default_factory=list)
    #: End-to-end wall-clock of the run that produced the report (set by the
    #: prover scheduler; 0.0 for plain serial `ProofEngine.run`).  Differs
    #: from `total_seconds` — the sum of per-VC times — once VCs are
    #: discharged concurrently or served from the cache.
    wall_seconds: float = 0.0

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def proved(self) -> int:
        return sum(1 for r in self.results if r.status is VCStatus.PROVED)

    @property
    def failed(self) -> list[VCResult]:
        return [r for r in self.results if r.status is not VCStatus.PROVED]

    @property
    def timeouts(self) -> list[VCResult]:
        return [r for r in self.results if r.status is VCStatus.TIMEOUT]

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def all_proved(self) -> bool:
        return self.proved == self.total

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.results)

    @property
    def solver_seconds(self) -> float:
        """Cumulative time inside the solving pipeline across all VCs."""
        return sum(r.solver_seconds for r in self.results)

    @property
    def max_seconds(self) -> float:
        return max((r.seconds for r in self.results), default=0.0)

    def histogram(self) -> Histogram:
        """The per-VC discharge-time population as the repo's one
        distribution type (:class:`repro.obs.instruments.Histogram`) —
        what the Figure 1a benchmark consumes."""
        hist = Histogram(name="vc.discharge_seconds")
        for r in self.results:
            hist.record(r.seconds)
        return hist

    def times(self) -> list[float]:
        return self.histogram().sorted_samples()

    def cdf(self, points: int = 50) -> list[tuple[float, float]]:
        """(seconds, cumulative fraction) pairs — the Figure 1a series,
        computed by the shared :meth:`Histogram.cdf` downsampler."""
        return self.histogram().cdf(points)

    def fraction_within(self, seconds: float) -> float:
        """Cumulative fraction of VCs verified within `seconds`."""
        return self.histogram().fraction_within(seconds)

    def solver_counters(self) -> dict[str, int]:
        """Machine-independent solver counters summed across every SMT
        result (booleans like ``decided_structurally`` count results).
        Deterministic for a fixed VC population and solver configuration —
        the quantity the perf-smoke CI job compares against its committed
        baseline."""
        totals: dict[str, int] = {}
        for r in self.results:
            for key, value in r.solver_stats.items():
                totals[key] = totals.get(key, 0) + int(value)
        return totals

    def by_category(self) -> dict[str, list[VCResult]]:
        groups: dict[str, list[VCResult]] = {}
        for r in self.results:
            groups.setdefault(r.category, []).append(r)
        return groups

    def summary_lines(self) -> list[str]:
        timeouts = len(self.timeouts)
        lines = [
            f"verification conditions: {self.total}",
            f"proved: {self.proved}  failed: "
            f"{self.total - self.proved - timeouts}  timeout: {timeouts}",
            f"total verification time: {self.total_seconds:.2f} s",
            f"slowest verification condition: {self.max_seconds:.2f} s",
        ]
        if self.wall_seconds:
            lines.insert(3, f"wall-clock time: {self.wall_seconds:.2f} s "
                            f"(cumulative solver time: "
                            f"{self.solver_seconds:.2f} s)")
        if self.cache_hits:
            lines.append(f"proof-cache hits: {self.cache_hits}/{self.total} "
                         f"({self.cache_hits / self.total:.0%})")
        counters = self.solver_counters()
        if counters:
            lines.append(
                f"solver: {counters.get('sat_conflicts', 0)} conflicts, "
                f"{counters.get('decided_structurally', 0)} decided "
                f"structurally, {counters.get('decided_by_preprocessing', 0)} "
                f"by preprocessing, {counters.get('pre_eliminated_vars', 0)} "
                f"vars eliminated"
            )
        for category, results in sorted(self.by_category().items()):
            secs = sum(r.seconds for r in results)
            lines.append(
                f"  {category}: {len(results)} VCs, {secs:.2f} s"
            )
        return lines


class ProofEngine:
    """Collects VCs (in groups) and discharges them, recording times."""

    def __init__(self) -> None:
        self.groups: list[VCGroup] = []
        #: Optional (builder name, kwargs) pair registered with
        #: :mod:`repro.prover.registry`, letting worker processes rebuild
        #: this engine's VC population by name (goal-builder closures do
        #: not pickle, so the population itself never crosses a process
        #: boundary).
        self.rebuild_spec: tuple[str, dict] | None = None

    def group(self, name: str) -> VCGroup:
        for g in self.groups:
            if g.name == name:
                return g
        g = VCGroup(name)
        self.groups.append(g)
        return g

    def add(self, vc: VC, group: str = "default") -> None:
        self.group(group).add(vc)

    def add_all(self, vcs, group: str = "default") -> None:
        for vc in vcs:
            self.add(vc, group)

    @property
    def vc_count(self) -> int:
        return sum(len(g) for g in self.groups)

    def vcs(self) -> list[VC]:
        """Every VC in deterministic (insertion) order — the canonical
        order of `ProofReport.results` for both serial and parallel runs."""
        return [vc for group in self.groups for vc in group.vcs]

    def run(self, progress=None) -> ProofReport:
        """Discharge every VC serially.  `progress`, if given, is called
        with each :class:`VCResult` as it completes (used by the benchmark
        harness).  For the scheduled/cached/parallel path use
        :func:`repro.prover.prove_all`."""
        report = ProofReport()
        for vc in self.vcs():
            result = vc.discharge()
            report.results.append(result)
            if progress is not None:
                progress(result)
        return report
