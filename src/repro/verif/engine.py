"""The proof engine: runs verification conditions and reports timing.

This is the harness behind Figure 1a.  The paper reports the CDF of the
verification times of 220 verification conditions, their maximum (11 s), and
the total (~40 s); :class:`ProofReport` computes exactly those quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.verif.vc import VC, VCGroup, VCResult, VCStatus


@dataclass
class ProofReport:
    """Aggregated outcome of a proof-engine run."""

    results: list[VCResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def proved(self) -> int:
        return sum(1 for r in self.results if r.status is VCStatus.PROVED)

    @property
    def failed(self) -> list[VCResult]:
        return [r for r in self.results if r.status is not VCStatus.PROVED]

    @property
    def all_proved(self) -> bool:
        return self.proved == self.total

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.results)

    @property
    def max_seconds(self) -> float:
        return max((r.seconds for r in self.results), default=0.0)

    def times(self) -> list[float]:
        return sorted(r.seconds for r in self.results)

    def cdf(self, points: int = 50) -> list[tuple[float, float]]:
        """(seconds, cumulative fraction) pairs — the Figure 1a series."""
        times = self.times()
        if not times:
            return []
        return [(t, (i + 1) / len(times)) for i, t in enumerate(times)]

    def fraction_within(self, seconds: float) -> float:
        """Cumulative fraction of VCs verified within `seconds`."""
        if not self.results:
            return 0.0
        within = sum(1 for r in self.results if r.seconds <= seconds)
        return within / len(self.results)

    def by_category(self) -> dict[str, list[VCResult]]:
        groups: dict[str, list[VCResult]] = {}
        for r in self.results:
            groups.setdefault(r.category, []).append(r)
        return groups

    def summary_lines(self) -> list[str]:
        lines = [
            f"verification conditions: {self.total}",
            f"proved: {self.proved}  failed: {self.total - self.proved}",
            f"total verification time: {self.total_seconds:.2f} s",
            f"slowest verification condition: {self.max_seconds:.2f} s",
        ]
        for category, results in sorted(self.by_category().items()):
            secs = sum(r.seconds for r in results)
            lines.append(
                f"  {category}: {len(results)} VCs, {secs:.2f} s"
            )
        return lines


class ProofEngine:
    """Collects VCs (in groups) and discharges them, recording times."""

    def __init__(self) -> None:
        self.groups: list[VCGroup] = []

    def group(self, name: str) -> VCGroup:
        for g in self.groups:
            if g.name == name:
                return g
        g = VCGroup(name)
        self.groups.append(g)
        return g

    def add(self, vc: VC, group: str = "default") -> None:
        self.group(group).add(vc)

    def add_all(self, vcs, group: str = "default") -> None:
        for vc in vcs:
            self.add(vc, group)

    @property
    def vc_count(self) -> int:
        return sum(len(g) for g in self.groups)

    def run(self, progress=None) -> ProofReport:
        """Discharge every VC.  `progress`, if given, is called with each
        :class:`VCResult` as it completes (used by the benchmark harness)."""
        report = ProofReport()
        for group in self.groups:
            for vc in group.vcs:
                result = vc.discharge()
                report.results.append(result)
                if progress is not None:
                    progress(result)
        return report
