"""Rely-guarantee specifications for the concurrent memory-management
layer.

Zhao & Sanán verify a concurrent buddy allocator by giving every
operation an *interference spec*: a **guarantee** (the atomic state
changes this thread may perform) and a **rely** (the union of every
other thread's guarantees, which this thread's invariants must survive).
This module is the reproduction's version of that discipline, in two
halves:

* **Interference declarations** — :class:`Component` records, one per
  shared structure (`pmem` buddy allocator, `physmem`, the NR-replicated
  page tables, `vspace`), naming each atomic action, the guard that
  makes it atomic (a lock bracket, the NR combiner, or an ambient
  ownership discipline), and its shared read/write footprint.  The
  static checker in :mod:`repro.analysis.rg` extracts the real
  footprints from the AST and diffs them against these declarations —
  an unguarded or undeclared shared mutation is a finding, so the
  "actions are atomic" hypothesis the proofs lean on is mechanically
  tied to the code.

* **Finite interference models** — small pure state machines whose
  transitions *are* the declared guarantees.  Because every thread's
  guarantee is drawn from the same action set, "invariant I is stable
  under the rely" reduces to "I is inductive under every action fired
  by an arbitrary other thread", which bounded exploration plus
  per-action induction can discharge (:mod:`repro.verif.rgproof`, one
  VC per invariant × action pair behind ``prove --layers rg``).

This module is spec-layer: pure functions over frozen dataclasses
(checked by ``python -m repro analyze``'s purity lint).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.verif.statemachine import SpecStateMachine, Transition

# ---------------------------------------------------------------------------
# Interference declarations (consumed by repro.analysis.rg)
# ---------------------------------------------------------------------------

#: Guard kinds.  ``lock`` demands a lexical ``with self.<attr>:`` bracket
#: around every shared access of the action; ``nr`` marks actions made
#: atomic by the NR combiner (the replica writer lock is held while the
#: log applies them); ``ambient`` marks ownership/caller disciplines
#: that hold without a bracket (frame ownership, core registration).
LOCK = "lock"
NR = "nr"
AMBIENT = "ambient"

#: Method names that never mutate their receiver — calls on a shared
#: root that resolve to one of these count as *reads* of the root.
#: Components extend this set via ``readonly_methods``.
READONLY_METHODS = (
    "get", "keys", "values", "items", "count", "index", "copy",
)


@dataclass(frozen=True)
class Guard:
    """What makes an action atomic with respect to other threads."""

    name: str
    kind: str                 # LOCK | NR | AMBIENT
    attr: str | None = None   # the lock attribute on self, for LOCK
    why: str = ""


@dataclass(frozen=True)
class Action:
    """One atomic action: a method, its guard, and its footprint.

    ``writes``/``reads`` are *upper bounds* (the guarantee promises "at
    most this"); the static checker flags real accesses outside them.
    """

    name: str
    guard: str
    writes: tuple[str, ...] = ()
    reads: tuple[str, ...] = ()


@dataclass(frozen=True)
class Component:
    """Rely-guarantee declaration for one shared structure."""

    name: str
    module: str                              # repo-relative source path
    cls: str
    guards: tuple[Guard, ...]
    shared: tuple[tuple[str, str], ...]      # (attr, guard name) pairs
    actions: tuple[Action, ...]
    #: Shared attributes whose unguarded mutation the rely explicitly
    #: admits (monitoring counters no invariant depends on).
    benign: tuple[str, ...] = ()
    #: Pre-publication methods: the object is thread-local until the
    #: constructor returns, so no guard is required.
    init_methods: tuple[str, ...] = ("__init__",)
    #: Extra non-mutating method names for this component's roots.
    readonly_methods: tuple[str, ...] = ()
    #: Methods sanctioned to reach through ``.replicas`` (NR bypass).
    replica_access: tuple[str, ...] = ()

    def guard_by_name(self, name: str) -> Guard:
        for guard in self.guards:
            if guard.name == name:
                return guard
        raise KeyError(f"{self.name} has no guard {name!r}")

    def action_by_name(self, name: str) -> Action | None:
        for action in self.actions:
            if action.name == name:
                return action
        return None

    def shared_map(self) -> dict:
        return dict(self.shared)


PMEM = Component(
    name="pmem",
    module="src/repro/nros/pmem.py",
    cls="BuddyAllocator",
    guards=(
        Guard("pmem.alloc", LOCK, attr="_lock",
              why="free lists, the allocated map, and the stats move "
                  "together; the lock bracket is the atomic action"),
    ),
    shared=(
        ("_free", "pmem.alloc"),
        ("_allocated", "pmem.alloc"),
        ("stats", "pmem.alloc"),
        ("injected_failures", "pmem.alloc"),
    ),
    actions=(
        Action("alloc_block", "pmem.alloc",
               writes=("_free", "_allocated", "stats",
                       "injected_failures")),
        Action("free_block", "pmem.alloc",
               writes=("_free", "_allocated", "stats")),
        Action("free_blocks", "pmem.alloc", reads=("_free",)),
        Action("check_integrity", "pmem.alloc",
               reads=("_free", "_allocated")),
    ),
    init_methods=("__init__", "_seed_free_lists"),
)

PHYSMEM = Component(
    name="physmem",
    module="src/repro/hw/mem.py",
    cls="PhysicalMemory",
    guards=(
        Guard("physmem.frame-ownership", AMBIENT,
              why="a thread only touches frames it owns; ownership is "
                  "handed out exclusively under pmem.alloc"),
    ),
    shared=(("_bytes", "physmem.frame-ownership"),),
    actions=(
        Action("load_u64", "physmem.frame-ownership", reads=("_bytes",)),
        Action("store_u64", "physmem.frame-ownership",
               writes=("_bytes",)),
        Action("load_u8", "physmem.frame-ownership", reads=("_bytes",)),
        Action("store_u8", "physmem.frame-ownership",
               writes=("_bytes",)),
        Action("read", "physmem.frame-ownership", reads=("_bytes",)),
        Action("write", "physmem.frame-ownership", writes=("_bytes",)),
        Action("zero_frame", "physmem.frame-ownership",
               writes=("_bytes",)),
        Action("is_zero_range", "physmem.frame-ownership",
               reads=("_bytes",)),
        Action("frame_words", "physmem.frame-ownership",
               reads=("_bytes",)),
    ),
)

VSPACE_DS = Component(
    name="vspace-ds",
    module="src/repro/nros/vspace.py",
    cls="_PtDs",
    guards=(
        Guard("nr.replica", NR,
              why="the NR combiner holds the replica writer lock across "
                  "ds.apply, so log application is the atomic action"),
    ),
    shared=(("pt", "nr.replica"),),
    actions=(
        Action("apply", "nr.replica", writes=("pt",)),
        Action("_apply_map_batch", "nr.replica", writes=("pt",)),
        Action("_apply_unmap_batch", "nr.replica", writes=("pt",)),
        Action("query", "nr.replica", reads=("pt",)),
    ),
    readonly_methods=("resolve",),
)

VSPACE = Component(
    name="vspace",
    module="src/repro/nros/vspace.py",
    cls="VSpace",
    guards=(
        Guard("nr.log", NR,
              why="mutations are linearized by the NR log append; the "
                  "combiner provides the atomicity"),
        Guard("vspace.cores", AMBIENT,
              why="core registration and per-core TLBs are serialized "
                  "by the caller (one kernel entry per core)"),
    ),
    shared=(
        ("nr", "nr.log"),
        ("_tlbs", "vspace.cores"),
        ("_core_node", "vspace.cores"),
    ),
    actions=(
        Action("attach_core", "vspace.cores",
               writes=("_tlbs", "_core_node"), reads=("nr",)),
        Action("detach_core", "vspace.cores",
               writes=("_tlbs", "_core_node")),
        Action("root_for", "nr.log", reads=("nr", "_core_node")),
        Action("map", "nr.log", writes=("nr",), reads=("_core_node",)),
        Action("unmap", "nr.log", writes=("nr",),
               reads=("_core_node",)),
        Action("map_batch", "nr.log", writes=("nr",),
               reads=("_core_node",)),
        Action("unmap_batch", "nr.log", writes=("nr",),
               reads=("_core_node",)),
        Action("resolve", "nr.log", reads=("nr", "_core_node")),
        Action("_shootdown", "vspace.cores", writes=("_tlbs",)),
        Action("translate", "vspace.cores", writes=("_tlbs",),
               reads=("_core_node",)),
        Action("_sync_node", "nr.log", writes=("nr",)),
        Action("sync", "nr.log", writes=("nr",)),
    ),
    benign=("mapped_pages", "shootdowns", "_obs_rounds",
            "_obs_shot_pages", "_obs_mapped", "_obs_batch"),
    readonly_methods=("execute_ro", "lookup"),
    replica_access=("root_for",),
)

#: Every declared component, in checking order.
COMPONENTS = (PMEM, PHYSMEM, VSPACE_DS, VSPACE)


# ---------------------------------------------------------------------------
# Finite interference model: the buddy allocator
# ---------------------------------------------------------------------------

#: Model bounds: 8 frames, block orders 0..3 (1, 2, 4, 8 frames).
PMEM_FRAMES = 8
PMEM_MAX_ORDER = 3


@dataclass(frozen=True)
class PmemState:
    """Free lists + allocated map + the redundant counter the
    implementation's ``stats.free_frames`` mirrors."""

    free: tuple[tuple[int, ...], ...]        # per order, sorted bases
    allocated: tuple[tuple[int, int], ...]   # sorted (base, order)
    free_frames: int


def pmem_init() -> PmemState:
    free = tuple(() if k < PMEM_MAX_ORDER else (0,)
                 for k in range(PMEM_MAX_ORDER + 1))
    return PmemState(free=free, allocated=(), free_frames=PMEM_FRAMES)


def _pmem_alloc_enabled(state: PmemState, args) -> bool:
    (order,) = args
    return any(state.free[k] for k in range(order, PMEM_MAX_ORDER + 1))


def _pmem_alloc(state: PmemState, args) -> PmemState:
    """The allocator's *guarantee* for alloc: take the lowest suitable
    block, split greedily, move the result to the allocated map — all
    as one atomic step (the lock bracket)."""
    (order,) = args
    free = [list(blocks) for blocks in state.free]
    found = next(k for k in range(order, PMEM_MAX_ORDER + 1) if free[k])
    base = min(free[found])
    free[found].remove(base)
    while found > order:
        found -= 1
        free[found].append(base + (1 << found))
    allocated = tuple(sorted(state.allocated + ((base, order),)))
    return PmemState(
        free=tuple(tuple(sorted(blocks)) for blocks in free),
        allocated=allocated,
        free_frames=state.free_frames - (1 << order),
    )


def _pmem_free_enabled(state: PmemState, args) -> bool:
    (base,) = args
    return any(b == base for b, _order in state.allocated)


def _pmem_free(state: PmemState, args) -> PmemState:
    """The guarantee for free: return the block and coalesce with free
    buddies eagerly, atomically."""
    (base,) = args
    order = next(o for b, o in state.allocated if b == base)
    allocated = tuple(entry for entry in state.allocated
                      if entry[0] != base)
    free = [list(blocks) for blocks in state.free]
    block, k = base, order
    while k < PMEM_MAX_ORDER:
        buddy = block ^ (1 << k)
        if buddy not in free[k]:
            break
        free[k].remove(buddy)
        block = min(block, buddy)
        k += 1
    free[k].append(block)
    return PmemState(
        free=tuple(tuple(sorted(blocks)) for blocks in free),
        allocated=allocated,
        free_frames=state.free_frames + (1 << order),
    )


def _pmem_blocks(state: PmemState):
    """Every (base, order, is_free) block in the state."""
    blocks = []
    for order, bases in enumerate(state.free):
        for base in bases:
            blocks.append((base, order, True))
    for base, order in state.allocated:
        blocks.append((base, order, False))
    return blocks


def pmem_coverage(state: PmemState) -> bool:
    """Free and allocated blocks partition the frame range exactly —
    no frame leaked, none doubly owned."""
    seen = []
    for base, order, _is_free in _pmem_blocks(state):
        seen.extend(range(base, base + (1 << order)))
    return sorted(seen) == list(range(PMEM_FRAMES))


def pmem_aligned(state: PmemState) -> bool:
    """Every block is naturally aligned to its order."""
    return all(base % (1 << order) == 0
               for base, order, _is_free in _pmem_blocks(state))


def pmem_coalesced(state: PmemState) -> bool:
    """Eager coalescing: no two buddies are ever both free at the same
    order (free would have merged them)."""
    for order in range(PMEM_MAX_ORDER):
        bases = set(state.free[order])
        if any((base ^ (1 << order)) in bases for base in bases):
            return False
    return True


def pmem_free_count(state: PmemState) -> bool:
    """The redundant counter matches the free lists (the invariant
    behind ``stats.free_frames``)."""
    total = sum((1 << order) * len(bases)
                for order, bases in enumerate(state.free))
    return state.free_frames == total


PMEM_INVARIANTS = {
    "pmem_coverage": pmem_coverage,
    "pmem_aligned": pmem_aligned,
    "pmem_coalesced": pmem_coalesced,
    "pmem_free_count": pmem_free_count,
}


def _pmem_free_args(state: PmemState):
    return tuple((base,) for base, _order in state.allocated)


def pmem_machine(init_states=None) -> SpecStateMachine:
    """The buddy-allocator interference model.  Each transition is one
    declared guarantee; stability of the invariants under the rely is
    induction under these transitions fired by any other thread."""
    return SpecStateMachine(
        name="rg-pmem",
        init_states=list(init_states) if init_states is not None
        else [pmem_init()],
        transitions=[
            Transition("alloc", _pmem_alloc_enabled, _pmem_alloc,
                       args=tuple((order,) for order in
                                  range(PMEM_MAX_ORDER + 1))),
            Transition("free", _pmem_free_enabled, _pmem_free,
                       args=_pmem_free_args),
        ],
        invariants=dict(PMEM_INVARIANTS),
    )


# ---------------------------------------------------------------------------
# Finite interference model: NR-replicated vspace + TLBs
# ---------------------------------------------------------------------------

#: Model bounds: 2 virtual pages, 2 frames, 2 replicas (one core each),
#: and at most MAX_LAG outstanding un-applied log operations (NR's
#: bounded log: laggards must catch up before more appends).
VS_VAS = (0, 1)
VS_FRAMES = (0, 1)
VS_REPLICAS = 2
VS_MAX_LAG = 2


@dataclass(frozen=True)
class VsState:
    """A garbage-collected NR log over per-replica page-table views.

    ``base`` is the mapping after the fully-applied log prefix (the
    canonical truncation that keeps the space finite); ``log`` is the
    outstanding suffix; ``applied[r]`` counts how much of the suffix
    replica r has applied; ``tlbs[c]`` holds core c's cached
    (va, frame) translations."""

    base: tuple[tuple[int, int], ...]        # sorted (va, frame)
    log: tuple[tuple, ...]                   # ("map", va, f) | ("unmap", va)
    applied: tuple[int, ...]
    tlbs: tuple[tuple[tuple[int, int], ...], ...]


def vs_replay(base, ops) -> tuple[tuple[int, int], ...]:
    """Apply a log suffix to a mapping (pure)."""
    view = dict(base)
    for op in ops:
        if op[0] == "map":
            view[op[1]] = op[2]
        else:
            view = {va: f for va, f in view.items() if va != op[1]}
    return tuple(sorted(view.items()))


def vs_view(state: VsState, replica: int) -> tuple[tuple[int, int], ...]:
    return vs_replay(state.base, state.log[:state.applied[replica]])


def vs_final(state: VsState) -> tuple[tuple[int, int], ...]:
    return vs_replay(state.base, state.log)


def vs_canonical(state: VsState) -> VsState:
    """Fold the prefix every replica has applied into ``base`` so the
    reachable space stays finite (NR log garbage collection)."""
    done = min(state.applied)
    if done == 0:
        return state
    return replace(
        state,
        base=vs_replay(state.base, state.log[:done]),
        log=state.log[done:],
        applied=tuple(k - done for k in state.applied),
    )


def vs_init() -> VsState:
    return VsState(base=(), log=(), applied=(0,) * VS_REPLICAS,
                   tlbs=((),) * VS_REPLICAS)


def _vs_map_enabled(state: VsState, args) -> bool:
    _core, va, frame = args
    final = dict(vs_final(state))
    return (len(state.log) < VS_MAX_LAG and va not in final
            and frame not in final.values())


def _vs_map(state: VsState, args) -> VsState:
    """Guarantee of map: one linearized log append (no sync, no TLB
    traffic — lazily applied by replicas)."""
    _core, va, frame = args
    return vs_canonical(replace(
        state, log=state.log + (("map", va, frame),)))


def _vs_unmap_enabled(state: VsState, args) -> bool:
    _core, va = args
    return va in dict(vs_final(state))


def _vs_unmap(state: VsState, args) -> VsState:
    """Guarantee of unmap: append + sync_all + shootdown as ONE atomic
    action — the implementation posts no completion before the
    shootdown round returns, and the combiner serializes the whole
    protocol, which is exactly the atomicity the declaration in
    ``VSPACE`` records."""
    _core, va = args
    log = state.log + (("unmap", va),)
    tlbs = tuple(tuple(entry for entry in tlb if entry[0] != va)
                 for tlb in state.tlbs)
    return vs_canonical(replace(
        state, log=log, applied=(len(log),) * VS_REPLICAS, tlbs=tlbs))


def _vs_sync_enabled(state: VsState, args) -> bool:
    (replica,) = args
    return state.applied[replica] < len(state.log)


def _vs_sync(state: VsState, args) -> VsState:
    """Guarantee of replica sync: apply the outstanding suffix."""
    (replica,) = args
    applied = tuple(len(state.log) if r == replica else k
                    for r, k in enumerate(state.applied))
    return vs_canonical(replace(state, applied=applied))


def _vs_fill_enabled(state: VsState, args) -> bool:
    core, va = args
    view = dict(vs_view(state, core))
    return va in view and (va, view[va]) not in state.tlbs[core]


def _vs_fill(state: VsState, args) -> VsState:
    """Guarantee of translate: cache the core's replica translation."""
    core, va = args
    frame = dict(vs_view(state, core))[va]
    tlbs = tuple(tuple(sorted(tlb + ((va, frame),))) if c == core
                 else tlb for c, tlb in enumerate(state.tlbs))
    return replace(state, tlbs=tlbs)


def _vs_evict_enabled(state: VsState, args) -> bool:
    core, va = args
    return any(entry[0] == va for entry in state.tlbs[core])


def _vs_evict(state: VsState, args) -> VsState:
    """Guarantee of a capacity eviction: dropping a TLB entry is always
    interference-safe."""
    core, va = args
    tlbs = tuple(tuple(entry for entry in tlb if entry[0] != va)
                 if c == core else tlb
                 for c, tlb in enumerate(state.tlbs))
    return replace(state, tlbs=tlbs)


def vs_tlb_current(state: VsState) -> bool:
    """No stale translation: every cached (va, frame) is the live
    mapping of the final log view (the paper's unmap-synchronization
    obligation, as a state invariant)."""
    final = dict(vs_final(state))
    return all(final.get(va) == frame
               for tlb in state.tlbs for va, frame in tlb)


def vs_replica_monotone(state: VsState) -> bool:
    """Every replica view is a subset of the final view: a lagging
    replica may be missing new maps but never holds a mapping the log
    has since removed (unmap syncs everyone before returning)."""
    final = set(vs_final(state))
    return all(set(vs_view(state, r)) <= final
               for r in range(VS_REPLICAS))


def vs_frames_unique(state: VsState) -> bool:
    """The final view is injective on frames — frame ownership is
    exclusive (this is where the pmem rely meets the vspace rely)."""
    frames = [frame for _va, frame in vs_final(state)]
    return len(frames) == len(set(frames))


def vs_lag_bounded(state: VsState) -> bool:
    """Canonical form: the log suffix is bounded, fully-applied
    prefixes are folded away, applied counters never pass the head."""
    return (len(state.log) <= VS_MAX_LAG
            and min(state.applied) == 0
            and all(k <= len(state.log) for k in state.applied))


VSPACE_INVARIANTS = {
    "vs_tlb_current": vs_tlb_current,
    "vs_replica_monotone": vs_replica_monotone,
    "vs_frames_unique": vs_frames_unique,
    "vs_lag_bounded": vs_lag_bounded,
}


def _vs_pairs_core_va():
    return tuple((core, va)
                 for core in range(VS_REPLICAS) for va in VS_VAS)


def vspace_machine(init_states=None) -> SpecStateMachine:
    """The vspace interference model: NR log, lazy replicas, TLB fills
    and evictions, and the atomic unmap protocol."""
    return SpecStateMachine(
        name="rg-vspace",
        init_states=list(init_states) if init_states is not None
        else [vs_init()],
        transitions=[
            Transition("map", _vs_map_enabled, _vs_map,
                       args=tuple((core, va, frame)
                                  for core in range(VS_REPLICAS)
                                  for va in VS_VAS
                                  for frame in VS_FRAMES)),
            Transition("unmap", _vs_unmap_enabled, _vs_unmap,
                       args=_vs_pairs_core_va()),
            Transition("sync", _vs_sync_enabled, _vs_sync,
                       args=tuple((r,) for r in range(VS_REPLICAS))),
            Transition("fill", _vs_fill_enabled, _vs_fill,
                       args=_vs_pairs_core_va()),
            Transition("evict", _vs_evict_enabled, _vs_evict,
                       args=_vs_pairs_core_va()),
        ],
        invariants=dict(VSPACE_INVARIANTS),
    )


#: (component name, machine builder, invariant names) — what rgproof
#: turns into one stability VC per invariant × interfering action.
MODELS = (
    ("pmem", pmem_machine, tuple(PMEM_INVARIANTS)),
    ("vspace", vspace_machine, tuple(VSPACE_INVARIANTS)),
)
