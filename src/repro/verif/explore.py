"""Bounded state-space exploration (explicit-state model checking).

Used to discharge inductive-invariant and simulation obligations over the
small representative configurations the proof enumerates — the "lightweight
formal methods" flavour of the paper's refinement proof.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.verif.statemachine import SpecStateMachine


@dataclass
class ExploreResult:
    """Result of a bounded reachability run."""

    states: list = field(default_factory=list)
    truncated: bool = False
    violation: tuple | None = None  # (invariant_name, state, trace)

    @property
    def ok(self) -> bool:
        return self.violation is None


def reachable_states(
    machine: SpecStateMachine,
    max_states: int = 10_000,
    max_depth: int | None = None,
) -> ExploreResult:
    """BFS over the machine's reachable states, checking invariants.

    Traces to violations are recorded so VC counterexamples are replayable.
    """
    result = ExploreResult()
    seen: set = set()
    queue: deque = deque()
    for init in machine.init_states:
        if init in seen:
            continue
        seen.add(init)
        queue.append((init, 0, ()))

    while queue:
        state, depth, trace = queue.popleft()
        violated = machine.check_invariants(state)
        if violated is not None:
            result.violation = (violated, state, trace)
            result.states = list(seen)
            return result
        result.states.append(state)
        if max_depth is not None and depth >= max_depth:
            result.truncated = True
            continue
        for name, args, successor in machine.enabled_steps(state):
            if successor in seen:
                continue
            if len(seen) >= max_states:
                result.truncated = True
                continue
            seen.add(successor)
            queue.append((successor, depth + 1, trace + ((name, args),)))
    return result


def check_inductive(
    machine: SpecStateMachine,
    states,
    invariant_name: str,
) -> tuple | None:
    """Check that one invariant is inductive over a given set of states:
    if it holds in `s` it holds after every enabled step.  Returns a
    counterexample (state, transition, args, successor) or None."""
    invariant = machine.invariants[invariant_name]
    for state in states:
        if not invariant(state):
            continue  # vacuous: induction only cares about inv states
        for name, args, successor in machine.enabled_steps(state):
            if not invariant(successor):
                return (state, name, args, successor)
    return None
