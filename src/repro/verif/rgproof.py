"""The ``rg`` verification conditions — rely-guarantee stability for
the concurrent memory-management layer, discharged through the prover.

Three families behind ``python -m repro prove --layers rg``:

* **stability obligations** — bounded exploration covers the *entire*
  reachable space of each finite interference model in
  :mod:`repro.verif.rgspec` (677 buddy-allocator states, 201 vspace
  states; hitting the cap is itself a regression signal), then one VC
  per (invariant × interfering action) pair checks the invariant is
  inductive under a sub-machine containing *only* that action.  Because
  every thread's guarantee is drawn from the same action set, that is
  exactly "I is stable under the rely": any other thread firing the
  action from any reachable state preserves I.  Vacuity VCs hand-build
  broken states per invariant and demand they are flagged;

* **conformance obligations** — seeded alloc/free traces drive the real
  :class:`~repro.nros.pmem.BuddyAllocator` and check
  :meth:`check_integrity`, the redundant frame counter, eager
  coalescing, and that every action takes the declared lock exactly
  once; the real :class:`~repro.nros.vspace.VSpace` is checked to leave
  no stale TLB entry after (batched) unmap — the model's atomic-unmap
  guarantee, replayed against the implementation;

* **static-discharge obligations** — the interference checker
  (:mod:`repro.analysis.rg`) and the lock-order pass
  (:mod:`repro.analysis.lockorder`) must come back clean over the real
  tree.  These discharge the hypothesis the stability VCs lean on: the
  implementation's shared mutations happen only inside the declared
  atomic actions, and the lock acquisition graph is acyclic.

This module is proof-layer code: it may use seeded randomness, walk the
source tree, and drive the implementation; the spec it checks stays
pure.
"""

from __future__ import annotations

import pathlib
import random

from repro.verif import rgspec as rs
from repro.verif.explore import check_inductive, reachable_states
from repro.verif.statemachine import SpecStateMachine
from repro.verif.vc import VC

#: Exploration cap — comfortably above the measured reachable-space
#: sizes (677 states for the buddy model, 201 for the vspace model), so
#: hitting it means the model stopped being finite and the coverage
#: claim below is void.
MAX_STATES = 5_000

_TRACE_SEEDS = (1, 2, 3)
_TRACE_OPS = 200


class _RgModelCache:
    """Explore each interference model once, share across the family."""

    def __init__(self) -> None:
        self._results: dict = {}

    def result(self, name: str):
        if name not in self._results:
            builder = dict((n, b) for n, b, _invs in rs.MODELS)[name]
            machine = builder()
            self._results[name] = (
                machine, reachable_states(machine, max_states=MAX_STATES))
        return self._results[name]


def _spec_explored_vc(cache: _RgModelCache, model: str) -> VC:
    def check():
        _machine, result = cache.result(model)
        if result.truncated:
            return ("state space exceeded the exploration cap",
                    MAX_STATES)
        if not result.ok:
            name, state, trace = result.violation
            return (name, trace, state)
        return None

    return VC(
        name=f"rg-spec-explored-{model}",
        category="rg",
        check=check,
        description=f"bounded exploration covers the finite {model} "
                    f"interference model with every invariant holding",
    )


def _stability_vc(cache: _RgModelCache, model: str, invariant: str,
                  action: str) -> VC:
    def check():
        machine, result = cache.result(model)
        # The rely is the union of the other threads' guarantees, and
        # every guarantee is one declared action — so stability of the
        # invariant under the rely decomposes into inductiveness under
        # each action alone, over every state full interference can
        # reach (the explored VC certifies that set is complete).
        sub = SpecStateMachine(
            name=f"{machine.name}-{action}",
            init_states=machine.init_states,
            transitions=[machine.transition(action)],
            invariants=machine.invariants,
        )
        return check_inductive(sub, result.states, invariant)

    return VC(
        name=f"rg-stable-{invariant.replace('_', '-')}-under-{action}",
        category="rg",
        check=check,
        description=f"{model} invariant {invariant} is stable under an "
                    f"interfering thread's '{action}' guarantee",
    )


# -- vacuity: hand-broken states must be flagged ------------------------------


def _broken_pmem_states():
    leaked = rs.PmemState(
        free=((),) * (rs.PMEM_MAX_ORDER + 1),
        allocated=((0, 2),), free_frames=0)          # frames 4..7 leaked
    misaligned = rs.PmemState(
        free=((), (1,), (), (0,)), allocated=(), free_frames=10)
    uncoalesced = rs.PmemState(
        free=((0, 1), (), (), ()), allocated=((2, 1), (4, 2)),
        free_frames=2)                               # buddies 0,1 both free
    miscounted = rs.PmemState(
        free=rs.pmem_init().free, allocated=(),
        free_frames=rs.PMEM_FRAMES - 1)
    return {
        "pmem_coverage": leaked,
        "pmem_aligned": misaligned,
        "pmem_coalesced": uncoalesced,
        "pmem_free_count": miscounted,
    }


def _broken_vspace_states():
    nothing = ((),) * rs.VS_REPLICAS
    stale_tlb = rs.VsState(
        base=((0, 0),), log=(), applied=(0,) * rs.VS_REPLICAS,
        tlbs=(((0, 1),),) + ((),) * (rs.VS_REPLICAS - 1))
    # replica 1 still sees a mapping the log has since unmapped
    zombie = rs.VsState(
        base=((0, 0),), log=(("unmap", 0),),
        applied=(1,) + (0,) * (rs.VS_REPLICAS - 1), tlbs=nothing)
    doubled = rs.VsState(
        base=((0, 0), (1, 0)), log=(), applied=(0,) * rs.VS_REPLICAS,
        tlbs=nothing)
    runaway = rs.VsState(
        base=(), log=(("map", 0, 0),) * (rs.VS_MAX_LAG + 1),
        applied=(0,) * rs.VS_REPLICAS, tlbs=nothing)
    return {
        "vs_tlb_current": stale_tlb,
        "vs_replica_monotone": zombie,
        "vs_frames_unique": doubled,
        "vs_lag_bounded": runaway,
    }


def _spec_vacuity_vc(model: str) -> VC:
    def check():
        broken = (_broken_pmem_states() if model == "pmem"
                  else _broken_vspace_states())
        invariants = dict(rs.PMEM_INVARIANTS if model == "pmem"
                          else rs.VSPACE_INVARIANTS)
        for name, state in broken.items():
            if invariants[name](state):
                return ("broken state not flagged", name, state)
        return None

    return VC(
        name=f"rg-spec-detects-violations-{model}",
        category="rg",
        check=check,
        description=f"hand-broken {model} states (leaked frames, stale "
                    f"TLBs, zombie replicas, ...) are flagged — the "
                    f"invariants are not vacuous",
    )


# -- conformance: the real allocator and vspace under seeded traces -----------


def _pmem_audit(alloc) -> tuple | None:
    """The runtime mirror of the model invariants."""
    problem = alloc.check_integrity()
    if problem is not None:
        return ("check_integrity", problem)
    from repro.core.pt import defs

    frames = sum(count << order
                 for order, count in alloc.free_blocks().items())
    if alloc.stats.free_frames != frames:
        return ("free_frames counter drifted",
                alloc.stats.free_frames, frames)
    for order, blocks in enumerate(alloc._free[:-1]):
        size = defs.PAGE_SIZE << order
        if any((block ^ size) in blocks for block in blocks):
            return ("two free buddies left unmerged", order)
    if alloc._lock.held:
        return ("pmem.alloc still held outside an action",)
    return None


def _impl_pmem_trace_vc() -> VC:
    def check():
        from repro.hw.mem import PhysicalMemory
        from repro.nros.pmem import BuddyAllocator, OutOfMemory

        for seed in _TRACE_SEEDS:
            rng = random.Random(seed)
            mem = PhysicalMemory(2 * 1024 * 1024)
            alloc = BuddyAllocator(mem)
            live: list[int] = []
            for step in range(_TRACE_OPS):
                before = alloc._lock.acquisitions
                if live and rng.random() < 0.45:
                    alloc.free_block(live.pop(rng.randrange(len(live))))
                else:
                    try:
                        live.append(alloc.alloc_block(rng.randint(0, 4)))
                    except OutOfMemory:
                        pass
                if alloc._lock.acquisitions != before + 1:
                    return (f"seed={seed}", f"step={step}",
                            "action did not take pmem.alloc exactly once")
                problem = _pmem_audit(alloc)
                if problem is not None:
                    return (f"seed={seed}", f"step={step}") + problem
            for paddr in live:
                alloc.free_block(paddr)
            problem = _pmem_audit(alloc)
            if problem is not None:
                return (f"seed={seed}", "after drain") + problem
        return None

    return VC(
        name="rg-impl-pmem-trace",
        category="rg",
        check=check,
        description="seeded alloc/free traces on the real buddy "
                    "allocator preserve the model invariants (integrity, "
                    "frame accounting, eager coalescing) and every "
                    "action takes the declared lock exactly once",
    )


def _impl_vspace_shootdown_vc() -> VC:
    def check():
        from repro.core.pt.defs import Flags, PageSize
        from repro.hw.mem import PhysicalMemory
        from repro.nros.pmem import BuddyAllocator
        from repro.nros.vspace import VSpace

        mb = 1024 * 1024
        mem = PhysicalMemory(16 * mb)
        alloc = BuddyAllocator(mem, start=8 * mb)
        vspace = VSpace(mem, alloc, num_nodes=2)
        for core in range(4):
            vspace.attach_core(core, core % 2)
        vas = [0x1000 * (i + 1) for i in range(6)]
        for i, va in enumerate(vas):
            vspace.map(va, 0x10_0000 + 0x1000 * i, PageSize.SIZE_4K,
                       Flags.user_rw(), core=0)
        for core in range(4):
            for va in vas:
                vspace.translate(core, va)   # fill every TLB
        vspace.unmap(vas[0], core=1)
        vspace.unmap_batch(vas[1:4], core=2)
        for core, tlb in vspace._tlbs.items():
            for va in vas[:4]:
                if tlb.lookup(va) is not None:
                    return ("stale TLB entry after unmap",
                            f"core={core}", hex(va))
        for core in range(4):
            for va in vas[4:]:
                vspace.translate(core, va)   # survivors still translate
        return None

    return VC(
        name="rg-impl-vspace-shootdown",
        category="rg",
        check=check,
        description="after unmap / unmap_batch no core's TLB holds a "
                    "stale translation — the implementation honours the "
                    "model's atomic-unmap guarantee",
    )


# -- static discharge: the atomicity hypothesis and the lock order ------------


def _repo_root() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parents[3]


def _static_interference_vc() -> VC:
    def check():
        from repro.analysis.imports import discover_sources
        from repro.analysis.rg import check_interference

        sources = discover_sources(_repo_root())
        findings, stats = check_interference(sources)
        if stats["components"] < len(rs.COMPONENTS):
            return ("rg component modules missing from the tree",
                    stats["components"])
        if findings:
            first = findings[0]
            return (f"{len(findings)} interference finding(s)",
                    first.rule, f"{first.path}:{first.line}",
                    first.message)
        return None

    return VC(
        name="rg-static-interference-free",
        category="rg",
        check=check,
        description="the static rg pass finds no unguarded or "
                    "undeclared shared mutation — the stability VCs' "
                    "atomicity hypothesis holds of the code",
    )


def _static_lockorder_vc() -> VC:
    def check():
        from repro.analysis.imports import discover_sources
        from repro.analysis.lockorder import check_lock_order

        sources = discover_sources(_repo_root())
        findings, stats = check_lock_order(sources)
        if findings:
            first = findings[0]
            return (f"{len(findings)} lock-order finding(s)",
                    first.rule, f"{first.path}:{first.line}",
                    first.message)
        if stats["methods"] == 0:
            return ("lock-order pass scanned nothing", stats)
        return None

    return VC(
        name="rg-lockorder-clean",
        category="rg",
        check=check,
        description="the static lock acquisition graph across sched, "
                    "NR, the syscall ring, and the WAL is acyclic with "
                    "same-class nesting ordered",
    )


def rg_vcs() -> list[VC]:
    """The rely-guarantee VC family (group ``rg``)."""
    cache = _RgModelCache()
    vcs = []
    for model, builder, invariants in rs.MODELS:
        vcs.append(_spec_explored_vc(cache, model))
        actions = [t.name for t in builder().transitions]
        for invariant in invariants:
            for action in actions:
                vcs.append(_stability_vc(cache, model, invariant,
                                         action))
        vcs.append(_spec_vacuity_vc(model))
    vcs.append(_impl_pmem_trace_vc())
    vcs.append(_impl_vspace_shootdown_vc())
    vcs.append(_static_interference_vc())
    vcs.append(_static_lockorder_vc())
    return vcs
