"""Refinement obligations (Section 4.4 of the paper).

The theorem shape: for every behaviour of the low-level machine (the
implementation plus hardware spec) there is a corresponding behaviour of the
high-level spec with the same observable values.  We discharge it the
standard way, as a forward simulation:

* *init*: every low initial state abstracts to a high initial state;
* *step*: every enabled low transition commutes with the abstraction
  function — its effect corresponds to one high transition (or a stutter).

The obligations are generated per low-level transition so the proof engine
reports one VC per diagram, mirroring how Verus reports one verification
condition per function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.verif.statemachine import SpecStateMachine
from repro.verif.vc import VC


@dataclass
class SimulationCase:
    """How one low-level transition corresponds to the high-level machine.

    Attributes:
        low_name: low transition label.
        high_name: corresponding high transition label, or None for stutter.
        map_args: maps (low_state, low_args) to high-level args.
    """

    low_name: str
    high_name: str | None
    map_args: Callable = staticmethod(lambda state, args: args)


class RefinementProof:
    """Generates the simulation VCs between two state machines."""

    def __init__(
        self,
        low: SpecStateMachine,
        high: SpecStateMachine,
        abstraction: Callable,
        cases: list[SimulationCase],
        state_source: Callable,
        category: str = "refinement",
    ) -> None:
        """`state_source` returns the low states over which diagrams are
        checked (typically the result of bounded exploration)."""
        self.low = low
        self.high = high
        self.abstraction = abstraction
        self.cases = cases
        self.state_source = state_source
        self.category = category

    def init_vc(self) -> VC:
        def check():
            high_inits = set(self.high.init_states)
            for low_init in self.low.init_states:
                image = self.abstraction(low_init)
                if image not in high_inits:
                    return ("init state does not abstract", low_init, image)
            return None

        return VC(
            name=f"{self.low.name}_init_refines_{self.high.name}",
            category=self.category,
            check=check,
            description="every low initial state abstracts to a high one",
        )

    def step_vc(self, case: SimulationCase) -> VC:
        def check():
            low_t = self.low.transition(case.low_name)
            high_t = (
                self.high.transition(case.high_name)
                if case.high_name is not None
                else None
            )
            for state in self.state_source():
                for args in low_t.arg_tuples(state):
                    if not low_t.enabled(state, args):
                        continue
                    successor = low_t.apply(state, args)
                    pre = self.abstraction(state)
                    post = self.abstraction(successor)
                    if high_t is None:
                        if pre != post:
                            return ("stutter changed abstract state",
                                    case.low_name, args, pre, post)
                        continue
                    high_args = case.map_args(state, args)
                    if not high_t.enabled(pre, high_args):
                        return ("high transition not enabled",
                                case.low_name, args, pre)
                    expected = high_t.apply(pre, high_args)
                    if expected != post:
                        return ("diagram does not commute",
                                case.low_name, args, expected, post)
            return None

        high_label = case.high_name or "stutter"
        return VC(
            name=f"{self.low.name}_{case.low_name}_simulates_{high_label}",
            category=self.category,
            check=check,
            description=(
                f"low {case.low_name} corresponds to high {high_label}"
            ),
        )

    def all_vcs(self) -> list[VC]:
        return [self.init_vc()] + [self.step_vc(c) for c in self.cases]
