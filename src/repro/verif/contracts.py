"""Runtime-checked requires/ensures contracts.

The paper's syscall interface attaches a `requires` and an `ensures` clause
to each function (Section 3's `read` example).  In the Rust/Verus artifact
those are checked statically; here they are written as executable predicates
and checked at runtime when contract checking is enabled.

Contract checking is globally switchable so the latency benchmarks can run
both "debug" (checks on) and "release" (checks off) configurations — the
release configuration is what corresponds to the paper's compiled verified
code, where the proof has been erased.
"""

from __future__ import annotations

import functools
import threading
from contextlib import contextmanager

_state = threading.local()


def contracts_enabled() -> bool:
    return getattr(_state, "enabled", True)


def set_contracts_enabled(enabled: bool) -> None:
    _state.enabled = enabled


@contextmanager
def contracts(enabled: bool):
    """Temporarily enable or disable contract checking."""
    previous = contracts_enabled()
    set_contracts_enabled(enabled)
    try:
        yield
    finally:
        set_contracts_enabled(previous)


class ContractError(AssertionError):
    """A requires or ensures clause failed at runtime."""


def requires(predicate, message: str = ""):
    """Precondition decorator: `predicate(*args, **kwargs)` must hold."""

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if contracts_enabled() and not predicate(*args, **kwargs):
                raise ContractError(
                    f"requires clause failed for {func.__qualname__}"
                    + (f": {message}" if message else "")
                )
            return func(*args, **kwargs)

        wrapper.__wrapped__ = func
        return wrapper

    return decorate


def ensures(predicate, message: str = ""):
    """Postcondition decorator.

    `predicate(result, *args, **kwargs)` must hold after the call.  To
    relate pre- and post-states the callee's owner object should expose a
    `view()` snapshot; use :func:`snapshot` to capture it:

        @ensures(lambda result, self, fd, buf, old: read_spec(old, self.view(), ...))
    is expressed by pairing with @snapshot("old", lambda self, *a, **k: self.view()).
    """

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            result = func(*args, **kwargs)
            if contracts_enabled() and not predicate(result, *args, **kwargs):
                raise ContractError(
                    f"ensures clause failed for {func.__qualname__}"
                    + (f": {message}" if message else "")
                )
            return result

        wrapper.__wrapped__ = func
        return wrapper

    return decorate


def snapshot(keyword: str, capture):
    """Capture `capture(*args, **kwargs)` before the call and pass it to the
    wrapped function as keyword `keyword` — the `old(sys)` of Verus."""

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if contracts_enabled():
                kwargs[keyword] = capture(*args, **kwargs)
            else:
                kwargs[keyword] = None
            return func(*args, **kwargs)

        wrapper.__wrapped__ = func
        return wrapper

    return decorate
