"""Specification state machines.

The paper (Section 3) specifies the OS as a state machine whose transitions
are the system calls and memory operations a process can observe.  This
module provides the abstraction: immutable (hashable) states, labelled
transitions with enabling conditions, and invariants.

States are whatever hashable objects the spec author chooses; transitions
are pure functions.  Argument generators make bounded exploration and
obligation generation possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable


@dataclass(frozen=True)
class Transition:
    """A labelled transition of a specification state machine.

    Attributes:
        name: label, e.g. ``"map"`` or ``"read"``.
        enabled: predicate ``(state, args) -> bool``; the transition may
            only fire from states where this holds.
        apply: pure update ``(state, args) -> state``.
        args: generator of argument tuples used for bounded exploration,
            either an iterable or a callable ``(state) -> iterable``.
    """

    name: str
    enabled: Callable
    apply: Callable
    args: object = ((),)

    def arg_tuples(self, state) -> Iterable[tuple]:
        if callable(self.args):
            return self.args(state)
        return self.args


@dataclass
class SpecStateMachine:
    """A specification state machine with invariants.

    Attributes:
        name: machine name for reporting.
        init_states: the (small, representative) set of initial states used
            by bounded exploration.
        transitions: the labelled transition relation.
        invariants: named predicates expected to hold in every reachable
            state.
    """

    name: str
    init_states: list
    transitions: list[Transition]
    invariants: dict[str, Callable] = field(default_factory=dict)

    def transition(self, name: str) -> Transition:
        for t in self.transitions:
            if t.name == name:
                return t
        raise KeyError(f"{self.name} has no transition {name!r}")

    def step(self, state, name: str, args: tuple = ()):
        """Fire a transition by name, checking its enabling condition."""
        t = self.transition(name)
        if not t.enabled(state, args):
            raise ValueError(
                f"transition {name!r} not enabled with args {args!r}"
            )
        return t.apply(state, args)

    def enabled_steps(self, state) -> Iterable[tuple[str, tuple, object]]:
        """All (name, args, successor) triples enabled from `state`."""
        for t in self.transitions:
            for args in t.arg_tuples(state):
                if t.enabled(state, args):
                    yield t.name, args, t.apply(state, args)

    def check_invariants(self, state) -> str | None:
        """Name of the first violated invariant, or None."""
        for name, pred in self.invariants.items():
            if not pred(state):
                return name
        return None
