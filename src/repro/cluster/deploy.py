"""Deployment: N storage kernels + a gateway on one simulated fabric.

Builds the real thing end to end: one :class:`~repro.nros.kernel.Kernel`
per storage node (each with its NIC, verified net stack, and its own
disk + verified filesystem carrying the node's WAL), a gateway kernel
for the client population, a full mesh of
:class:`~repro.nros.net.link.Link` cables through
:class:`~repro.nros.cluster.Cluster` (whose ``partition``/``heal``
helpers the fault campaign drives), and a deterministic tick loop that
pumps links, polls stacks, and services nodes in a fixed order — so a
seeded run is replayable byte for byte.

Crash-*restart* is a first-class operation: :meth:`Deployment.restart`
snapshots the dead node's platter, unplugs the kernel, boots a
replacement from that image (remount, not mkfs), re-cables it, and
hands it to a :class:`~repro.cluster.node.ClusterNode` constructed in
``recover`` mode — fsck, WAL replay, and the join/pull rejoin protocol
all run in simulated time inside the same tick loop.  With
``auto_restart_delay`` set, any node that dies (killed or crashed by a
fault injection) is restarted that many ticks later, which is how the
crash-recovery campaign turns every kill into a kill+rejoin scenario.

Fault hooks (all driven by a seeded
:class:`~repro.faults.plan.FaultPlan`):

* ``cluster.node.<id>`` — fail-stop crash at a message boundary
  (drawn inside the node's inbox loop);
* ``cluster.link`` — partition a cable for a bounded number of ticks,
  then heal it (drawn here, once per link per tick);
* ``cluster.repl`` — delay a replica forward (drawn at the primary's
  send site);
* ``disk.write`` on one node's disk — kill the platter mid-WAL-append
  (armed directly on the kernel's disk by the WAL crash matrix).
"""

from __future__ import annotations

from repro import obs
from repro.cluster.client import ClientGateway
from repro.cluster.node import ClusterNode, TICK_NS
from repro.cluster.wal import COMPACT_EVERY
from repro.nros.cluster import Cluster
from repro.nros.kernel import Kernel
from repro.nros.net.ip import ip_addr

#: Upper bound (ticks) on an injected partition's duration.
PARTITION_MAX_TICKS = 160

MB = 1024 * 1024


class Deployment:
    """A running cluster: kernels, links, nodes, gateway, virtual time."""

    def __init__(self, num_nodes: int, rf: int = 2, vnodes: int = 64,
                 capacity: int = 4, nr_nodes: int = 1,
                 ring_size: int = 4096, fault_plan=None,
                 registry=None, seed: int = 1,
                 compact_every: int = COMPACT_EVERY,
                 auto_restart_delay: int | None = None) -> None:
        if num_nodes <= 0:
            raise ValueError("need at least one node")
        if not 1 <= rf <= num_nodes:
            raise ValueError(f"replication factor {rf} needs "
                             f"1..{num_nodes} nodes")
        self.rf = rf
        self.fault_plan = fault_plan
        self.registry = registry if registry is not None else obs.registry()
        self.seed = seed
        self.now = 0
        self._vnodes = vnodes
        self._capacity = capacity
        self._nr_nodes = nr_nodes
        self._ring_size = ring_size
        self._compact_every = compact_every
        self.auto_restart_delay = auto_restart_delay

        self.cluster = Cluster()
        self.kernels: dict[str, Kernel] = {}
        members: dict[str, int] = {}
        for i in range(num_nodes):
            node_id = f"node{i}"
            ip = ip_addr(f"10.0.0.{i + 1}")
            kernel = Kernel(num_cores=1, memory_bytes=4 * MB,
                            disk_sectors=256, ip=ip, hostname=node_id)
            self.cluster.add(kernel)
            self.kernels[node_id] = kernel
            members[node_id] = ip
        self._members = members
        gateway_kernel = Kernel(num_cores=1, memory_bytes=4 * MB,
                                disk_sectors=256,
                                ip=ip_addr("10.0.0.254"),
                                hostname="gateway")
        self.cluster.add(gateway_kernel)
        self._gateway_kernel = gateway_kernel

        ids = sorted(self.kernels)
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                self.cluster.connect(self.kernels[a], self.kernels[b])
            self.cluster.connect(self.kernels[a], gateway_kernel)
        # a service fabric needs deeper rings than the 64-frame default:
        # an open-loop burst must queue at the node, not vanish at the NIC
        for kernel in list(self.kernels.values()) + [gateway_kernel]:
            kernel.nic.ring_size = ring_size

        self.nodes = {
            node_id: ClusterNode(node_id, self.kernels[node_id], members,
                                 rf=rf, vnodes=vnodes, capacity=capacity,
                                 nr_nodes=nr_nodes, fault_plan=fault_plan,
                                 registry=self.registry, seed=seed,
                                 compact_every=compact_every)
            for node_id in ids
        }
        self.gateway = ClientGateway(gateway_kernel, members,
                                     vnodes=vnodes, registry=self.registry,
                                     seed=seed)
        self.kills = self.registry.counter("cluster.kills")
        self.partitions = self.registry.counter("cluster.partitions")
        self.restarts = self.registry.counter("cluster.restarts")
        self._heals: list[tuple[int, object]] = []  # (due tick, link)
        self._restart_due: dict[str, int] = {}
        self._restart_log: list[dict] = []
        #: callables invoked as hook(deployment) after every step —
        #: the recovery benchmark's RF-restore sampler plugs in here.
        self.step_hooks: list = []

    # -- orchestration ------------------------------------------------------

    @property
    def alive_nodes(self) -> list[str]:
        return [n for n in sorted(self.nodes) if self.nodes[n].alive]

    @property
    def serving_nodes(self) -> list[str]:
        return [n for n in sorted(self.nodes)
                if self.nodes[n].alive and self.nodes[n].state == "serving"]

    def kill(self, node_id: str) -> None:
        """Fail-stop one node mid-run (the acceptance scenario)."""
        node = self.nodes[node_id]
        if node.alive:
            node.crash(self.now, reason="killed")
            self.kills.inc()

    def restart(self, node_id: str) -> ClusterNode:
        """Boot a dead node's replacement from its surviving disk image.

        The physical story: snapshot the platter, unplug the machine,
        cable in a replacement that *mounts* the image (no mkfs), and
        start the service in recovery mode — it will fsck, replay its
        snapshot+WAL, and rejoin via the join/pull protocol before it
        serves a single request."""
        old = self.nodes[node_id]
        if old.alive:
            raise ValueError(f"{node_id} is alive; kill it first")
        old_kernel = self.kernels[node_id]
        image = old_kernel.disk.snapshot()
        self.cluster.remove(old_kernel)

        kernel = Kernel(num_cores=1, memory_bytes=4 * MB,
                        disk_sectors=256, ip=self._members[node_id],
                        hostname=node_id, disk_image=image)
        self.cluster.add(kernel)
        self.kernels[node_id] = kernel
        for other_id in sorted(self.kernels):
            if other_id != node_id:
                self.cluster.connect(kernel, self.kernels[other_id])
        self.cluster.connect(kernel, self._gateway_kernel)
        kernel.nic.ring_size = self._ring_size

        node = ClusterNode(node_id, kernel, self._members, rf=self.rf,
                           vnodes=self._vnodes, capacity=self._capacity,
                           nr_nodes=self._nr_nodes,
                           fault_plan=self.fault_plan,
                           registry=self.registry, seed=self.seed,
                           recover=True, now=self.now,
                           compact_every=self._compact_every)
        self.nodes[node_id] = node
        self.restarts.inc()
        self._restart_log.append({"node": node_id, "at": self.now})
        self._emit("cluster.restart", node=node_id,
                   fsck_issues=len(node.fsck_issues),
                   replayed=node.replayed_records,
                   keys=node.recovered_keys)
        return node

    def recovery_info(self) -> list[dict]:
        """Per-restart recovery facts (for reports and the benchmark)."""
        info = []
        for entry in self._restart_log:
            node = self.nodes[entry["node"]]
            rec = {"node": entry["node"], "restarted_at": entry["at"],
                   "fsck_issues": len(node.fsck_issues),
                   "replayed_records": node.replayed_records,
                   "recovered_keys": node.recovered_keys,
                   "serving": node.alive and node.state == "serving",
                   "recovered_at": node.recovered_at}
            if node.recovered_at is not None:
                rec["recovery_ticks"] = node.recovered_at - entry["at"]
            info.append(rec)
        return info

    def partition(self, a: str, b: str) -> None:
        self.cluster.partition(self.kernels[a], self.kernels[b])
        self._emit("cluster.partition", a=a, b=b)
        self.partitions.inc()

    def heal(self, a: str, b: str) -> None:
        self.cluster.heal(self.kernels[a], self.kernels[b])
        self._emit("cluster.heal", a=a, b=b)

    def _emit(self, name: str, **fields) -> None:
        bus = obs.bus()
        if bus.active:
            bus.emit(name, t=self.now * TICK_NS, clock="sim", **fields)

    # -- the tick loop ------------------------------------------------------

    def step(self) -> None:
        """One deterministic round of simulated time (TICK_NS)."""
        self.now += 1
        self._auto_restarts()
        self._inject_link_faults()
        for link in self.cluster.links:
            link.pump()
        for kernel in self.cluster.kernels:
            kernel.net.poll()
        for node_id in sorted(self.nodes):
            self.nodes[node_id].on_tick(self.now)
        self.gateway.on_tick(self.now)
        for hook in self.step_hooks:
            hook(self)

    def run_ticks(self, ticks: int) -> None:
        for _ in range(ticks):
            self.step()

    def _auto_restarts(self) -> None:
        if self.auto_restart_delay is not None:
            for node_id in sorted(self.nodes):
                if (not self.nodes[node_id].alive
                        and node_id not in self._restart_due):
                    self._restart_due[node_id] = (self.now
                                                  + self.auto_restart_delay)
        due = sorted(n for n, t in self._restart_due.items()
                     if t <= self.now)
        for node_id in due:
            del self._restart_due[node_id]
            self.restart(node_id)

    def _inject_link_faults(self) -> None:
        if self._heals:
            due = [(t, link) for t, link in self._heals if t <= self.now]
            if due:
                self._heals = [(t, link) for t, link in self._heals
                               if t > self.now]
                for _, link in due:
                    link.heal()
                    self._emit("cluster.heal", links=1)
        if self.fault_plan is None:
            return
        for link in self.cluster.links:
            decision = self.fault_plan.draw("cluster.link")
            if (decision is not None and decision.kind == "partition"
                    and not link.partitioned):
                link.partition()
                duration = 1 + decision.rand_below(PARTITION_MAX_TICKS)
                self._heals.append((self.now + duration, link))
                self.partitions.inc()
                self._emit("cluster.partition", ticks=duration)
