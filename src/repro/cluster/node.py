"""One storage node of the sharded, replicated KV service.

A node is a *user-space service the verified OS carries*: it talks UDP
through its kernel's :class:`~repro.nros.net.stack.NetStack`, and its
local state is a :class:`~repro.nr.core.NodeReplicated` ``KvStore`` —
the NR structure whose linearizability the proof layer checks — so the
paper's claim ("the application is correct because the OS's verified
services carry it") is literal: every byte this service stores moves
through the verified net stack and the verified replication protocol.

Cluster-level replication lives *above* that boundary (see DESIGN.md):

* **placement** — a :class:`~repro.cluster.ring.HashRing` maps each key
  to `rf` distinct nodes, primary first;
* **writes** — the primary applies locally, forwards to every live
  replica, and acknowledges the client only once all of them confirmed;
  so an acknowledged write exists on every live group member and one
  node death cannot lose it;
* **reads** — served by the primary only, which (with primary-forwarded
  writes) gives read-your-writes per client session;
* **membership** — all-to-all heartbeats with a fixed-timeout failure
  detector; a death bumps the local epoch, rebuilds the ring (survivor
  order is preserved, so the old first replica becomes the new primary)
  and schedules version-guarded re-replication of every key the node
  still owns;
* **versions** — the primary stamps each write with a per-key
  monotonically increasing version; replicas and re-replication apply
  last-writer-wins on the version, making every transfer idempotent.

Timing is in integer scheduler ticks (:data:`~repro.cluster.messages`
constants); everything is deterministic under a seed.
"""

from __future__ import annotations

from collections import deque

from repro import obs
from repro.cluster import messages as msg
from repro.cluster.ring import HashRing
from repro.nr.core import NodeReplicated
from repro.nr.datastructures import KvStore

#: UDP port every node serves on.
SERVICE_PORT = 7000
#: Simulated nanoseconds per deployment tick.
TICK_NS = 1_000
#: Heartbeat period and failure-detector timeout, in ticks.
HB_EVERY = 20
HB_TIMEOUT = 80
#: Primary retransmits unacknowledged replica forwards this often.
REPL_RETRY = 40
#: Re-replication entries pushed per tick after a membership change.
SYNC_BATCH = 16
#: Upper bound (ticks) on an injected replica-lag delay.
LAG_MAX_TICKS = 60

#: Message kinds that consume service capacity (the data plane); the
#: control plane (heartbeats, acks, membership queries) is served free.
_DATA_KINDS = ("put", "get", "del", "repl", "sync")


class ClusterNode:
    """One node: KV shard server, replica peer, failure detector."""

    def __init__(self, node_id: str, kernel, members: dict[str, int],
                 rf: int = 2, vnodes: int = 64, capacity: int = 4,
                 nr_nodes: int = 1, fault_plan=None, registry=None) -> None:
        if kernel.net is None:
            raise ValueError(f"kernel {kernel.hostname!r} has no network")
        if rf <= 0 or rf > len(members):
            raise ValueError(f"replication factor {rf} needs "
                             f"1..{len(members)} nodes")
        self.node_id = node_id
        self.kernel = kernel
        self.stack = kernel.net
        self.sock = self.stack.udp_bind(SERVICE_PORT)
        self.members = dict(members)          # id -> ip, bootstrap set
        self.rf = rf
        self.capacity = capacity
        self.ring = HashRing(sorted(members), vnodes=vnodes)
        self.store = NodeReplicated(KvStore, num_nodes=nr_nodes)
        self.fault_plan = fault_plan
        self.registry = registry if registry is not None else obs.registry()

        self.alive = True
        self.epoch = 0
        self.peer_alive = {peer: True for peer in sorted(members)}
        self.last_seen = {peer: 0 for peer in sorted(members)}
        self._last_hb = -HB_EVERY
        self._next_version: dict[str, int] = {}
        #: req id -> in-flight primary write awaiting replica acks.
        self.pending: dict[int, dict] = {}
        self._sync_queue: deque = deque()     # (target id, key, val, ver)
        self._lagged: list[tuple[int, int, dict]] = []  # (due, ip, msg)

        self._served = {kind: self.registry.counter(
            "cluster.served", node=node_id, op=kind)
            for kind in _DATA_KINDS}
        self._redirects = self.registry.counter("cluster.redirects",
                                                node=node_id)
        self._failovers = self.registry.counter("cluster.failovers",
                                                node=node_id)
        self._synced = self.registry.counter("cluster.sync_entries",
                                             node=node_id)
        self._backlog = self.registry.gauge("cluster.backlog", node=node_id)

    # -- storage (the NR-carried KV shard) ----------------------------------

    def _lookup(self, key: str):
        """The stored ``(value, version)`` pair, or None."""
        return self.store.execute_ro(("get", key))

    def _apply(self, key: str, value, version: int) -> bool:
        """Version-guarded last-writer-wins apply; True if it landed."""
        current = self._lookup(key)
        if current is not None and current[1] >= version:
            return False
        self.store.execute(("put", key, (value, version)))
        if version > self._next_version.get(key, 0):
            self._next_version[key] = version
        return True

    def local_data(self) -> dict:
        """A quiesced snapshot of this node's shard (key -> (val, ver))."""
        self.store.sync_all()
        return dict(self.store.replicas[0].ds.data)

    # -- wire helpers -------------------------------------------------------

    def _send(self, dst_ip: int, dst_port: int, message: dict) -> None:
        self.stack.udp_send(SERVICE_PORT, dst_ip, dst_port,
                            msg.encode(message))

    def _send_peer(self, peer: str, message: dict) -> None:
        self._send(self.members[peer], SERVICE_PORT, message)

    def _respond(self, client, message: dict) -> None:
        src_ip, src_port = client
        self._send(src_ip, src_port, message)

    def _emit(self, name: str, now: int, **fields) -> None:
        bus = obs.bus()
        if bus.active:
            bus.emit(name, t=now * TICK_NS, clock="sim",
                     node=self.node_id, **fields)

    # -- the per-tick service loop ------------------------------------------

    def on_tick(self, now: int) -> None:
        if not self.alive:
            return
        self._heartbeat(now)
        self._detect_failures(now)
        self._release_lagged(now)
        if not self._process_inbox(now):
            return  # crashed mid-inbox
        self._retry_pending(now)
        self._drain_sync_queue(now)
        self._backlog.set(len(self.sock.recv_queue))

    def _heartbeat(self, now: int) -> None:
        if now - self._last_hb < HB_EVERY:
            return
        self._last_hb = now
        for peer in sorted(self.members):
            if peer != self.node_id:
                self._send_peer(peer, {"kind": "hb", "from": self.node_id,
                                       "epoch": self.epoch})

    def _detect_failures(self, now: int) -> None:
        for peer in sorted(self.members):
            if peer == self.node_id or not self.peer_alive[peer]:
                continue
            if now - self.last_seen[peer] > HB_TIMEOUT:
                self._membership_change(peer, alive=False, now=now)

    def _release_lagged(self, now: int) -> None:
        due = [entry for entry in self._lagged if entry[0] <= now]
        if due:
            self._lagged = [e for e in self._lagged if e[0] > now]
            for _, dst_ip, message in due:
                self._send(dst_ip, SERVICE_PORT, message)

    def _process_inbox(self, now: int) -> bool:
        """Serve queued datagrams; data-plane messages consume capacity
        (the queueing model behind the latency distributions).  Returns
        False if an injected crash killed the node at a message
        boundary."""
        budget = self.capacity
        queue = self.sock.recv_queue
        while queue:
            src_ip, src_port, payload = queue.popleft()
            try:
                message = msg.decode(payload)
            except msg.ClusterMsgError:
                continue
            kind = message.get("kind")
            if kind in _DATA_KINDS:
                if budget == 0:
                    queue.appendleft((src_ip, src_port, payload))
                    break
                budget -= 1
                if self.fault_plan is not None:
                    decision = self.fault_plan.draw(
                        f"cluster.node.{self.node_id}")
                    if decision is not None and decision.kind == "crash":
                        self.crash(now, reason="injected")
                        return False
                self._served[kind].inc()
            self._handle(message, (src_ip, src_port), now)
        return True

    def crash(self, now: int, reason: str = "killed") -> None:
        """Fail-stop: the node goes silent (the failure mode the
        heartbeat detector and replication are built for)."""
        self.alive = False
        self._emit("cluster.kill", now, reason=reason, epoch=self.epoch)

    # -- message handling ---------------------------------------------------

    def _handle(self, message: dict, client, now: int) -> None:
        kind = message["kind"]
        if kind == "hb":
            self._on_heartbeat(message, now)
        elif kind in ("put", "del"):
            self._on_write(message, client, now)
        elif kind == "get":
            self._on_read(message, client)
        elif kind == "ring":
            self._on_ring(message, client)
        elif kind == "repl":
            self._on_repl(message, client)
        elif kind == "repl-ack":
            self._on_repl_ack(message, now)
        elif kind == "sync":
            self._on_sync(message, client)
        # sync-ack needs no action: sync is version-guarded + idempotent

    def _on_heartbeat(self, message: dict, now: int) -> None:
        peer = message.get("from")
        if peer not in self.last_seen or peer == self.node_id:
            return
        self.last_seen[peer] = now
        if not self.peer_alive[peer]:
            self._membership_change(peer, alive=True, now=now)

    def _on_write(self, message: dict, client, now: int) -> None:
        key = message["key"]
        value = message.get("value") if message["kind"] == "put" else None
        owners = self.ring.owners(key, self.rf)
        if owners[0] != self.node_id:
            self._redirect(message, client, owners[0])
            return
        stored = self._lookup(key)
        floor = max(self._next_version.get(key, 0),
                    stored[1] if stored is not None else 0)
        version = floor + 1
        self._next_version[key] = version
        self._apply(key, value, version)
        waiting = {peer for peer in owners[1:] if self.peer_alive[peer]}
        if not waiting:
            self._respond(client, {"kind": "resp", "req": message["req"],
                                   "ok": True, "version": version})
            return
        self.pending[message["req"]] = {
            "client": client, "key": key, "value": value,
            "version": version, "waiting": waiting, "last_send": now,
        }
        for peer in sorted(waiting):
            self._send_repl(peer, message["req"], key, value, version, now)

    def _send_repl(self, peer: str, req: int, key: str, value,
                   version: int, now: int) -> None:
        forward = {"kind": "repl", "req": req, "from": self.node_id,
                   "key": key, "value": value, "version": version}
        if self.fault_plan is not None:
            decision = self.fault_plan.draw("cluster.repl")
            if decision is not None and decision.kind == "lag":
                due = now + 1 + decision.rand_below(LAG_MAX_TICKS)
                self._lagged.append((due, self.members[peer], forward))
                return
        self._send_peer(peer, forward)

    def _on_repl(self, message: dict, client) -> None:
        self._apply(message["key"], message.get("value"),
                    message["version"])
        self._respond(client, {"kind": "repl-ack", "req": message["req"],
                               "from": self.node_id})

    def _on_repl_ack(self, message: dict, now: int) -> None:
        entry = self.pending.get(message["req"])
        if entry is None:
            return
        entry["waiting"].discard(message.get("from"))
        self._complete_ready_writes(now)

    def _complete_ready_writes(self, now: int) -> None:
        for req in sorted(self.pending):
            entry = self.pending[req]
            if entry["waiting"]:
                continue
            del self.pending[req]
            self._respond(entry["client"],
                          {"kind": "resp", "req": req, "ok": True,
                           "version": entry["version"]})

    def _retry_pending(self, now: int) -> None:
        for req in sorted(self.pending):
            entry = self.pending[req]
            if now - entry["last_send"] < REPL_RETRY:
                continue
            entry["last_send"] = now
            for peer in sorted(entry["waiting"]):
                self._send_repl(peer, req, entry["key"], entry["value"],
                                entry["version"], now)

    def _on_read(self, message: dict, client) -> None:
        key = message["key"]
        owners = self.ring.owners(key, self.rf)
        if owners[0] != self.node_id:
            self._redirect(message, client, owners[0])
            return
        stored = self._lookup(key)
        value, version = (stored if stored is not None else (None, 0))
        self._respond(client, {"kind": "resp", "req": message["req"],
                               "ok": True, "value": value,
                               "version": version})

    def _redirect(self, message: dict, client, leader: str) -> None:
        self._redirects.inc()
        self._respond(client, {
            "kind": "resp", "req": message["req"], "ok": False,
            "err": msg.ERR_NOT_PRIMARY,
            "leader": self.members.get(leader),
        })

    def _on_ring(self, message: dict, client) -> None:
        alive = [[peer, self.members[peer]]
                 for peer in sorted(self.members)
                 if self.peer_alive[peer]]
        self._respond(client, {"kind": "ring-resp", "req": message["req"],
                               "members": alive, "epoch": self.epoch})

    def _on_sync(self, message: dict, client) -> None:
        applied = 0
        for key, value, version in message.get("entries", []):
            if self._apply(key, value, version):
                applied += 1
        self._synced.inc(applied)
        self._respond(client, {"kind": "sync-ack", "req": message["req"],
                               "from": self.node_id, "applied": applied})

    # -- membership, failover, re-replication -------------------------------

    def _membership_change(self, peer: str, alive: bool, now: int) -> None:
        self.peer_alive[peer] = alive
        self.epoch += 1
        if alive:
            self.last_seen[peer] = now
            self.ring.add_node(peer)
        else:
            self.ring.remove_node(peer)
        self._emit("cluster.member", now, peer=peer,
                   state="alive" if alive else "dead", epoch=self.epoch)
        if not alive:
            self._failovers.inc()
            self._emit("cluster.failover", now, dead=peer,
                       epoch=self.epoch)
            # a dead replica can never ack: release writes it was gating
            for entry in self.pending.values():
                entry["waiting"].discard(peer)
            self._complete_ready_writes(now)
        self._schedule_sync(now)

    def _schedule_sync(self, now: int) -> None:
        """Queue version-guarded pushes of every key this node is now
        primary for, to the group members that may lack it."""
        self._sync_queue.clear()
        queued = 0
        data = self.local_data()
        for key in sorted(data):
            owners = self.ring.owners(key, self.rf)
            if owners[0] != self.node_id:
                continue
            value, version = data[key]
            for peer in owners[1:]:
                if self.peer_alive[peer]:
                    self._sync_queue.append((peer, key, value, version))
                    queued += 1
        if queued:
            self._emit("cluster.sync", now, entries=queued,
                       epoch=self.epoch)

    def _drain_sync_queue(self, now: int) -> None:
        if not self._sync_queue:
            return
        batches: dict[str, list] = {}
        for _ in range(min(SYNC_BATCH, len(self._sync_queue))):
            peer, key, value, version = self._sync_queue.popleft()
            batches.setdefault(peer, []).append([key, value, version])
        for peer in sorted(batches):
            if self.peer_alive[peer]:
                self._send_peer(peer, {"kind": "sync", "req": 0,
                                       "from": self.node_id,
                                       "entries": batches[peer]})
