"""One storage node of the sharded, replicated KV service.

A node is a *user-space service the verified OS carries*: it talks UDP
through its kernel's :class:`~repro.nros.net.stack.NetStack`, its
local state is a :class:`~repro.nr.core.NodeReplicated` ``KvStore`` —
the NR structure whose linearizability the proof layer checks — and
(since the crash-restart work) every applied write is first made
durable through a :class:`~repro.cluster.wal.NodeWal` on the node's own
verified filesystem, so the paper's claim ("the application is correct
because the OS's verified services carry it") is literal end to end:
every byte this service stores moves through the verified net stack,
the verified replication protocol, and the crash-ordered filesystem.

Cluster-level replication lives *above* that boundary (see DESIGN.md):

* **placement** — a :class:`~repro.cluster.ring.HashRing` maps each key
  to `rf` distinct nodes, primary first;
* **writes** — the primary logs to its WAL, applies locally, forwards
  to every live replica (each of which logs + applies), and
  acknowledges the client only once all of them confirmed; if the ring
  currently holds fewer than `rf` nodes the primary refuses the write
  with the typed retryable ``degraded`` error instead of acking thin;
* **reads** — served by the primary only, which (with primary-forwarded
  writes) gives read-your-writes per client session;
* **membership** — all-to-all heartbeats (periods jittered per seed so
  retry storms cannot synchronize) with a fixed-timeout failure
  detector, and a three-way state per peer: *serving* (in the ring),
  *recovering* (announced itself restarting — out of the ring, but
  streamed catch-up data), or *dead* (silent past the timeout);
* **crash-restart** — a restarted node remounts its disk, runs fsck,
  replays snapshot+WAL to rebuild the shard, then rejoins: a
  ``join``/``join-ack`` epoch handshake, a ``pull`` of every entry it
  will own from each live peer (version-guarded, idempotent), and only
  after every transfer's ``pull-done`` does it start serving — so a
  rejoining node can never answer a read with pre-crash state;
* **versions** — writes are stamped with per-key monotonically
  increasing versions in the issuing node's residue class
  (``version % N == node_index``), so two nodes can never mint the
  same version and last-writer-wins stays unambiguous even when a
  replayed WAL resurrects a write that was never acknowledged.

Timing is in integer scheduler ticks (:data:`~repro.cluster.messages`
constants); everything is deterministic under a seed.
"""

from __future__ import annotations

import random
from collections import deque

from repro import obs
from repro.cluster import messages as msg
from repro.cluster.ring import HashRing
from repro.cluster.wal import COMPACT_EVERY, NodeWal
from repro.hw.devices.disk import DiskCrash
from repro.nr.core import NodeReplicated
from repro.nr.datastructures import KvStore
from repro.nros.fs import fd as fdmod
from repro.nros.fs.fsck import fsck

#: UDP port every node serves on.
SERVICE_PORT = 7000
#: Simulated nanoseconds per deployment tick.
TICK_NS = 1_000
#: Heartbeat period and failure-detector timeout, in ticks.
HB_EVERY = 20
HB_TIMEOUT = 80
#: Seeded jitter added to each heartbeat period (desynchronizes nodes).
HB_JITTER = 5
#: Primary retransmits unacknowledged replica forwards this often...
REPL_RETRY = 40
#: ...plus a seeded jitter so retransmit storms cannot phase-lock.
REPL_JITTER = 13
#: Re-replication entries pushed per tick after a membership change.
SYNC_BATCH = 16
#: Upper bound (ticks) on an injected replica-lag delay.
LAG_MAX_TICKS = 60
#: A rejoining node re-sends its join/pull requests this often, and
#: gives up waiting for silent peers after the window below.
JOIN_RETRY = 20
JOIN_WINDOW = 80
PULL_RETRY = 200

#: Message kinds that consume service capacity (the data plane); the
#: control plane (heartbeats, acks, membership traffic) is served free.
_DATA_KINDS = ("put", "get", "del", "repl", "sync")


class ClusterNode:
    """One node: KV shard server, WAL, replica peer, failure detector."""

    def __init__(self, node_id: str, kernel, members: dict[str, int],
                 rf: int = 2, vnodes: int = 64, capacity: int = 4,
                 nr_nodes: int = 1, fault_plan=None, registry=None,
                 seed: int = 1, recover: bool = False, now: int = 0,
                 compact_every: int = COMPACT_EVERY) -> None:
        if kernel.net is None:
            raise ValueError(f"kernel {kernel.hostname!r} has no network")
        if rf <= 0 or rf > len(members):
            raise ValueError(f"replication factor {rf} needs "
                             f"1..{len(members)} nodes")
        self.node_id = node_id
        self.kernel = kernel
        self.stack = kernel.net
        self.sock = self.stack.udp_bind(SERVICE_PORT)
        self.members = dict(members)          # id -> ip, bootstrap set
        self.rf = rf
        self.capacity = capacity
        self.store = NodeReplicated(KvStore, num_nodes=nr_nodes)
        self.fault_plan = fault_plan
        self.registry = registry if registry is not None else obs.registry()
        self.seed = seed
        self._rng = random.Random(f"cluster/{seed}/{node_id}")

        # version residue class: versions this node mints are ≡ its
        # index mod the bootstrap member count, so no two nodes can
        # ever issue the same version for a key
        ids = sorted(members)
        self._vslot = ids.index(node_id)
        self._vmod = len(ids)

        self.alive = True
        self.epoch = 0
        self.state = "serving"
        self.last_seen = {peer: now for peer in ids}
        self._hb_due = now
        self._next_version: dict[str, int] = {}
        #: req id -> in-flight primary write awaiting replica acks.
        self.pending: dict[int, dict] = {}
        self._sync_queue: deque = deque()     # (target id, key, val, ver)
        self._catchup_queue: deque = deque()  # + (target, None, req, 0)
        self._lagged: list[tuple[int, int, dict]] = []  # (due, ip, msg)

        # peers announced as restarting: out of the ring, streamed data
        self._recovering_peers: set[str] = set()
        self._catchup_rings: dict[str, HashRing] = {}

        # rejoin-protocol state (used only while self.state=="recovering")
        self._next_req = 1
        self._recover_started = now
        self._recover_phase: str | None = None
        self._last_join = now - JOIN_RETRY
        self._join_acked: set[str] = set()
        self._pull_targets: set[str] = set()
        self._pull_done_from: set[str] = set()
        self._pull_reqs: dict[str, int] = {}
        self._pull_sent: dict[str, int] = {}

        # mount (or remount) the durable log through the file API
        self.fdtable = fdmod.FdTable(kernel.fs)
        self.fsck_issues: list[str] = []
        self.recovered_at: int | None = now if not recover else None
        if recover:
            self.state = "recovering"
            self._recover_phase = "join"
            self.fsck_issues = fsck(kernel.fs)
            self.peer_alive = {peer: peer == node_id for peer in ids}
            self.ring = HashRing([node_id], vnodes=vnodes)
        else:
            self.peer_alive = {peer: True for peer in ids}
            self.ring = HashRing(ids, vnodes=vnodes)
        self.wal, self.wal_recovery = NodeWal.open(
            self.fdtable, compact_every=compact_every)
        self.replayed_records = self.wal_recovery.replayed_records
        self.recovered_keys = len(self.wal_recovery.entries)
        for key in sorted(self.wal_recovery.entries):
            value, version = self.wal_recovery.entries[key]
            self.store.execute(("put", key, (value, version)))
            self._next_version[key] = version

        self._served = {kind: self.registry.counter(
            "cluster.served", node=node_id, op=kind)
            for kind in _DATA_KINDS}
        self._redirects = self.registry.counter("cluster.redirects",
                                                node=node_id)
        self._failovers = self.registry.counter("cluster.failovers",
                                                node=node_id)
        self._synced = self.registry.counter("cluster.sync_entries",
                                             node=node_id)
        self._degraded_writes = self.registry.counter(
            "cluster.degraded_writes", node=node_id)
        self._recovering_rejects = self.registry.counter(
            "cluster.recovering_rejects", node=node_id)
        self._backlog = self.registry.gauge("cluster.backlog", node=node_id)
        if recover:
            self._emit("cluster.recovering", now, epoch=self.epoch,
                       fsck_issues=len(self.fsck_issues),
                       replayed=self.replayed_records,
                       keys=self.recovered_keys)

    # -- storage (the NR-carried KV shard, behind the WAL) ------------------

    def _lookup(self, key: str):
        """The stored ``(value, version)`` pair, or None."""
        return self.store.execute_ro(("get", key))

    def _apply(self, key: str, value, version: int) -> bool:
        """Version-guarded last-writer-wins apply; True if it landed.

        Durability order: the WAL record reaches the filesystem *before*
        the in-memory apply — a :class:`DiskCrash` mid-append leaves
        neither (the torn record is ignored at replay, and the write was
        never acknowledged)."""
        current = self._lookup(key)
        if current is not None and current[1] >= version:
            return False
        self.wal.append(key, value, version)
        self.store.execute(("put", key, (value, version)))
        if version > self._next_version.get(key, 0):
            self._next_version[key] = version
        return True

    def _assign_version(self, key: str) -> int:
        """The next version in this node's residue class, above both the
        stored version and anything this node already promised."""
        stored = self._lookup(key)
        floor = max(self._next_version.get(key, 0),
                    stored[1] if stored is not None else 0)
        version = floor + 1
        version += (self._vslot - version) % self._vmod
        self._next_version[key] = version
        return version

    def local_data(self) -> dict:
        """A quiesced snapshot of this node's shard (key -> (val, ver))."""
        self.store.sync_all()
        return dict(self.store.replicas[0].ds.data)

    # -- wire helpers -------------------------------------------------------

    def _send(self, dst_ip: int, dst_port: int, message: dict) -> None:
        self.stack.udp_send(SERVICE_PORT, dst_ip, dst_port,
                            msg.encode(message))

    def _send_peer(self, peer: str, message: dict) -> None:
        self._send(self.members[peer], SERVICE_PORT, message)

    def _respond(self, client, message: dict) -> None:
        src_ip, src_port = client
        self._send(src_ip, src_port, message)

    def _emit(self, name: str, now: int, **fields) -> None:
        bus = obs.bus()
        if bus.active:
            bus.emit(name, t=now * TICK_NS, clock="sim",
                     node=self.node_id, **fields)

    # -- the per-tick service loop ------------------------------------------

    def on_tick(self, now: int) -> None:
        if not self.alive:
            return
        self._heartbeat(now)
        self._detect_failures(now)
        self._release_lagged(now)
        if not self._process_inbox(now):
            return  # crashed mid-inbox
        if self.state == "recovering":
            self._recover_tick(now)
        else:
            self._retry_pending(now)
        try:
            if self.wal.should_compact():
                self.wal.compact(self.local_data())
        except DiskCrash:
            self.crash(now, reason="disk-crash")
            return
        self._drain_queues(now)
        self._backlog.set(len(self.sock.recv_queue))

    def _heartbeat(self, now: int) -> None:
        if now < self._hb_due:
            return
        self._hb_due = now + HB_EVERY + self._rng.randrange(HB_JITTER)
        for peer in sorted(self.members):
            if peer != self.node_id:
                self._send_peer(peer, {"kind": "hb", "from": self.node_id,
                                       "epoch": self.epoch,
                                       "state": self.state})

    def _detect_failures(self, now: int) -> None:
        for peer in sorted(self.members):
            if peer == self.node_id or not self.peer_alive[peer]:
                continue
            if now - self.last_seen[peer] > HB_TIMEOUT:
                self._membership_change(peer, alive=False, now=now)
        # a recovering peer that went silent died mid-recovery: drop its
        # catch-up stream until it announces itself again
        for peer in sorted(self._recovering_peers):
            if now - self.last_seen[peer] > HB_TIMEOUT:
                self._recovering_peers.discard(peer)
                self._catchup_rings.pop(peer, None)
                self._catchup_queue = deque(
                    entry for entry in self._catchup_queue
                    if entry[0] != peer)

    def _release_lagged(self, now: int) -> None:
        due = [entry for entry in self._lagged if entry[0] <= now]
        if due:
            self._lagged = [e for e in self._lagged if e[0] > now]
            for _, dst_ip, message in due:
                self._send(dst_ip, SERVICE_PORT, message)

    def _process_inbox(self, now: int) -> bool:
        """Serve queued datagrams; data-plane messages consume capacity
        (the queueing model behind the latency distributions).  Returns
        False if an injected crash — or the disk dying under the WAL —
        killed the node at a message boundary."""
        budget = self.capacity
        queue = self.sock.recv_queue
        while queue:
            src_ip, src_port, payload = queue.popleft()
            try:
                message = msg.decode(payload)
            except msg.ClusterMsgError:
                continue
            kind = message.get("kind")
            if kind in _DATA_KINDS:
                if budget == 0:
                    queue.appendleft((src_ip, src_port, payload))
                    break
                budget -= 1
                if self.fault_plan is not None:
                    decision = self.fault_plan.draw(
                        f"cluster.node.{self.node_id}")
                    if decision is not None and decision.kind == "crash":
                        self.crash(now, reason="injected")
                        return False
                self._served[kind].inc()
            try:
                self._handle(message, (src_ip, src_port), now)
            except DiskCrash:
                self.crash(now, reason="disk-crash")
                return False
        return True

    def crash(self, now: int, reason: str = "killed") -> None:
        """Fail-stop: the node goes silent (the failure mode the
        heartbeat detector, replication, and restart path are built
        for).  Its disk image survives for the restarted incarnation."""
        self.alive = False
        self._emit("cluster.kill", now, reason=reason, epoch=self.epoch)

    # -- message handling ---------------------------------------------------

    def _handle(self, message: dict, client, now: int) -> None:
        kind = message["kind"]
        if kind == "hb":
            self._on_heartbeat(message, now)
        elif kind in ("put", "del"):
            self._on_write(message, client, now)
        elif kind == "get":
            self._on_read(message, client)
        elif kind == "ring":
            self._on_ring(message, client)
        elif kind == "repl":
            self._on_repl(message, client)
        elif kind == "repl-ack":
            self._on_repl_ack(message, now)
        elif kind == "sync":
            self._on_sync(message, client)
        elif kind == "join":
            self._on_join(message, now)
        elif kind == "join-ack":
            self._on_join_ack(message, now)
        elif kind == "pull":
            self._on_pull(message, now)
        elif kind == "pull-done":
            self._on_pull_done(message)
        # sync-ack needs no action: sync is version-guarded + idempotent

    def _on_heartbeat(self, message: dict, now: int) -> None:
        peer = message.get("from")
        if peer not in self.last_seen or peer == self.node_id:
            return
        self.last_seen[peer] = now
        if message.get("state", "serving") == "recovering":
            if self.peer_alive[peer]:
                # it restarted before our detector fired: it is not a
                # ring member while it replays (dead ≠ recovering)
                self._membership_change(peer, alive=False, now=now)
            if peer not in self._recovering_peers:
                self._recovering_peers.add(peer)
                self._refresh_catchup()
        else:
            if peer in self._recovering_peers:
                self._recovering_peers.discard(peer)
                self._catchup_rings.pop(peer, None)
            if not self.peer_alive[peer]:
                self._membership_change(peer, alive=True, now=now)

    def _reject_not_serving(self, message: dict, client) -> bool:
        """While recovering, data requests get the typed retryable
        ``recovering`` error — never pre-crash (possibly stale) state."""
        if self.state == "serving":
            return False
        self._recovering_rejects.inc()
        self._respond(client, {"kind": "resp", "req": message["req"],
                               "ok": False, "err": msg.ERR_RECOVERING})
        return True

    def _on_write(self, message: dict, client, now: int) -> None:
        if self._reject_not_serving(message, client):
            return
        key = message["key"]
        value = message.get("value") if message["kind"] == "put" else None
        owners = self.ring.owners(key, self.rf)
        if owners[0] != self.node_id:
            self._redirect(message, client, owners[0])
            return
        if len(owners) < self.rf:
            # quorum-aware degraded mode: fewer live nodes than the
            # replica group needs — refuse rather than ack thin
            self._degraded_writes.inc()
            self._respond(client, {"kind": "resp", "req": message["req"],
                                   "ok": False, "err": msg.ERR_DEGRADED})
            return
        version = self._assign_version(key)
        self._apply(key, value, version)
        self._stream_to_recovering(key, value, version)
        waiting = {peer for peer in owners[1:] if self.peer_alive[peer]}
        if not waiting:
            self._respond(client, {"kind": "resp", "req": message["req"],
                                   "ok": True, "version": version})
            return
        self.pending[message["req"]] = {
            "client": client, "key": key, "value": value,
            "version": version, "waiting": waiting,
            "retry_at": now + REPL_RETRY + self._rng.randrange(REPL_JITTER),
        }
        for peer in sorted(waiting):
            self._send_repl(peer, message["req"], key, value, version, now)

    def _send_repl(self, peer: str, req: int, key: str, value,
                   version: int, now: int) -> None:
        forward = {"kind": "repl", "req": req, "from": self.node_id,
                   "key": key, "value": value, "version": version}
        if self.fault_plan is not None:
            decision = self.fault_plan.draw("cluster.repl")
            if decision is not None and decision.kind == "lag":
                due = now + 1 + decision.rand_below(LAG_MAX_TICKS)
                self._lagged.append((due, self.members[peer], forward))
                return
        self._send_peer(peer, forward)

    def _on_repl(self, message: dict, client) -> None:
        self._apply(message["key"], message.get("value"),
                    message["version"])
        self._respond(client, {"kind": "repl-ack", "req": message["req"],
                               "from": self.node_id})

    def _on_repl_ack(self, message: dict, now: int) -> None:
        entry = self.pending.get(message["req"])
        if entry is None:
            return
        entry["waiting"].discard(message.get("from"))
        self._complete_ready_writes(now)

    def _complete_ready_writes(self, now: int) -> None:
        for req in sorted(self.pending):
            entry = self.pending[req]
            if entry["waiting"]:
                continue
            del self.pending[req]
            self._respond(entry["client"],
                          {"kind": "resp", "req": req, "ok": True,
                           "version": entry["version"]})

    def _retry_pending(self, now: int) -> None:
        for req in sorted(self.pending):
            entry = self.pending[req]
            if now < entry["retry_at"]:
                continue
            entry["retry_at"] = (now + REPL_RETRY
                                 + self._rng.randrange(REPL_JITTER))
            for peer in sorted(entry["waiting"]):
                self._send_repl(peer, req, entry["key"], entry["value"],
                                entry["version"], now)

    def _on_read(self, message: dict, client) -> None:
        if self._reject_not_serving(message, client):
            return
        key = message["key"]
        owners = self.ring.owners(key, self.rf)
        if owners[0] != self.node_id:
            self._redirect(message, client, owners[0])
            return
        stored = self._lookup(key)
        value, version = (stored if stored is not None else (None, 0))
        self._respond(client, {"kind": "resp", "req": message["req"],
                               "ok": True, "value": value,
                               "version": version})

    def _redirect(self, message: dict, client, leader: str) -> None:
        self._redirects.inc()
        self._respond(client, {
            "kind": "resp", "req": message["req"], "ok": False,
            "err": msg.ERR_NOT_PRIMARY,
            "leader": self.members.get(leader),
        })

    def _on_ring(self, message: dict, client) -> None:
        if self.state != "serving":
            return  # a cold membership view would mislead the gateway
        alive = [[peer, self.members[peer]]
                 for peer in sorted(self.members)
                 if self.peer_alive[peer]]
        self._respond(client, {"kind": "ring-resp", "req": message["req"],
                               "members": alive, "epoch": self.epoch})

    def _on_sync(self, message: dict, client) -> None:
        applied = 0
        for key, value, version in message.get("entries", []):
            if self._apply(key, value, version):
                applied += 1
        self._synced.inc(applied)
        self._respond(client, {"kind": "sync-ack", "req": message["req"],
                               "from": self.node_id, "applied": applied})

    # -- the rejoin protocol ------------------------------------------------

    def _on_join(self, message: dict, now: int) -> None:
        peer = message.get("from")
        if peer not in self.members or peer == self.node_id:
            return
        self.last_seen[peer] = now
        if self.state != "serving":
            return  # a recovering node cannot vouch for anything
        if self.peer_alive[peer]:
            self._membership_change(peer, alive=False, now=now)
        if peer not in self._recovering_peers:
            self._recovering_peers.add(peer)
            self._refresh_catchup()
        self._send_peer(peer, {"kind": "join-ack", "from": self.node_id,
                               "epoch": self.epoch})
        self._emit("cluster.join", now, peer=peer, epoch=self.epoch)

    def _on_join_ack(self, message: dict, now: int) -> None:
        if self.state != "recovering":
            return
        peer = message.get("from")
        if peer not in self.members or peer == self.node_id:
            return
        self.last_seen[peer] = now
        # the epoch catch-up half of the handshake
        self.epoch = max(self.epoch, message.get("epoch", 0))
        self._join_acked.add(peer)
        if not self.peer_alive[peer]:
            self._membership_change(peer, alive=True, now=now)

    def _on_pull(self, message: dict, now: int) -> None:
        peer = message.get("from")
        if peer not in self.members or peer == self.node_id:
            return
        self.last_seen[peer] = now
        if self.state != "serving":
            return
        if self.peer_alive[peer]:
            self._membership_change(peer, alive=False, now=now)
        if peer not in self._recovering_peers:
            self._recovering_peers.add(peer)
            self._refresh_catchup()
        queued = self._queue_catchup(peer)
        # the end-of-transfer marker rides the same FIFO, so it reaches
        # the rejoiner only after every entry queued above
        self._catchup_queue.append((peer, None, message.get("req", 0), 0))
        self._emit("cluster.pull", now, peer=peer, entries=queued,
                   epoch=self.epoch)

    def _on_pull_done(self, message: dict) -> None:
        if self.state != "recovering":
            return
        peer = message.get("from")
        if peer is not None and message.get("req") == self._pull_reqs.get(peer):
            self._pull_done_from.add(peer)

    def _recover_tick(self, now: int) -> None:
        others = [p for p in sorted(self.members) if p != self.node_id]
        if self._recover_phase == "join":
            if now - self._last_join >= JOIN_RETRY:
                self._last_join = now
                for peer in others:
                    if peer not in self._join_acked:
                        self._send_peer(peer, {"kind": "join",
                                               "from": self.node_id,
                                               "epoch": self.epoch})
            waited = now - self._recover_started
            complete = all(peer in self._join_acked for peer in others)
            if complete or (waited >= JOIN_WINDOW and self._join_acked) \
                    or waited >= 2 * JOIN_WINDOW:
                # nobody answered after two windows: sole survivor —
                # serve the replayed state rather than wait forever
                self._pull_targets = set(self._join_acked)
                self._recover_phase = "pull"
                if not self._pull_targets:
                    self._finish_recovery(now)
                    return
                for peer in sorted(self._pull_targets):
                    self._send_pull(peer, now)
            return
        for peer in sorted(self._pull_targets - self._pull_done_from):
            if now - self.last_seen[peer] > HB_TIMEOUT:
                self._pull_targets.discard(peer)   # died mid-transfer
            elif now - self._pull_sent[peer] >= PULL_RETRY:
                self._send_pull(peer, now)
        if self._pull_targets <= self._pull_done_from:
            self._finish_recovery(now)

    def _send_pull(self, peer: str, now: int) -> None:
        req = self._next_req
        self._next_req += 1
        self._pull_reqs[peer] = req
        self._pull_sent[peer] = now
        self._send_peer(peer, {"kind": "pull", "req": req,
                               "from": self.node_id, "epoch": self.epoch})

    def _finish_recovery(self, now: int) -> None:
        self.state = "serving"
        self.recovered_at = now
        self.epoch += 1
        self._recover_phase = None
        self._hb_due = now  # announce "serving" on the very next tick
        self._emit("cluster.recovered", now, epoch=self.epoch,
                   keys=self.recovered_keys,
                   replayed=self.replayed_records,
                   fsck_issues=len(self.fsck_issues),
                   ticks=now - self._recover_started)
        self._schedule_sync(now)

    # -- membership, failover, re-replication -------------------------------

    def _membership_change(self, peer: str, alive: bool, now: int) -> None:
        self.peer_alive[peer] = alive
        self.epoch += 1
        if alive:
            self.last_seen[peer] = now
            if peer not in self.ring:
                self.ring.add_node(peer)
        elif peer in self.ring:
            self.ring.remove_node(peer)
        self._emit("cluster.member", now, peer=peer,
                   state="alive" if alive else "dead", epoch=self.epoch)
        if not alive:
            self._failovers.inc()
            self._emit("cluster.failover", now, dead=peer,
                       epoch=self.epoch)
            # a dead replica can never ack: release writes it was gating
            for entry in self.pending.values():
                entry["waiting"].discard(peer)
            self._complete_ready_writes(now)
        self._refresh_catchup()
        if self.state == "serving":
            self._schedule_sync(now)
            for other in sorted(self._recovering_peers):
                self._queue_catchup(other)

    def _refresh_catchup(self) -> None:
        """Rebuild each recovering peer's target ring: the live members
        plus that peer — the ring everyone converges to when it serves."""
        alive = {p for p in sorted(self.members) if self.peer_alive[p]}
        for peer in sorted(self._recovering_peers):
            self._catchup_rings[peer] = HashRing(
                sorted(alive | {peer}), vnodes=self.ring.vnodes)

    def _queue_catchup(self, peer: str) -> int:
        """Queue every entry `peer` will own once it serves, taken from
        the keys this node is currently primary for (each live node is
        pulled, so together the primaries cover the whole ring)."""
        ring2 = self._catchup_rings[peer]
        data = self.local_data()
        queued = 0
        for key in sorted(data):
            owners = self.ring.owners(key, self.rf)
            if not owners or owners[0] != self.node_id:
                continue
            if peer not in ring2.owners(key, self.rf):
                continue
            value, version = data[key]
            self._catchup_queue.append((peer, key, value, version))
            queued += 1
        return queued

    def _stream_to_recovering(self, key: str, value, version: int) -> None:
        """Forward a freshly applied primary write to any recovering
        peer that will own it — closing the gap between its pull and
        the moment it starts serving (read-your-writes across rejoin)."""
        for peer in sorted(self._recovering_peers):
            ring2 = self._catchup_rings.get(peer)
            if ring2 is not None and peer in ring2.owners(key, self.rf):
                self._send_peer(peer, {"kind": "sync", "req": 0,
                                       "from": self.node_id,
                                       "entries": [[key, value, version]]})

    def _schedule_sync(self, now: int) -> None:
        """Queue version-guarded pushes of every key this node is now
        primary for, to the group members that may lack it."""
        self._sync_queue.clear()
        queued = 0
        data = self.local_data()
        for key in sorted(data):
            owners = self.ring.owners(key, self.rf)
            if not owners or owners[0] != self.node_id:
                continue
            value, version = data[key]
            for peer in owners[1:]:
                if self.peer_alive[peer]:
                    self._sync_queue.append((peer, key, value, version))
                    queued += 1
        if queued:
            self._emit("cluster.sync", now, entries=queued,
                       epoch=self.epoch)

    def _drain_queues(self, now: int) -> None:
        """Send up to SYNC_BATCH queued entries, catch-up stream first
        (a rejoiner's time-to-serving is the recovery metric)."""
        budget = SYNC_BATCH
        batches: dict[str, list] = {}
        markers: list[tuple[str, int]] = []
        while budget and self._catchup_queue:
            peer, key, value, version = self._catchup_queue.popleft()
            if key is None:
                markers.append((peer, value))  # (peer, pull req id)
                continue
            batches.setdefault(peer, []).append([key, value, version])
            budget -= 1
        while budget and self._sync_queue:
            peer, key, value, version = self._sync_queue.popleft()
            batches.setdefault(peer, []).append([key, value, version])
            budget -= 1
        for peer in sorted(batches):
            if self.peer_alive[peer] or peer in self._recovering_peers:
                self._send_peer(peer, {"kind": "sync", "req": 0,
                                       "from": self.node_id,
                                       "entries": batches[peer]})
        for peer, req in markers:
            if peer in self._recovering_peers:
                self._send_peer(peer, {"kind": "pull-done", "req": req,
                                       "from": self.node_id})
