"""Consistent-hash ring with virtual nodes and deterministic placement.

:mod:`repro.nr.shard` partitions a key space over NR instances *inside*
one machine; this ring extends the same idea to machines.  Each node
owns `vnodes` tokens on a 64-bit ring, placed by hashing
``"<node>#<vnode>"`` with BLAKE2b — a keyed, process-independent hash,
so placement never depends on ``PYTHONHASHSEED`` and two processes (a
server and a client library) always agree on who owns a key.

Replica groups are the first `n` *distinct* nodes clockwise from the
key's point.  Because removing a node deletes only its own tokens, the
clockwise order of the survivors is preserved: the first surviving
replica of a dead primary becomes the new primary, which is exactly the
node guaranteed to hold every acknowledged write (see
:mod:`repro.cluster.node`).
"""

from __future__ import annotations

import bisect
import hashlib


def ring_hash(data: bytes | str) -> int:
    """64-bit position on the ring (BLAKE2b, deterministic everywhere)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big")


class HashRing:
    """Virtual-node consistent hashing over a set of node ids."""

    def __init__(self, nodes=(), vnodes: int = 64) -> None:
        if vnodes <= 0:
            raise ValueError("need at least one virtual node per node")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._tokens: list[tuple[int, str]] = []  # sorted (point, node)
        for node in nodes:
            self.add_node(node)

    # -- membership ---------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for i in range(self.vnodes):
            token = (ring_hash(f"{node}#{i}"), node)
            bisect.insort(self._tokens, token)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        self._tokens = [t for t in self._tokens if t[1] != node]

    # -- placement ----------------------------------------------------------

    def owners(self, key: str, n: int = 1) -> list[str]:
        """The first `n` distinct nodes clockwise from `key`'s point
        (primary first).  `n` is clamped to the ring population."""
        if not self._tokens:
            raise ValueError("ring is empty")
        n = min(n, len(self._nodes))
        point = ring_hash(key)
        start = bisect.bisect_right(self._tokens, (point, "￿"))
        owners: list[str] = []
        for offset in range(len(self._tokens)):
            node = self._tokens[(start + offset) % len(self._tokens)][1]
            if node not in owners:
                owners.append(node)
                if len(owners) == n:
                    break
        return owners

    def primary_for(self, key: str) -> str:
        return self.owners(key, 1)[0]

    # -- diagnostics --------------------------------------------------------

    def assignment_counts(self, keys) -> dict[str, int]:
        """How many of `keys` each node is primary for (balance checks)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.primary_for(key)] += 1
        return counts
