"""repro.cluster — a sharded, replicated KV service over the verified OS.

The paper's argument is that a verified kernel is a *foundation*, not a
destination: applications above it still have to get distribution right.
This package builds that application layer end to end — consistent-hash
placement (:mod:`repro.cluster.ring`), primary-forwarded synchronous
replication with failover (:mod:`repro.cluster.node`), a durable
write-ahead log on each node's own verified filesystem
(:mod:`repro.cluster.wal`), a client gateway that checks session
guarantees and backs off with seeded jitter
(:mod:`repro.cluster.client`), a deterministic multi-kernel deployment
with crash-*restart* (:mod:`repro.cluster.deploy`), and an open-loop
million-client workload harness (:mod:`repro.cluster.workload`) —
entirely on the repo's verified kernel, disk, NIC, and UDP stack.
"""

from repro.cluster.client import AUDIT_CLIENT, ClientGateway
from repro.cluster.deploy import Deployment
from repro.cluster.harness import (
    default_profile,
    recovery_bench,
    run_cluster,
    scaling_bench,
)
from repro.cluster.node import ClusterNode
from repro.cluster.ring import HashRing, ring_hash
from repro.cluster.wal import NodeWal, WalRecovery
from repro.cluster.workload import (
    WorkloadProfile,
    WorkloadReport,
    ZipfSampler,
    run_workload,
)

__all__ = [
    "AUDIT_CLIENT",
    "ClientGateway",
    "ClusterNode",
    "Deployment",
    "HashRing",
    "NodeWal",
    "WalRecovery",
    "WorkloadProfile",
    "WorkloadReport",
    "ZipfSampler",
    "default_profile",
    "recovery_bench",
    "ring_hash",
    "run_cluster",
    "run_workload",
    "scaling_bench",
]
