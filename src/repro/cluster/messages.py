"""The cluster wire protocol: canonical JSON over UDP datagrams.

One message is one datagram.  Encoding is canonical (sorted keys, no
whitespace) so identical messages are identical bytes and a traced run
is byte-reproducible.  The protocol is deliberately small:

client → node
    ``put`` / ``get`` / ``del`` — one KV operation, tagged with the
    issuing (simulated) client id and a gateway-unique request id;
    ``ring`` — ask for the responder's current membership view.

node → client
    ``resp`` — the outcome: ``ok`` with value/version, or an error with
    an optional ``leader`` redirect hint; ``ring-resp`` — alive members
    plus the responder's membership epoch.

node → node
    ``hb`` — failure-detector heartbeat (now carrying the sender's
    ``state``: serving or recovering); ``repl`` / ``repl-ack`` — the
    primary forwarding one write to a replica and the replica's
    acknowledgement; ``sync`` / ``sync-ack`` — version-guarded bulk
    catch-up after a membership change (re-replication); ``join`` /
    ``join-ack`` — a restarted node's epoch-catch-up handshake;
    ``pull`` / ``pull-done`` — the rejoiner asking each live peer for
    the entries it will own, and the peer's end-of-transfer marker.
"""

from __future__ import annotations

import json

#: Message kinds a node accepts from clients.
CLIENT_KINDS = ("put", "get", "del", "ring")
#: Message kinds exchanged between nodes.
PEER_KINDS = ("hb", "repl", "repl-ack", "sync", "sync-ack",
              "join", "join-ack", "pull", "pull-done")
#: Message kinds a client accepts from nodes.
REPLY_KINDS = ("resp", "ring-resp")

ALL_KINDS = CLIENT_KINDS + PEER_KINDS + REPLY_KINDS

#: Errors a ``resp`` may carry.
ERR_NOT_PRIMARY = "not-primary"
ERR_NO_KEY = "no-key"
#: Typed *retryable* errors: the request was refused, not lost — the
#: gateway backs off (exponentially, with seeded jitter) and retries.
ERR_DEGRADED = "degraded"      # primary cannot reach its full group
ERR_RECOVERING = "recovering"  # node is replaying/rejoining, not serving
RETRYABLE_ERRS = (ERR_DEGRADED, ERR_RECOVERING)


class ClusterMsgError(Exception):
    """A datagram that is not a well-formed cluster message."""


def encode(msg: dict) -> bytes:
    """Canonical bytes of one message (must carry a known ``kind``)."""
    kind = msg.get("kind")
    if kind not in ALL_KINDS:
        raise ClusterMsgError(f"unknown message kind {kind!r}")
    return json.dumps(msg, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def decode(data: bytes) -> dict:
    """Parse one datagram; raises :class:`ClusterMsgError` on garbage."""
    try:
        msg = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ClusterMsgError(f"not a cluster message: {exc}") from exc
    if not isinstance(msg, dict):
        raise ClusterMsgError(f"message is {type(msg).__name__}, not object")
    if msg.get("kind") not in ALL_KINDS:
        raise ClusterMsgError(f"unknown message kind {msg.get('kind')!r}")
    return msg
