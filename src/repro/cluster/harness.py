"""Entry points the CLI, benchmark, and fault campaign share.

``run_cluster`` is one seeded deployment + workload (+ optional
mid-workload node kill and restart); ``scaling_bench`` runs the same
profile at several node counts, ``recovery_bench`` measures a
kill+restart run (WAL replay, rejoin, and the time to restore every
acknowledged write to full replication factor), and together they shape
the ``BENCH_cluster.json`` payload that
``benchmarks/check_bench_json.py`` validates against the committed
baseline.
"""

from __future__ import annotations

import os

from repro.cluster.deploy import Deployment
from repro.cluster.workload import WorkloadProfile, WorkloadReport, run_workload
from repro.obs.registry import Registry

#: Node counts the scaling benchmark reports (1 node runs rf=1 — a
#: single copy is the only option — so the contrast with 3-node rf=2
#: includes the replication forward on every write).
SCALE_NODE_COUNTS = (1, 3)


def quick_mode() -> bool:
    """Honour the repo-wide reduced-population knob."""
    return bool(os.environ.get("REPRO_BENCH_QUICK"))


def default_profile(ops: int | None = None, seed: int = 1,
                    rate: float | None = None) -> WorkloadProfile:
    quick = quick_mode()
    return WorkloadProfile(
        ops=ops if ops is not None else (600 if quick else 2_000),
        rate=rate if rate is not None else 2_000_000.0,
        seed=seed,
    )


def run_cluster(num_nodes: int = 3, rf: int = 2, vnodes: int = 64,
                capacity: int = 4, seed: int = 1,
                profile: WorkloadProfile | None = None,
                kill_at_op: int | None = None,
                kill_node: str | None = None,
                restart_at_op: int | None = None,
                fault_plan=None,
                registry: Registry | None = None,
                ) -> tuple[Deployment, WorkloadReport]:
    """One deployment, one workload; returns both for inspection."""
    registry = registry if registry is not None else Registry()
    profile = profile if profile is not None else default_profile(seed=seed)
    deployment = Deployment(num_nodes, rf=rf, vnodes=vnodes,
                            capacity=capacity, fault_plan=fault_plan,
                            registry=registry, seed=seed)
    report = run_workload(deployment, profile, kill_at_op=kill_at_op,
                          kill_node=kill_node, restart_at_op=restart_at_op)
    return deployment, report


def _series_entry(report: WorkloadReport) -> dict:
    entry = {
        "nodes": report.num_nodes,
        "rf": report.rf,
        "issued": report.issued,
        "acked": report.acked,
        "failed": report.failed,
        "undrained": report.undrained,
        "retries": report.retries,
        "redirects": report.redirects,
        "lost_acked_writes": len(report.lost_acked_writes),
        "ryw_violations": len(report.ryw_violations),
        "sim_ns": report.sim_ns,
        "throughput_ops_per_s": report.throughput_ops_per_s,
    }
    for op in sorted(report.latency):
        snap = report.latency[op]
        entry[op] = {"count": snap["count"], "p50_ns": snap["p50"],
                     "p99_ns": snap["p99"], "max_ns": snap["max"]}
    return entry


def _rf_restore_hook(state: dict):
    """A deployment step hook that samples (every 20 ticks, after the
    restart) whether every acknowledged write is held — at or beyond
    its acknowledged version — by all `rf` of its owners in the ring of
    currently *serving* nodes.  The first tick where that holds is the
    moment the cluster is back at full replication factor."""
    from repro.cluster.ring import HashRing

    def hook(dep) -> None:
        if dep.now % 20 or dep.restarts.value == 0:
            return
        if state.get("restored_at") is not None:
            return
        serving = dep.serving_nodes
        if len(serving) < len(dep.nodes):
            return
        ring = HashRing(serving, vnodes=dep._vnodes)
        for key, (version, _value) in dep.gateway.acked_writes.items():
            for owner in ring.owners(key, dep.rf):
                stored = dep.nodes[owner]._lookup(key)
                if stored is None or stored[1] < version:
                    return
        state["restored_at"] = dep.now

    return hook


def recovery_bench(seed: int = 1, ops: int | None = None,
                   rate: float | None = None) -> dict:
    """The recovery entry of BENCH_cluster.json: a 3-node rf=2 run that
    kills node1 a quarter of the way in, restarts it from its disk image
    at the half-way mark, and measures WAL replay, time-to-serving, and
    time-to-restore-RF — with the same zero-loss / zero-RYW invariants
    as every other run."""
    quick = quick_mode()
    if ops is None:
        ops = 600 if quick else 2_000
    if rate is None:
        rate = 2_000_000.0
    kill_at = ops // 4
    restart_at = ops // 2
    registry = Registry()
    profile = WorkloadProfile(ops=ops, rate=rate, seed=seed)
    deployment = Deployment(3, rf=2, registry=registry, seed=seed)
    state: dict = {"restored_at": None}
    deployment.step_hooks.append(_rf_restore_hook(state))
    report = run_workload(deployment, profile, kill_at_op=kill_at,
                          kill_node="node1", restart_at_op=restart_at)
    rec = report.recovery[0] if report.recovery else {}
    restart_tick = rec.get("restarted_at")
    restored_at = state["restored_at"]
    return {
        "nodes": 3,
        "rf": 2,
        "ops": ops,
        "kill_at_op": kill_at,
        "restart_at_op": restart_at,
        "acked": report.acked,
        "gaveup": report.gaveup,
        "undrained": report.undrained,
        "lost_acked_writes": len(report.lost_acked_writes),
        "ryw_violations": len(report.ryw_violations),
        "fsck_issues": rec.get("fsck_issues", -1),
        "replayed_records": rec.get("replayed_records", -1),
        "recovered_keys": rec.get("recovered_keys", -1),
        "serving": bool(rec.get("serving")),
        "recovery_ticks": rec.get("recovery_ticks", -1),
        "rf_restore_ticks": (restored_at - restart_tick
                             if restored_at is not None
                             and restart_tick is not None else -1),
    }


def scaling_bench(node_counts=SCALE_NODE_COUNTS, seed: int = 1,
                  ops: int | None = None,
                  rate: float | None = None) -> dict:
    """The BENCH_cluster.json payload: one series entry per node count,
    same seeded open-loop profile, rate chosen above a single node's
    service capacity so the 1-node p99 shows the queueing the extra
    nodes exist to absorb."""
    quick = quick_mode()
    if ops is None:
        ops = 900 if quick else 3_000
    if rate is None:
        rate = 5_000_000.0
    series = {}
    for count in node_counts:
        profile = WorkloadProfile(ops=ops, rate=rate, seed=seed)
        _, report = run_cluster(
            num_nodes=count, rf=min(2, count), seed=seed, profile=profile)
        series[str(count)] = _series_entry(report)
    return {
        "quick": quick,
        "seed": seed,
        "profile": {
            "ops": ops, "rate_ops_per_s": rate,
            "zipf_theta": WorkloadProfile().zipf_theta,
            "num_clients": WorkloadProfile().num_clients,
            "num_keys": WorkloadProfile().num_keys,
        },
        "series": series,
        "recovery": recovery_bench(seed=seed),
    }
