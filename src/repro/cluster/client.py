"""The client gateway: millions of simulated clients over one stack.

An open-loop workload with a million distinct clients cannot afford a
kernel per client; instead one gateway machine multiplexes the whole
client population over a single UDP socket, the way a load-balancer
tier fronts a storage service.  Each request carries its simulated
``client`` id; the gateway keeps the per-client session bookkeeping
needed to *check* the service's guarantees:

* **read-your-writes** — for every acknowledged write it records
  ``(client, key) -> version``; a later read by the same client must
  return at least that version;
* **acknowledged-write durability** — for every acknowledged write it
  records ``key -> (version, value)``; the post-workload audit re-reads
  every such key and any version regression is an acknowledged-write
  loss (the invariant the fault campaign kills nodes to attack).

Routing uses the gateway's own :class:`~repro.cluster.ring.HashRing`
view, updated from ``not-primary`` redirects and explicit membership
queries after timeouts — the gateway is *not* on the failure-detection
path, it discovers failovers the way real clients do.

Retries back off exponentially with seeded jitter (doubling from
:data:`CLIENT_TIMEOUT` up to :data:`BACKOFF_CAP`), both for silent
timeouts and for the typed *retryable* refusals a degraded or
recovering node sends.  A request that exhausts :data:`MAX_ATTEMPTS`
does not vanish: it is recorded as a typed give-up (op, key, client,
last error) and counted, so the workload report can distinguish "the
service refused and the client gave up" from "the service lied".
"""

from __future__ import annotations

import random

from repro import obs
from repro.cluster import messages as msg
from repro.cluster.node import SERVICE_PORT, TICK_NS
from repro.cluster.ring import HashRing

#: UDP port the gateway issues from.
GATEWAY_PORT = 7001
#: Ticks before an outstanding request's first retry.
CLIENT_TIMEOUT = 1_200
#: Ceiling of the exponential backoff (doubling starts at
#: CLIENT_TIMEOUT, so retries space out 1x, 2x, 4x, then stay at 4x).
BACKOFF_CAP = 4 * CLIENT_TIMEOUT
#: Seeded jitter added to every backoff (desynchronizes retry storms).
BACKOFF_JITTER = 97
#: Attempts (first send + retries/redirects) before a request gives up.
MAX_ATTEMPTS = 12
#: The reserved client id of the post-workload durability audit.
AUDIT_CLIENT = -1


class ClientGateway:
    """Issues client ops, tracks completions, checks session guarantees."""

    def __init__(self, kernel, members: dict[str, int], vnodes: int = 64,
                 registry=None, seed: int = 1) -> None:
        if kernel.net is None:
            raise ValueError("gateway kernel has no network")
        self.kernel = kernel
        self.stack = kernel.net
        self.sock = self.stack.udp_bind(GATEWAY_PORT)
        self.member_ips = dict(members)
        self.ring = HashRing(sorted(members), vnodes=vnodes)
        self.registry = registry if registry is not None else obs.registry()
        self._rng = random.Random(f"cluster/{seed}/gateway")

        self._next_req = 1
        self._refresh_rotor = 0
        self._ring_reqs: set[int] = set()
        self.outstanding: dict[int, dict] = {}

        self.latency = {op: self.registry.histogram("cluster.latency_ns",
                                                    op=op)
                        for op in ("put", "get", "del")}
        self.acked = self.registry.counter("cluster.acked")
        self.failed = self.registry.counter("cluster.failed")
        self.redirects = self.registry.counter("cluster.client_redirects")
        self.retries = self.registry.counter("cluster.client_retries")
        self.giveups = self.registry.counter("cluster.client_giveup")

        #: (client, key) -> highest acknowledged version (read-your-writes).
        self.sessions: dict[tuple[int, str], int] = {}
        #: key -> (version, value) of the newest acknowledged write.
        self.acked_writes: dict[str, tuple[int, object]] = {}
        #: audit read results: key -> (value, version).
        self.audit_results: dict[str, tuple[object, int]] = {}
        self.ryw_violations: list[str] = []
        #: typed records of requests that exhausted MAX_ATTEMPTS.
        self.gaveup: list[dict] = []

    # -- issuing ------------------------------------------------------------

    def issue(self, op: str, key: str, value, client_id: int,
              now: int) -> int:
        """Send one op toward the believed primary; returns the req id."""
        req = self._next_req
        self._next_req += 1
        target = self.ring.primary_for(key)
        self.outstanding[req] = {
            "op": op, "key": key, "value": value, "client": client_id,
            "issued": now, "attempts": 1,
            "retry_at": now + self._backoff(1),
        }
        self._send_op(req, self.member_ips[target])
        return req

    def _backoff(self, attempts: int) -> int:
        """Exponential backoff with seeded jitter for the next retry."""
        base = min(CLIENT_TIMEOUT * (2 ** (attempts - 1)), BACKOFF_CAP)
        return base + self._rng.randrange(BACKOFF_JITTER)

    def _send_op(self, req: int, target_ip: int) -> None:
        entry = self.outstanding[req]
        message = {"kind": entry["op"], "req": req, "key": entry["key"],
                   "client": entry["client"]}
        if entry["op"] == "put":
            message["value"] = entry["value"]
        self.stack.udp_send(GATEWAY_PORT, target_ip, SERVICE_PORT,
                            msg.encode(message))

    # -- the per-tick loop --------------------------------------------------

    def on_tick(self, now: int) -> None:
        queue = self.sock.recv_queue
        while queue:
            _, _, payload = queue.popleft()
            try:
                message = msg.decode(payload)
            except msg.ClusterMsgError:
                continue
            if message["kind"] == "resp":
                self._on_resp(message, now)
            elif message["kind"] == "ring-resp":
                self._on_ring_resp(message)
        self._retry_timeouts(now)

    def _on_resp(self, message: dict, now: int) -> None:
        entry = self.outstanding.get(message.get("req"))
        if entry is None:
            return  # duplicate / late response for a settled request
        req = message["req"]
        if message.get("ok"):
            del self.outstanding[req]
            self.acked.inc()
            self.latency[entry["op"]].record(
                (now - entry["issued"]) * TICK_NS)
            self._settle(entry, message)
            return
        err = message.get("err")
        if err == msg.ERR_NOT_PRIMARY:
            # a redirect is information, not congestion: follow it now
            self.redirects.inc()
            entry["attempts"] += 1
            if entry["attempts"] > MAX_ATTEMPTS:
                self._give_up(req, err, now)
                return
            entry["retry_at"] = now + self._backoff(entry["attempts"])
            leader_ip = message.get("leader")
            if leader_ip is None:
                leader_ip = self.member_ips[
                    self.ring.primary_for(entry["key"])]
            self._send_op(req, leader_ip)
            return
        if err in msg.RETRYABLE_ERRS:
            # a typed refusal (degraded / recovering): the service is
            # telling us to come back later — back off, don't hammer
            entry["attempts"] += 1
            if entry["attempts"] > MAX_ATTEMPTS:
                self._give_up(req, err, now)
                return
            entry["retry_at"] = now + self._backoff(entry["attempts"])
            return
        self._give_up(req, err if err is not None else "error", now)

    def _give_up(self, req: int, reason: str, now: int) -> None:
        """Surface an exhausted request as a typed failure record."""
        entry = self.outstanding.pop(req)
        self.failed.inc()
        self.giveups.inc()
        self.gaveup.append({
            "req": req, "op": entry["op"], "key": entry["key"],
            "client": entry["client"], "attempts": entry["attempts"],
            "reason": reason, "issued": entry["issued"], "gave_up": now,
        })

    def _settle(self, entry: dict, message: dict) -> None:
        """Session bookkeeping for one acknowledged op."""
        client, key, op = entry["client"], entry["key"], entry["op"]
        version = message.get("version", 0)
        if op in ("put", "del"):
            value = entry["value"] if op == "put" else None
            session = (client, key)
            if version > self.sessions.get(session, 0):
                self.sessions[session] = version
            if version > self.acked_writes.get(key, (0, None))[0]:
                self.acked_writes[key] = (version, value)
            return
        # reads: the audit records, real clients check read-your-writes
        if client == AUDIT_CLIENT:
            self.audit_results[key] = (message.get("value"), version)
            return
        floor = self.sessions.get((client, key))
        if floor is not None and version < floor:
            self.ryw_violations.append(
                f"client {client} read {key} at version {version} after "
                f"its own acknowledged write {floor}")

    def _on_ring_resp(self, message: dict) -> None:
        self._ring_reqs.discard(message.get("req"))
        members = {peer: ip for peer, ip in message.get("members", [])}
        if not members or members == self.member_ips:
            return
        self.member_ips = members
        self.ring = HashRing(sorted(members), vnodes=self.ring.vnodes)

    def _retry_timeouts(self, now: int) -> None:
        for req in sorted(self.outstanding):
            entry = self.outstanding[req]
            if now < entry["retry_at"]:
                continue
            entry["attempts"] += 1
            if entry["attempts"] > MAX_ATTEMPTS:
                self._give_up(req, "timeout", now)
                continue
            self.retries.inc()
            entry["retry_at"] = now + self._backoff(entry["attempts"])
            # a timeout means our routing may be stale: refresh the view
            # from a rotating member and retry at the believed primary
            self._request_ring(now)
            self._send_op(req, self.member_ips[
                self.ring.primary_for(entry["key"])])

    def _request_ring(self, now: int) -> None:
        members = sorted(self.member_ips)
        if not members:
            return
        target = members[self._refresh_rotor % len(members)]
        self._refresh_rotor += 1
        req = self._next_req
        self._next_req += 1
        self._ring_reqs.add(req)
        self.stack.udp_send(GATEWAY_PORT, self.member_ips[target],
                            SERVICE_PORT,
                            msg.encode({"kind": "ring", "req": req}))

    # -- the durability audit ----------------------------------------------

    def audit_keys(self) -> list[str]:
        return sorted(self.acked_writes)

    def audit_losses(self) -> list[str]:
        """Acknowledged writes the post-workload audit could not read
        back at (or beyond) their acknowledged version."""
        losses = []
        for key in self.audit_keys():
            version, value = self.acked_writes[key]
            got = self.audit_results.get(key)
            if got is None:
                losses.append(f"{key}: audit read never completed")
            elif got[1] < version:
                losses.append(f"{key}: acked version {version} but audit "
                              f"read version {got[1]}")
            elif got[1] == version and got[0] != value:
                losses.append(f"{key}: version {version} value mismatch")
        return losses
