"""Per-node durable write-ahead log on the node's own verified FS.

Every applied write/delete of a cluster node appends one versioned,
checksummed record here *before* it lands in the in-memory NR
``KvStore`` — through the normal file API
(:class:`~repro.nros.fs.fd.FdTable` over :class:`~repro.nros.fs.fs
.FileSystem` over the block driver and simulated disk), so durability
rests on exactly the stack the PR 2 crash matrix hardened.

Layout (one generation live at a time, all files in the volume root)::

    /snap.<g>   committed snapshot: the full KV state when /wal.<g>
                started, ending in a checksummed commit marker
    /wal.<g>    appended records since that snapshot
    /snap.tmp   an in-progress compaction (invisible until renamed)

Compaction rotates generation ``g`` to ``g+1`` in crash-safe order:

1. write the current state into ``/snap.tmp`` and finish it with a
   commit marker carrying the record count;
2. create the empty ``/wal.<g+1>``;
3. ``rename("/snap.tmp", "/snap.<g+1>")`` — the **commit point**: a
   rename inside one directory is a single atomic slot write (the
   property the PR 2 matrix forced the directory format to have);
4. unlink ``/wal.<g>`` and ``/snap.<g>``.

A crash anywhere in that sequence leaves either generation ``g`` or
``g+1`` fully recoverable (plus at worst resource leaks fsck classes as
recoverable).  Recovery picks the newest snapshot whose commit marker
verifies, replays every surviving WAL generation at or above it in
ascending order (records are version-guarded and idempotent, so replay
order across duplicate keys cannot matter), ignores a torn tail — a
record half-written when power died was never acknowledged — and then
rewrites a single clean generation so stale files from the crash are
swept in one pass.

Record framing: ``MAGIC | payload-length (u32 LE) | blake2b-8 of the
payload | canonical-JSON payload`` where the payload is the triple
``[key, value, version]``; a deleted key is a tombstone (value null)
and the snapshot commit marker uses the reserved null key:
``[null, record_count, generation]``.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from hashlib import blake2b

from repro.nros.fs import fd as fdmod

#: Frame prefix of every record.
MAGIC = b"WALR"
#: Bytes of the blake2b digest guarding each payload.
CHECKSUM_BYTES = 8
#: MAGIC + u32 payload length + checksum.
HEADER_BYTES = len(MAGIC) + 4 + CHECKSUM_BYTES
#: Sanity cap on one record's payload (a datagram-sized KV entry).
MAX_PAYLOAD = 64 * 1024
#: Default appends per WAL generation before compaction rotates it.
COMPACT_EVERY = 256

#: The reserved key of a snapshot's commit marker.
_COMMIT_KEY = None


class WalCorrupt(Exception):
    """A WAL/snapshot file whose framing or checksum does not verify
    (recovery treats this as end-of-valid-data, not as fatal)."""


def _checksum(payload: bytes) -> bytes:
    return blake2b(payload, digest_size=CHECKSUM_BYTES).digest()


def encode_record(key, value, version: int) -> bytes:
    """One framed, checksummed record (key None = commit marker)."""
    payload = json.dumps([key, value, version], sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return (MAGIC + struct.pack("<I", len(payload))
            + _checksum(payload) + payload)


def decode_records(data: bytes) -> tuple[list[tuple], bool]:
    """Parse a record stream; returns ``(records, clean_tail)``.

    Stops at the first frame that fails to verify: a torn tail (power
    died mid-append) yields every record before it and ``False``."""
    records: list[tuple] = []
    offset = 0
    while offset < len(data):
        header = data[offset:offset + HEADER_BYTES]
        if len(header) < HEADER_BYTES or header[:len(MAGIC)] != MAGIC:
            return records, False
        (length,) = struct.unpack_from("<I", header, len(MAGIC))
        if length > MAX_PAYLOAD:
            return records, False
        payload = data[offset + HEADER_BYTES:offset + HEADER_BYTES + length]
        if len(payload) < length:
            return records, False
        if _checksum(payload) != header[len(MAGIC) + 4:HEADER_BYTES]:
            return records, False
        try:
            triple = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return records, False
        if not isinstance(triple, list) or len(triple) != 3:
            return records, False
        records.append(tuple(triple))
        offset += HEADER_BYTES + length
    return records, True


@dataclass
class WalRecovery:
    """What one restart found on the platter."""

    snapshot_gen: int | None = None
    entries: dict = field(default_factory=dict)  # key -> (value, version)
    replayed_records: int = 0
    torn_tails: int = 0
    cleaned_files: list[str] = field(default_factory=list)


class NodeWal:
    """The durable log of one node's shard, plus its compaction."""

    def __init__(self, fdtable: fdmod.FdTable, gen: int, wal_fd: int,
                 compact_every: int = COMPACT_EVERY) -> None:
        self.fdtable = fdtable
        self.gen = gen
        self.compact_every = compact_every
        self._wal_fd = wal_fd
        self.appended = 0        # records in the live WAL generation
        self.total_appends = 0
        self.compactions = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def open(cls, fdtable: fdmod.FdTable,
             compact_every: int = COMPACT_EVERY
             ) -> tuple["NodeWal", WalRecovery]:
        """Mount-time entry point: recover whatever generations survived
        (none, on a fresh volume), then leave exactly one clean
        ``(snap, wal)`` generation pair on disk."""
        fs = fdtable.fs
        snaps, wals, stray = cls._scan(fs)
        recovery = WalRecovery()
        if not snaps and not wals and not stray:
            wal = cls(fdtable, gen=0,
                      wal_fd=cls._create(fdtable, "/wal.0"),
                      compact_every=compact_every)
            return wal, recovery

        # newest snapshot whose commit marker verifies wins
        for gen in sorted(snaps, reverse=True):
            entries = cls._read_snapshot(fdtable, gen)
            if entries is not None:
                recovery.snapshot_gen = gen
                recovery.entries = entries
                break
        base = recovery.snapshot_gen if recovery.snapshot_gen is not None \
            else 0
        for gen in sorted(g for g in wals if g >= base):
            records, clean = cls._read_records(fdtable, f"/wal.{gen}")
            if not clean:
                recovery.torn_tails += 1
            for key, value, version in records:
                if key is _COMMIT_KEY:
                    continue
                current = recovery.entries.get(key)
                if current is None or current[1] < version:
                    recovery.entries[key] = (value, version)
                recovery.replayed_records += 1

        # sweep crash leftovers first (an interrupted compaction's
        # /snap.tmp), then rewrite one clean generation above everything
        for name in stray:
            fs.unlink(name)
            recovery.cleaned_files.append(name)
        new_gen = max(list(snaps) + list(wals) + [0]) + 1
        wal = cls(fdtable, gen=new_gen, wal_fd=-1,
                  compact_every=compact_every)
        wal._write_snapshot("/snap.tmp", recovery.entries, new_gen)
        wal._wal_fd = cls._create(fdtable, f"/wal.{new_gen}")
        fs.rename("/snap.tmp", f"/snap.{new_gen}")
        for gen in sorted(wals):
            fs.unlink(f"/wal.{gen}")
            recovery.cleaned_files.append(f"/wal.{gen}")
        for gen in sorted(snaps):
            fs.unlink(f"/snap.{gen}")
            recovery.cleaned_files.append(f"/snap.{gen}")
        return wal, recovery

    @staticmethod
    def _scan(fs) -> tuple[set[int], set[int], list[str]]:
        """Generations (and strays like ``/snap.tmp``) on the volume."""
        snaps: set[int] = set()
        wals: set[int] = set()
        stray: list[str] = []
        for name in fs.readdir("/"):
            kind, _, suffix = name.partition(".")
            if kind == "snap" and suffix.isdigit():
                snaps.add(int(suffix))
            elif kind == "wal" and suffix.isdigit():
                wals.add(int(suffix))
            elif kind in ("snap", "wal"):
                stray.append(f"/{name}")
        return snaps, wals, stray

    @staticmethod
    def _create(fdtable: fdmod.FdTable, path: str) -> int:
        return fdtable.open(path, fdmod.O_CREAT | fdmod.O_WRONLY
                            | fdmod.O_APPEND)

    @classmethod
    def _read_records(cls, fdtable: fdmod.FdTable,
                      path: str) -> tuple[list[tuple], bool]:
        fd = fdtable.open(path, fdmod.O_RDONLY)
        try:
            chunks = []
            while True:
                chunk = fdtable.read(fd, 64 * 1024)
                if not chunk:
                    break
                chunks.append(chunk)
        finally:
            fdtable.close(fd)
        return decode_records(b"".join(chunks))

    @classmethod
    def _read_snapshot(cls, fdtable: fdmod.FdTable,
                       gen: int) -> dict | None:
        """The snapshot's entries, or None if its commit marker is
        missing/ wrong (a compaction that never reached its rename)."""
        records, clean = cls._read_records(fdtable, f"/snap.{gen}")
        if not clean or not records:
            return None
        marker = records[-1]
        if marker[0] is not _COMMIT_KEY or marker[1] != len(records) - 1:
            return None
        entries = {}
        for key, value, version in records[:-1]:
            if key is _COMMIT_KEY:
                return None
            entries[key] = (value, version)
        return entries

    # -- the hot path -------------------------------------------------------

    def append(self, key: str, value, version: int) -> None:
        """Durably log one write before it is applied; a
        :class:`~repro.hw.devices.disk.DiskCrash` escaping here means
        the record may be half on the platter — replay ignores it, and
        the write was never acknowledged."""
        self.fdtable.write(self._wal_fd, encode_record(key, value, version))
        self.appended += 1
        self.total_appends += 1

    def should_compact(self) -> bool:
        return self.appended >= self.compact_every

    def compact(self, state: dict) -> None:
        """Fold `state` (key -> (value, version)) into the next
        generation's snapshot; crash-safe per the module docstring."""
        old_gen, old_fd = self.gen, self._wal_fd
        new_gen = self.gen + 1
        self._write_snapshot("/snap.tmp", state, new_gen)
        new_fd = self._create(self.fdtable, f"/wal.{new_gen}")
        self.fdtable.fs.rename("/snap.tmp", f"/snap.{new_gen}")
        # the rename committed generation new_gen; everything below is
        # cleanup a crash may skip and the next recovery will redo
        self.gen, self._wal_fd, self.appended = new_gen, new_fd, 0
        self.compactions += 1
        self.fdtable.close(old_fd)
        self.fdtable.fs.unlink(f"/wal.{old_gen}")
        if self.fdtable.fs.exists(f"/snap.{old_gen}"):
            self.fdtable.fs.unlink(f"/snap.{old_gen}")

    def _write_snapshot(self, path: str, state: dict, gen: int) -> None:
        if self.fdtable.fs.exists(path):
            self.fdtable.fs.unlink(path)  # a stray from a crashed run
        fd = self.fdtable.open(path, fdmod.O_CREAT | fdmod.O_WRONLY)
        try:
            count = 0
            for key in sorted(state):
                value, version = state[key]
                self.fdtable.write(fd, encode_record(key, value, version))
                count += 1
            self.fdtable.write(fd, encode_record(_COMMIT_KEY, count, gen))
        finally:
            self.fdtable.close(fd)

    # -- introspection ------------------------------------------------------

    def files(self) -> list[str]:
        """The WAL-owned files currently on the volume (for tests)."""
        return sorted(f"/{name}" for name in self.fdtable.fs.readdir("/")
                      if name.partition(".")[0] in ("snap", "wal"))
