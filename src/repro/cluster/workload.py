"""The open-loop, Zipfian, million-client workload harness.

Open loop means arrivals come from a seeded Poisson process at a
configured rate and are issued whether or not earlier requests have
completed — the discipline that exposes queueing: when offered load
nears a node's service capacity the p99 latency diverges from the p50,
which is exactly the effect ``BENCH_cluster.json`` reports for 1 vs 3
nodes.

Key popularity is Zipfian (cumulative-weight inversion, seeded), the
client id of each op is drawn uniformly from a population of millions —
clients are virtual, multiplexed over the gateway, but every one gets
its own read-your-writes session check.  Time is simulated throughout:
latencies are integer nanoseconds of virtual time, so a run's entire
latency distribution is deterministic under its seed.

After the arrival phase drains, the harness audits durability: every
acknowledged write is read back and any version regression is counted
as an acknowledged-write loss (the acceptance invariant for the
node-kill scenario).
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field

from repro.cluster.client import AUDIT_CLIENT
from repro.cluster.deploy import Deployment
from repro.cluster.node import TICK_NS


class ZipfSampler:
    """Zipf(theta) over ranks 0..n-1 by cumulative-weight inversion."""

    def __init__(self, n: int, theta: float, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError("need at least one key")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self._rng = rng
        weights = [1.0 / (rank + 1) ** theta for rank in range(n)]
        self._cumulative = []
        total = 0.0
        for weight in weights:
            total += weight
            self._cumulative.append(total)
        self._total = total

    def sample(self) -> int:
        point = self._rng.random() * self._total
        return bisect.bisect_left(self._cumulative, point)


@dataclass(frozen=True)
class WorkloadProfile:
    """One workload configuration (everything the seed doesn't cover)."""

    ops: int = 2_000
    rate: float = 2_000_000.0      # open-loop arrival rate, ops/s (sim)
    num_clients: int = 1_000_000   # virtual client population
    num_keys: int = 512
    zipf_theta: float = 0.99
    put_fraction: float = 0.45
    del_fraction: float = 0.05
    value_bytes: int = 32
    seed: int = 1
    drain_ticks: int = 120_000     # budget to settle after arrivals stop


@dataclass
class WorkloadReport:
    """Everything a run proved and measured."""

    profile: WorkloadProfile
    num_nodes: int
    rf: int
    issued: int = 0
    acked: int = 0
    failed: int = 0
    undrained: int = 0
    redirects: int = 0
    retries: int = 0
    kills: int = 0
    restarts: int = 0
    gaveup: int = 0
    sim_ns: int = 0
    latency: dict = field(default_factory=dict)  # op -> snapshot dict
    ryw_violations: list = field(default_factory=list)
    lost_acked_writes: list = field(default_factory=list)
    gaveup_ops: list = field(default_factory=list)  # typed give-up records
    recovery: list = field(default_factory=list)    # per-restart facts
    audited_keys: int = 0

    @property
    def ok(self) -> bool:
        return (not self.ryw_violations and not self.lost_acked_writes
                and self.undrained == 0)

    @property
    def throughput_ops_per_s(self) -> float:
        if self.sim_ns <= 0:
            return 0.0
        return self.acked / (self.sim_ns / 1e9)

    def summary_lines(self) -> list[str]:
        lines = [
            f"cluster workload: {self.num_nodes} nodes rf={self.rf} "
            f"seed={self.profile.seed}: {self.acked}/{self.issued} acked, "
            f"{self.failed} failed ({self.gaveup} gave up), "
            f"{self.undrained} undrained, "
            f"{self.kills} kills, {self.restarts} restarts",
            f"  throughput {self.throughput_ops_per_s:,.0f} ops/s over "
            f"{self.sim_ns / 1e6:.3f} ms simulated "
            f"({self.retries} retries, {self.redirects} redirects)",
        ]
        for op in sorted(self.latency):
            snap = self.latency[op]
            if snap["count"]:
                lines.append(
                    f"  {op:4s} n={snap['count']:>6} p50={snap['p50']:.0f}ns "
                    f"p99={snap['p99']:.0f}ns max={snap['max']:.0f}ns")
        lines.append(
            f"  audit: {self.audited_keys} acked keys re-read, "
            f"{len(self.lost_acked_writes)} lost, "
            f"{len(self.ryw_violations)} read-your-writes violations")
        for rec in self.recovery:
            ticks = rec.get("recovery_ticks")
            lines.append(
                f"  recovery: {rec['node']} restarted at t={rec['restarted_at']}, "
                f"fsck issues={rec['fsck_issues']}, "
                f"replayed {rec['replayed_records']} wal records, "
                f"{rec['recovered_keys']} keys, "
                + (f"serving after {ticks} ticks"
                   if ticks is not None else "NOT SERVING"))
        for record in self.gaveup_ops[:5]:
            lines.append(
                f"  GAVEUP: {record['op']} {record['key']} "
                f"(client {record['client']}, {record['attempts']} attempts, "
                f"last error: {record['reason']})")
        for problem in self.lost_acked_writes[:5]:
            lines.append(f"  LOST: {problem}")
        for problem in self.ryw_violations[:5]:
            lines.append(f"  RYW: {problem}")
        return lines


def run_workload(deployment: Deployment, profile: WorkloadProfile,
                 kill_at_op: int | None = None,
                 kill_node: str | None = None,
                 restart_at_op: int | None = None) -> WorkloadReport:
    """Drive one open-loop run (plus drain and audit) to completion.

    `kill_at_op` fail-stops `kill_node` at that arrival index;
    `restart_at_op` (a later index) boots its replacement from the dead
    disk's image mid-workload, so recovery contends with live traffic."""
    rng = random.Random(f"{profile.seed}/arrivals")
    zipf = ZipfSampler(profile.num_keys, profile.zipf_theta,
                       random.Random(f"{profile.seed}/zipf"))
    gateway = deployment.gateway
    start_tick = deployment.now

    issued = 0
    next_arrival_ns = 0.0
    deadline = None
    while True:
        now_ns = (deployment.now - start_tick) * TICK_NS
        while issued < profile.ops and next_arrival_ns <= now_ns:
            if kill_at_op is not None and issued == kill_at_op \
                    and kill_node is not None:
                deployment.kill(kill_node)
            if restart_at_op is not None and issued == restart_at_op \
                    and kill_node is not None \
                    and not deployment.nodes[kill_node].alive:
                deployment.restart(kill_node)
            key = f"k{zipf.sample()}"
            client = rng.randrange(profile.num_clients)
            which = rng.random()
            if which < profile.put_fraction:
                value = f"v{issued}".ljust(profile.value_bytes, ".")
                gateway.issue("put", key, value, client, deployment.now)
            elif which < profile.put_fraction + profile.del_fraction:
                gateway.issue("del", key, None, client, deployment.now)
            else:
                gateway.issue("get", key, None, client, deployment.now)
            issued += 1
            next_arrival_ns += rng.expovariate(profile.rate) * 1e9
        deployment.step()
        if issued >= profile.ops:
            if deadline is None:
                deadline = deployment.now + profile.drain_ticks
            if not gateway.outstanding or deployment.now >= deadline:
                break

    undrained = len(gateway.outstanding)
    gateway.outstanding.clear()
    arrivals_ns = (deployment.now - start_tick) * TICK_NS

    # measurements are taken before the audit so its reads (issued by
    # the reserved audit client) never pollute the workload's numbers
    report = WorkloadReport(
        profile=profile,
        num_nodes=len(deployment.nodes),
        rf=deployment.rf,
        issued=issued,
        acked=gateway.acked.value,
        failed=gateway.failed.value,
        undrained=undrained,
        redirects=gateway.redirects.value,
        retries=gateway.retries.value,
        kills=deployment.kills.value,
        restarts=deployment.restarts.value,
        gaveup=gateway.giveups.value,
        sim_ns=arrivals_ns,
        ryw_violations=list(gateway.ryw_violations),
        gaveup_ops=list(gateway.gaveup),
    )
    for op, hist in gateway.latency.items():
        report.latency[op] = hist.snapshot() if hist.count else {
            "count": 0, "p50": 0, "p99": 0, "max": 0, "mean": 0}

    # -- durability audit: read back every acknowledged write --------------
    audit_keys = gateway.audit_keys()
    for offset in range(0, len(audit_keys), 16):
        for key in audit_keys[offset:offset + 16]:
            gateway.issue("get", key, None, AUDIT_CLIENT, deployment.now)
        for _ in range(profile.drain_ticks):
            deployment.step()
            if not gateway.outstanding:
                break
    gateway.outstanding.clear()
    report.lost_acked_writes = gateway.audit_losses()
    report.audited_keys = len(audit_keys)
    report.recovery = deployment.recovery_info()
    return report
