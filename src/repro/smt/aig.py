"""And-inverter graph with structural hashing.

The bit-blaster lowers bitvector terms to AIG literals.  Structural hashing
plus constant propagation means that two syntactically different circuits
computing the same selection/permutation of bits collapse to the *same*
literal — which is what makes the page-table bit-manipulation lemmas cheap:
most discharge during construction, before the SAT solver ever runs.

Literal encoding: literal ``2*n`` is node ``n``, ``2*n + 1`` its complement.
Node 0 is the constant, so ``TRUE == 0`` and ``FALSE == 1``.
"""

from __future__ import annotations

TRUE = 0
FALSE = 1


def neg(lit: int) -> int:
    """Complement a literal."""
    return lit ^ 1


def node_of(lit: int) -> int:
    """The AIG node index a literal refers to."""
    return lit >> 1


def is_complement(lit: int) -> bool:
    return bool(lit & 1)


class Aig:
    """A mutable and-inverter graph.

    Node 0 is the constant TRUE node.  Input nodes have ``None`` as their
    definition; AND nodes store a pair of fan-in literals.
    """

    def __init__(self) -> None:
        # _defs[n] is None for inputs/constant, else (left_lit, right_lit).
        self._defs: list[tuple[int, int] | None] = [None]
        self._strash: dict[tuple[int, int], int] = {}
        self.input_names: dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._defs)

    @property
    def num_ands(self) -> int:
        return sum(1 for d in self._defs if d is not None)

    def new_input(self, name: str) -> int:
        """Create a fresh primary input; returns its positive literal."""
        index = len(self._defs)
        self._defs.append(None)
        self.input_names[index] = name
        return index << 1

    def definition(self, node: int) -> tuple[int, int] | None:
        return self._defs[node]

    def is_input(self, node: int) -> bool:
        return node != 0 and self._defs[node] is None

    # -- gate constructors ---------------------------------------------------

    def and_(self, a: int, b: int) -> int:
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE:
            return a
        if a == b:
            return a
        if a == neg(b):
            return FALSE
        if a > b:
            a, b = b, a
        key = (a, b)
        cached = self._strash.get(key)
        if cached is not None:
            return cached
        index = len(self._defs)
        self._defs.append((a, b))
        lit = index << 1
        self._strash[key] = lit
        return lit

    def or_(self, a: int, b: int) -> int:
        return neg(self.and_(neg(a), neg(b)))

    def xor_(self, a: int, b: int) -> int:
        # a ^ b == (a | b) & ~(a & b)
        return self.and_(self.or_(a, b), neg(self.and_(a, b)))

    def xnor_(self, a: int, b: int) -> int:
        return neg(self.xor_(a, b))

    def mux(self, sel: int, then: int, other: int) -> int:
        """sel ? then : other."""
        if then == other:
            return then
        if sel == TRUE:
            return then
        if sel == FALSE:
            return other
        return self.or_(self.and_(sel, then), self.and_(neg(sel), other))

    def implies_(self, a: int, b: int) -> int:
        return neg(self.and_(a, neg(b)))

    def and_many(self, lits: list[int]) -> int:
        """Balanced conjunction of a list of literals."""
        if not lits:
            return TRUE
        work = list(lits)
        while len(work) > 1:
            nxt = []
            for i in range(0, len(work) - 1, 2):
                nxt.append(self.and_(work[i], work[i + 1]))
            if len(work) % 2:
                nxt.append(work[-1])
            work = nxt
        return work[0]

    def or_many(self, lits: list[int]) -> int:
        return neg(self.and_many([neg(l) for l in lits]))

    # -- adders ----------------------------------------------------------------

    def full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        """Return (sum, carry_out)."""
        axb = self.xor_(a, b)
        total = self.xor_(axb, cin)
        carry = self.or_(self.and_(a, b), self.and_(cin, axb))
        return total, carry

    # -- evaluation (for tests and SAT-model validation) -----------------------

    def evaluate(self, lit: int, inputs: dict[int, bool]) -> bool:
        """Evaluate a literal under an assignment of input nodes to bools."""
        values: dict[int, bool] = {0: True}
        stack = [node_of(lit)]
        while stack:
            node = stack[-1]
            if node in values:
                stack.pop()
                continue
            definition = self._defs[node]
            if definition is None:
                values[node] = bool(inputs.get(node, False))
                stack.pop()
                continue
            left, right = definition
            left_node, right_node = node_of(left), node_of(right)
            pending = [n for n in (left_node, right_node) if n not in values]
            if pending:
                stack.extend(pending)
                continue
            left_val = values[left_node] ^ is_complement(left)
            right_val = values[right_node] ^ is_complement(right)
            values[node] = left_val and right_val
            stack.pop()
        return values[node_of(lit)] ^ is_complement(lit)

    def cone(self, lits: list[int]) -> list[int]:
        """All node indices in the transitive fan-in of `lits` (excluding
        the constant node), in topological (children-first) order."""
        seen: set[int] = set()
        order: list[int] = []
        stack: list[tuple[int, bool]] = [(node_of(l), False) for l in lits]
        while stack:
            node, ready = stack.pop()
            if ready:
                order.append(node)
                continue
            if node in seen or node == 0:
                continue
            seen.add(node)
            stack.append((node, True))
            definition = self._defs[node]
            if definition is not None:
                left, right = definition
                stack.append((node_of(left), False))
                stack.append((node_of(right), False))
        return order
