"""SatELite-style CNF preprocessing (inprocessing) for the SAT layer.

The Tseitin encoding of an AIG cone is deliberately naive — three clauses
per AND gate, one auxiliary variable per node — which keeps the encoder
trivially correct but hands the CDCL loop thousands of variables whose
values are all *functionally determined* by the primary inputs.  This module
implements the classic SatELite reductions on the raw clause list before it
reaches the solver:

* **root unit propagation** — units are applied and their variables fixed;
* **pure-literal elimination** — a literal whose complement never occurs
  satisfies all its clauses for free;
* **subsumption** — a clause that is a superset of another is redundant;
* **self-subsuming resolution** — when ``C ∨ l`` and ``D ⊇ C ∨ {¬l}``,
  resolution strengthens ``D`` by deleting ``¬l``;
* **bounded variable elimination (BVE)** — a variable is resolved away when
  the set of non-tautological resolvents is no larger than the clauses it
  replaces (the NiVER bound).

Subsumption and self-subsumption are *equivalence*-preserving, so they are
safe even when the preprocessed clauses later meet additional clauses or
assumption literals.  Pure-literal elimination and BVE only preserve
*satisfiability*; a model of the reduced formula must be repaired before it
can be read as a model of the original.  Every satisfiability-only step
therefore pushes an entry onto a :class:`ModelReconstructor` stack, and
``PreprocessResult.model()`` replays the stack in reverse to extend a model
of the output clauses into a model of the input clauses — which is what
keeps the SMT layer's concrete re-evaluation gate satisfied for
counterexamples that travel through variable elimination.

``PreprocessConfig.equivalence_preserving()`` selects the subset that is
sound for incremental use (the shared family solver adds cones and solves
under assumptions after preprocessing).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class PreprocessConfig:
    """Which reductions run, and how hard they may try."""

    unit_propagation: bool = True
    pure_literals: bool = True
    subsumption: bool = True
    self_subsumption: bool = True
    variable_elimination: bool = True
    #: Skip BVE for variables occurring more often than this in either
    #: polarity (SatELite's cheap-variable heuristic; resolving busy
    #: variables blows the clause count up quadratically).
    elim_occurrence_limit: int = 10
    #: How many more clauses than it removes an elimination may add
    #: (0 = the NiVER "never grow" rule).
    elim_growth: int = 0
    #: Fixpoint bound; each round runs every enabled reduction once.
    max_rounds: int = 12

    @classmethod
    def equivalence_preserving(cls) -> "PreprocessConfig":
        """The subset sound under later clause additions and assumptions.

        Unit propagation keeps its fixed variables as explicit unit clauses
        (see :meth:`PreprocessResult.load_into`), and subsumption /
        self-subsuming resolution only ever remove implied clauses or
        implied literals — the reduced formula is logically *equivalent* to
        the input, not merely equisatisfiable, so an incremental solver may
        keep growing it.  Pure literals and BVE do not have that property:
        a later cone can resurrect an eliminated variable with fresh
        constraints that the dropped clauses would have interacted with.
        """
        return cls(pure_literals=False, variable_elimination=False)

    def fingerprint(self) -> str:
        """Canonical text form; part of the proof-cache solver config."""
        return (
            f"up={int(self.unit_propagation)}"
            f",pure={int(self.pure_literals)}"
            f",sub={int(self.subsumption)}"
            f",ssub={int(self.self_subsumption)}"
            f",bve={int(self.variable_elimination)}"
            f",occ={self.elim_occurrence_limit}"
            f",growth={self.elim_growth}"
            f",rounds={self.max_rounds}"
        )


@dataclass
class PreprocessStats:
    """Deterministic counters: a pure function of (clauses, config)."""

    clauses_in: int = 0
    clauses_out: int = 0
    vars_in: int = 0
    units_fixed: int = 0
    pure_literals: int = 0
    subsumed: int = 0
    strengthened: int = 0
    eliminated_vars: int = 0
    rounds: int = 0

    def deterministic(self) -> dict[str, int]:
        return {
            "pre_clauses_in": self.clauses_in,
            "pre_clauses_out": self.clauses_out,
            "pre_units": self.units_fixed,
            "pre_pure_literals": self.pure_literals,
            "pre_subsumed": self.subsumed,
            "pre_strengthened": self.strengthened,
            "pre_eliminated_vars": self.eliminated_vars,
        }


class CnfBuffer:
    """A clause sink duck-typing :class:`repro.smt.sat.SatSolver`'s
    construction API (``new_var`` / ``ensure_vars`` / ``add_clause``), so
    :func:`repro.smt.cnf.encode` can target it.  Unlike the solver it does
    no simplification — it just records the raw CNF for preprocessing."""

    def __init__(self, num_vars: int = 0) -> None:
        self.num_vars = num_vars
        self.clauses: list[list[int]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def ensure_vars(self, count: int) -> None:
        if count > self.num_vars:
            self.num_vars = count

    def add_clause(self, lits: list[int]) -> None:
        self.clauses.append(list(lits))


class ModelReconstructor:
    """Replays satisfiability-only eliminations onto a model.

    Entries are pushed in elimination order and replayed in reverse: when
    a step was applied to formula ``F`` yielding ``F'``, a model of ``F'``
    (already repaired for every *later* step) is extended to a model of
    ``F`` before the next-older entry runs.
    """

    def __init__(self) -> None:
        # ("pure", lit, []) or ("elim", var, saved original clauses)
        self._stack: list[tuple[str, int, list[list[int]]]] = []

    def __len__(self) -> int:
        return len(self._stack)

    def note_pure(self, lit: int) -> None:
        self._stack.append(("pure", lit, []))

    def note_elimination(self, var: int, clauses: list[list[int]]) -> None:
        self._stack.append(("elim", var, clauses))

    @staticmethod
    def _lit_true(model: dict[int, bool], lit: int) -> bool:
        value = model.get(abs(lit), False)
        return value if lit > 0 else not value

    def extend(self, model: dict[int, bool]) -> dict[int, bool]:
        """Extend `model` (of the preprocessed clauses) to satisfy every
        clause the eliminations removed."""
        model = dict(model)
        for kind, key, clauses in reversed(self._stack):
            if kind == "pure":
                # Every removed clause contained `key`; making it true
                # satisfies them all.
                model[abs(key)] = key > 0
                continue
            # BVE: the solver's value for `key` (if any) is unconstrained
            # noise — recompute it from the saved clauses.  Because every
            # non-tautological resolvent was added to the formula, at most
            # one polarity can have an otherwise-unsatisfied clause, so the
            # greedy rule below is total.
            value = False
            for clause in clauses:
                if key in clause and not any(
                    self._lit_true(model, lit) for lit in clause if lit != key
                ):
                    value = True
                    break
            model[key] = value
        return model


@dataclass
class PreprocessResult:
    """Outcome of :func:`preprocess`: an equisatisfiable clause set plus
    everything needed to map its models back onto the input."""

    num_vars: int
    clauses: list[list[int]]
    #: Root-level forced assignments (units and their consequences).
    fixed: dict[int, bool]
    unsat: bool
    reconstructor: ModelReconstructor
    stats: PreprocessStats
    config: PreprocessConfig

    def load_into(self, solver) -> int:
        """Feed the preprocessed problem into a solver-like object; returns
        the number of clauses loaded.  Fixed variables are re-emitted as
        unit clauses so incremental callers that later add cones mentioning
        those variables still see the constraint."""
        solver.ensure_vars(self.num_vars)
        if self.unsat:
            solver.add_clause([])
            return 1
        count = 0
        for var in sorted(self.fixed):
            solver.add_clause([var if self.fixed[var] else -var])
            count += 1
        for clause in self.clauses:
            solver.add_clause(list(clause))
            count += 1
        return count

    def model(self, sat_model: dict[int, bool]) -> dict[int, bool]:
        """Repair a model of `clauses` into a model of the input CNF."""
        full = dict(sat_model)
        full.update(self.fixed)
        return self.reconstructor.extend(full)


class _Db:
    """Mutable clause database with occurrence lists.

    Clauses live in a tombstoned list; `occur[lit]` holds the indices of
    live clauses containing `lit`.  All iteration that can influence the
    output walks indices / variables in sorted order, so the result is a
    deterministic function of the input and the configuration.
    """

    def __init__(self, num_vars: int) -> None:
        self.num_vars = num_vars
        self.clauses: list[set[int] | None] = []
        self.occur: dict[int, set[int]] = {}
        self.assign: dict[int, bool] = {}
        self.unit_queue: deque[int] = deque()
        self.unsat = False
        self.eliminated: set[int] = set()

    # -- plumbing ----------------------------------------------------------

    def lit_value(self, lit: int):
        value = self.assign.get(abs(lit))
        if value is None:
            return None
        return value if lit > 0 else not value

    def add(self, lits) -> int | None:
        """Insert a clause (assumed tautology-free and deduped), simplifying
        it against the root assignment first; returns its index, or None for
        clauses that collapse to units/empties (routed to the unit queue /
        unsat flag) or are already satisfied."""
        if self.unsat:
            return None
        assign = self.assign
        cleaned: list[int] = []
        for lit in lits:
            value = assign.get(lit if lit > 0 else -lit)
            if value is not None:
                if value == (lit > 0):
                    return None  # satisfied at root
                continue  # falsified at root: drop literal
            cleaned.append(lit)
        if not cleaned:
            self.unsat = True
            return None
        if len(cleaned) == 1:
            self.enqueue_unit(cleaned[0])
            return None
        index = len(self.clauses)
        clause = set(cleaned)
        self.clauses.append(clause)
        occur = self.occur
        for lit in clause:
            entry = occur.get(lit)
            if entry is None:
                occur[lit] = {index}
            else:
                entry.add(index)
        return index

    def remove(self, index: int) -> None:
        clause = self.clauses[index]
        if clause is None:
            return
        for lit in clause:
            self.occur[lit].discard(index)
        self.clauses[index] = None

    def enqueue_unit(self, lit: int) -> None:
        value = self.lit_value(lit)
        if value is False:
            self.unsat = True
        elif value is None:
            self.assign[abs(lit)] = lit > 0
            self.unit_queue.append(lit)

    def live_indices(self) -> list[int]:
        return [i for i, c in enumerate(self.clauses) if c is not None]


def _normalise(lits) -> list[int] | None:
    """Dedupe; returns None for tautologies."""
    seen: set[int] = set()
    for lit in lits:
        if -lit in seen:
            return None
        seen.add(lit)
    return sorted(seen)


def _propagate(db: _Db, stats: PreprocessStats, dirty: set[int]) -> None:
    """Apply queued root units to the clause database."""
    while db.unit_queue and not db.unsat:
        lit = db.unit_queue.popleft()
        stats.units_fixed += 1
        # Clauses satisfied by `lit` vanish; clauses containing the
        # complement lose a literal (and may become units themselves).
        for index in sorted(db.occur.get(lit, set())):
            db.remove(index)
        for index in sorted(db.occur.get(-lit, set())):
            clause = db.clauses[index]
            if clause is None:
                continue
            db.remove(index)
            remaining = clause - {-lit}
            new_index = db.add(remaining)
            if new_index is not None:
                dirty.add(new_index)


def _subsumption_round(db: _Db, config: PreprocessConfig,
                       stats: PreprocessStats, dirty: set[int]) -> bool:
    """Forward subsumption + self-subsuming resolution to fixpoint over the
    `dirty` worklist.  Returns True if anything changed."""
    changed = False
    worklist = deque(sorted(dirty))
    dirty.clear()
    queued = set(worklist)
    while worklist:
        index = worklist.popleft()
        queued.discard(index)
        clause = db.clauses[index]
        if clause is None:
            continue
        # Cheapest literal first: candidates must contain every literal of
        # `clause`, so the smallest occurrence list bounds the scan.
        pivot = min(clause, key=lambda l: (len(db.occur.get(l, ())), l))
        if config.subsumption:
            for other_index in sorted(db.occur.get(pivot, set())):
                if other_index == index:
                    continue
                other = db.clauses[other_index]
                if other is None or len(other) < len(clause):
                    continue
                if clause <= other:
                    db.remove(other_index)
                    stats.subsumed += 1
                    changed = True
        if config.self_subsumption:
            for lit in sorted(clause):
                # `clause` with `lit` flipped: any superset loses `-lit`.
                rest = clause - {lit}
                for other_index in sorted(db.occur.get(-lit, set())):
                    other = db.clauses[other_index]
                    if other is None or len(other) < len(clause):
                        continue
                    if rest <= other:
                        db.remove(other_index)
                        strengthened = other - {-lit}
                        stats.strengthened += 1
                        changed = True
                        new_index = db.add(strengthened)
                        if new_index is not None and new_index not in queued:
                            worklist.append(new_index)
                            queued.add(new_index)
                if db.clauses[index] is None:
                    break
        if db.unsat:
            break
    return changed


def _pure_literal_round(db: _Db, frozen: set[int], stats: PreprocessStats,
                        reconstructor: ModelReconstructor) -> bool:
    changed = False
    for var in range(1, db.num_vars + 1):
        if var in frozen or var in db.assign or var in db.eliminated:
            continue
        pos = db.occur.get(var, set())
        neg = db.occur.get(-var, set())
        if pos and not neg:
            pure = var
        elif neg and not pos:
            pure = -var
        else:
            continue
        reconstructor.note_pure(pure)
        db.eliminated.add(var)
        stats.pure_literals += 1
        changed = True
        for index in sorted(db.occur.get(pure, set())):
            db.remove(index)
    return changed


def _elimination_round(db: _Db, frozen: set[int], config: PreprocessConfig,
                       stats: PreprocessStats,
                       reconstructor: ModelReconstructor,
                       dirty: set[int]) -> bool:
    changed = False
    for var in range(1, db.num_vars + 1):
        if db.unsat:
            break
        if var in frozen or var in db.assign or var in db.eliminated:
            continue
        pos = sorted(db.occur.get(var, set()))
        neg = sorted(db.occur.get(-var, set()))
        if not pos and not neg:
            continue
        if (len(pos) > config.elim_occurrence_limit
                or len(neg) > config.elim_occurrence_limit):
            continue
        resolvents: list[set[int]] = []
        budget = len(pos) + len(neg) + config.elim_growth
        feasible = True
        # Both parents are tautology-free, so a resolvent is tautological
        # iff a literal of one side's rest clashes with the other side's.
        neg_rests = []
        for ni in neg:
            rest = db.clauses[ni] - {-var}
            neg_rests.append((rest, {-l for l in rest}))
        for pi in pos:
            pc_rest = db.clauses[pi] - {var}
            for nc_rest, nc_negated in neg_rests:
                if not pc_rest.isdisjoint(nc_negated):
                    continue  # tautology
                resolvents.append(pc_rest | nc_rest)
                if len(resolvents) > budget:
                    feasible = False
                    break
            if not feasible:
                break
        if not feasible:
            continue
        saved = [sorted(db.clauses[i]) for i in pos + neg]
        reconstructor.note_elimination(var, saved)
        db.eliminated.add(var)
        stats.eliminated_vars += 1
        changed = True
        for index in pos + neg:
            db.remove(index)
        for resolvent in resolvents:
            new_index = db.add(resolvent)
            if new_index is not None:
                dirty.add(new_index)
    return changed


def preprocess(num_vars: int, clauses, frozen=(),
               config: PreprocessConfig | None = None) -> PreprocessResult:
    """Reduce `clauses` (iterable of literal lists over vars ``1..num_vars``)
    under `config`.  Variables in `frozen` are never eliminated by a
    satisfiability-only technique, so their values in any model of the
    output are directly meaningful for the input — the SMT layer freezes
    the primary-input variables it lifts models from."""
    config = config or PreprocessConfig()
    stats = PreprocessStats(vars_in=num_vars)
    reconstructor = ModelReconstructor()
    frozen_set = {abs(v) for v in frozen}
    db = _Db(num_vars)
    dirty: set[int] = set()

    for lits in clauses:
        stats.clauses_in += 1
        for lit in lits:
            if lit == 0 or abs(lit) > num_vars:
                raise ValueError(f"literal {lit} out of range")
        normalised = _normalise(lits)
        if normalised is None:
            continue  # tautology
        index = db.add(normalised)
        if index is not None:
            dirty.add(index)

    while not db.unsat:
        if config.unit_propagation:
            _propagate(db, stats, dirty)
        if db.unsat or stats.rounds >= config.max_rounds:
            break
        stats.rounds += 1
        changed = False
        if config.subsumption or config.self_subsumption:
            changed |= _subsumption_round(db, config, stats, dirty)
        if config.unit_propagation and db.unit_queue:
            continue  # strengthening produced units: re-propagate first
        if config.pure_literals:
            changed |= _pure_literal_round(db, frozen_set, stats,
                                           reconstructor)
        if config.variable_elimination:
            changed |= _elimination_round(db, frozen_set, config, stats,
                                          reconstructor, dirty)
        if config.unit_propagation and db.unit_queue:
            continue
        if not changed:
            break

    out_clauses = [sorted(db.clauses[i]) for i in db.live_indices()]
    stats.clauses_out = len(out_clauses)
    return PreprocessResult(
        num_vars=num_vars,
        clauses=out_clauses,
        fixed=dict(sorted(db.assign.items())),
        unsat=db.unsat,
        reconstructor=reconstructor,
        stats=stats,
        config=config,
    )
