"""Concrete evaluation of terms — the semantic ground truth.

Everything else in the SMT stack (rewriter, bit-blaster, SAT models) is
tested against this evaluator, in the same way the paper validates its
hardware spec against the intended MMU semantics.
"""

from __future__ import annotations

from repro import wordlib
from repro.smt import ast
from repro.smt.ast import Term


class EvalError(Exception):
    """Raised when a term mentions a variable missing from the environment."""


def evaluate(term: Term, env: dict[str, int | bool]) -> int | bool:
    """Evaluate `term` under `env` (mapping variable names to values).

    Bool terms evaluate to Python bools; bitvector terms to unsigned ints of
    the term's width.  Uses an explicit stack so deep DAGs do not overflow
    Python's recursion limit.
    """
    cache: dict[Term, int | bool] = {}
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        node, ready = stack.pop()
        if node in cache:
            continue
        if not ready:
            stack.append((node, True))
            for arg in node.args:
                if arg not in cache:
                    stack.append((arg, False))
            continue
        cache[node] = _eval_node(node, cache, env)
    return cache[term]


def _eval_node(node: Term, cache: dict[Term, int | bool], env) -> int | bool:
    op = node.op
    if op == ast.CONST:
        return node.value
    if op == ast.VAR:
        if node.name not in env:
            raise EvalError(f"unbound variable {node.name!r}")
        value = env[node.name]
        if node.sort.is_bool:
            return bool(value)
        return wordlib.truncate(int(value), node.width)

    args = [cache[a] for a in node.args]
    width = node.width

    if op == ast.NOT:
        return not args[0]
    if op == ast.AND:
        return all(args)
    if op == ast.OR:
        return any(args)
    if op == ast.XOR:
        return args[0] != args[1]
    if op == ast.IMPLIES:
        return (not args[0]) or args[1]
    if op == ast.ITE:
        return args[1] if args[0] else args[2]
    if op == ast.EQ:
        return args[0] == args[1]
    if op == ast.ULT:
        return args[0] < args[1]
    if op == ast.ULE:
        return args[0] <= args[1]

    if op == ast.BVNOT:
        return wordlib.truncate(~args[0], width)
    if op == ast.BVNEG:
        return wordlib.truncate(-args[0], width)
    if op == ast.BVAND:
        return args[0] & args[1]
    if op == ast.BVOR:
        return args[0] | args[1]
    if op == ast.BVXOR:
        return args[0] ^ args[1]
    if op == ast.BVADD:
        return wordlib.truncate(args[0] + args[1], width)
    if op == ast.BVSUB:
        return wordlib.truncate(args[0] - args[1], width)
    if op == ast.BVMUL:
        return wordlib.truncate(args[0] * args[1], width)
    if op == ast.BVSHL:
        shift = args[1]
        if shift >= width:
            return 0
        return wordlib.truncate(args[0] << shift, width)
    if op == ast.BVLSHR:
        shift = args[1]
        if shift >= width:
            return 0
        return args[0] >> shift
    if op == ast.BVASHR:
        shift = min(args[1], width)
        signed = wordlib.to_signed(args[0], width)
        return wordlib.truncate(signed >> shift, width)
    if op == ast.EXTRACT:
        hi, lo = node.params
        return wordlib.extract(args[0], hi, lo)
    if op == ast.CONCAT:
        lo_width = node.args[1].width
        return (args[0] << lo_width) | args[1]
    if op == ast.ZEXT:
        return args[0]
    if op == ast.SEXT:
        return wordlib.sign_extend(args[0], node.args[0].width, width)

    raise EvalError(f"unknown operator {op!r}")
