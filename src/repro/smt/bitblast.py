"""Lowering of QF_BV terms to AIG literals.

Bool terms become one literal; a bitvector term of width ``w`` becomes a list
of ``w`` literals, least-significant bit first.  Variables become AIG primary
inputs named ``name[i]`` so SAT models can be lifted back to integers.
"""

from __future__ import annotations

from repro.smt import ast
from repro.smt.aig import Aig, neg
from repro.smt.ast import Term


class BitBlaster:
    """Stateful lowering context tied to one :class:`Aig`."""

    def __init__(self, aig: Aig | None = None) -> None:
        self.aig = aig if aig is not None else Aig()
        self._cache: dict[Term, int | list[int]] = {}
        self._var_bits: dict[str, list[int]] = {}

    def var_bits(self, name: str) -> list[int] | None:
        """The input literals allocated for a variable, if it was blasted."""
        return self._var_bits.get(name)

    def blast_bool(self, term: Term) -> int:
        if not term.sort.is_bool:
            raise TypeError(f"expected Bool term, got {term!r}")
        result = self._blast(term)
        assert isinstance(result, int)
        return result

    def blast_bv(self, term: Term) -> list[int]:
        if not term.sort.is_bv:
            raise TypeError(f"expected bitvector term, got {term!r}")
        result = self._blast(term)
        assert isinstance(result, list)
        return result

    # -- core lowering ---------------------------------------------------------

    def _blast(self, root: Term) -> int | list[int]:
        stack: list[tuple[Term, bool]] = [(root, False)]
        cache = self._cache
        while stack:
            node, ready = stack.pop()
            if node in cache:
                continue
            if not ready:
                stack.append((node, True))
                for arg in node.args:
                    if arg not in cache:
                        stack.append((arg, False))
                continue
            cache[node] = self._lower(node)
        return cache[root]

    def _lower(self, node: Term) -> int | list[int]:
        g = self.aig
        op = node.op
        args = [self._cache[a] for a in node.args]

        if op == ast.CONST:
            if node.sort.is_bool:
                return 0 if node.value else 1  # TRUE / FALSE literals
            return [0 if (node.value >> i) & 1 else 1 for i in range(node.width)]
        if op == ast.VAR:
            if node.sort.is_bool:
                bits = self._var_bits.setdefault(
                    node.name, [g.new_input(node.name)]
                )
                return bits[0]
            bits = self._var_bits.get(node.name)
            if bits is None:
                bits = [g.new_input(f"{node.name}[{i}]") for i in range(node.width)]
                self._var_bits[node.name] = bits
            return list(bits)

        if op == ast.NOT:
            return neg(args[0])
        if op == ast.AND:
            return g.and_many(list(args))
        if op == ast.OR:
            return g.or_many(list(args))
        if op == ast.XOR:
            return g.xor_(args[0], args[1])
        if op == ast.IMPLIES:
            return g.implies_(args[0], args[1])
        if op == ast.ITE:
            cond = args[0]
            if node.sort.is_bool:
                return g.mux(cond, args[1], args[2])
            return [g.mux(cond, t, e) for t, e in zip(args[1], args[2])]
        if op == ast.EQ:
            if node.args[0].sort.is_bool:
                return g.xnor_(args[0], args[1])
            pairs = [g.xnor_(a, b) for a, b in zip(args[0], args[1])]
            return g.and_many(pairs)
        if op == ast.ULT:
            return self._less_than(args[0], args[1], strict=True)
        if op == ast.ULE:
            return self._less_than(args[0], args[1], strict=False)

        if op == ast.BVNOT:
            return [neg(b) for b in args[0]]
        if op == ast.BVAND:
            return [g.and_(a, b) for a, b in zip(args[0], args[1])]
        if op == ast.BVOR:
            return [g.or_(a, b) for a, b in zip(args[0], args[1])]
        if op == ast.BVXOR:
            return [g.xor_(a, b) for a, b in zip(args[0], args[1])]
        if op == ast.BVADD:
            return self._adder(args[0], args[1], carry_in=1)[0]  # FALSE carry
        if op == ast.BVSUB:
            return self._adder(args[0], [neg(b) for b in args[1]], carry_in=0)[0]
        if op == ast.BVNEG:
            zero = [1] * len(args[0])
            return self._adder(zero, [neg(b) for b in args[0]], carry_in=0)[0]
        if op == ast.BVMUL:
            return self._multiplier(args[0], args[1])
        if op == ast.BVSHL:
            return self._shifter(args[0], node.args[1], args[1], direction="left")
        if op == ast.BVLSHR:
            return self._shifter(args[0], node.args[1], args[1], direction="right")
        if op == ast.BVASHR:
            return self._shifter(args[0], node.args[1], args[1], direction="arith")
        if op == ast.EXTRACT:
            hi, lo = node.params
            return args[0][lo : hi + 1]
        if op == ast.CONCAT:
            return list(args[1]) + list(args[0])
        if op == ast.ZEXT:
            pad = node.width - len(args[0])
            return list(args[0]) + [1] * pad
        if op == ast.SEXT:
            sign = args[0][-1]
            pad = node.width - len(args[0])
            return list(args[0]) + [sign] * pad

        raise ValueError(f"cannot bit-blast operator {op!r}")

    # -- circuit building blocks ---------------------------------------------

    def _adder(
        self, a: list[int], b: list[int], carry_in: int
    ) -> tuple[list[int], int]:
        """Ripple-carry adder.  `carry_in` is an AIG literal (0=TRUE, 1=FALSE
        per the AIG constant convention).  Returns (sum bits, carry out)."""
        g = self.aig
        carry = carry_in
        out = []
        for abit, bbit in zip(a, b):
            total, carry = g.full_adder(abit, bbit, carry)
            out.append(total)
        return out, carry

    def _less_than(self, a: list[int], b: list[int], strict: bool) -> int:
        g = self.aig
        # From LSB to MSB: lt = (~a & b) | ((a == b) & lt_prev)
        lt = 1 if strict else 0  # FALSE for ULT, TRUE for ULE at width 0
        for abit, bbit in zip(a, b):
            borrow = g.and_(neg(abit), bbit)
            equal = g.xnor_(abit, bbit)
            lt = g.or_(borrow, g.and_(equal, lt))
        return lt

    def _shifter(
        self, bits: list[int], amount_term: Term, amount_bits: list[int], direction: str
    ) -> list[int]:
        width = len(bits)
        if amount_term.is_const:
            return self._shift_const(bits, amount_term.value, direction)
        g = self.aig
        fill = bits[-1] if direction == "arith" else 1  # FALSE fill
        current = list(bits)
        stages = max(1, (width - 1).bit_length())
        for stage in range(stages):
            sel = amount_bits[stage] if stage < len(amount_bits) else 1
            step = 1 << stage
            shifted = self._shift_const(current, step, direction, fill)
            current = [g.mux(sel, s, c) for s, c in zip(shifted, current)]
        # Shift amounts >= width force zero (or sign fill for arithmetic).
        overflow_bits = amount_bits[stages:]
        if overflow_bits:
            too_big = g.or_many(list(overflow_bits))
            current = [g.mux(too_big, fill, c) for c in current]
        return current

    def _shift_const(
        self, bits: list[int], amount: int, direction: str, fill: int | None = None
    ) -> list[int]:
        width = len(bits)
        if fill is None:
            fill = bits[-1] if direction == "arith" else 1
        if amount >= width:
            return [fill if direction == "arith" else 1] * width
        if direction == "left":
            return [1] * amount + bits[: width - amount]
        # right shifts (logical or arithmetic)
        return bits[amount:] + [fill] * amount

    def _multiplier(self, a: list[int], b: list[int]) -> list[int]:
        """Shift-add multiplier (kept simple; lemmas avoid wide multiplies)."""
        g = self.aig
        width = len(a)
        acc = [1] * width  # zero
        for i in range(width):
            partial = [1] * i + [g.and_(b[i], abit) for abit in a[: width - i]]
            acc, _ = self._adder(acc, partial, carry_in=1)
        return acc
