"""Tseitin transformation from AIG cones to CNF.

Only the transitive fan-in of the requested output literals is encoded, so
lemmas that collapse structurally in the AIG produce tiny CNFs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.smt.aig import Aig, is_complement, node_of
from repro.smt.sat import SatSolver


@dataclass
class CnfMapping:
    """Mapping from AIG nodes to SAT variables produced by encoding."""

    node_to_var: dict[int, int] = field(default_factory=dict)
    num_clauses: int = 0


def _sat_lit(mapping: CnfMapping, lit: int) -> int:
    var = mapping.node_to_var[node_of(lit)]
    return -var if is_complement(lit) else var


def encode(aig: Aig, outputs: list[int], solver: SatSolver) -> CnfMapping:
    """Encode the cones of `outputs` into `solver` and assert each output.

    Constant outputs are handled directly: TRUE is a no-op, FALSE makes the
    problem trivially unsatisfiable.
    """
    mapping = CnfMapping()
    cone = aig.cone(outputs)

    for node in cone:
        mapping.node_to_var[node] = solver.new_var()

    for node in cone:
        definition = aig.definition(node)
        if definition is None:
            continue  # primary input: free variable
        left, right = definition
        out = mapping.node_to_var[node]
        a = _sat_lit(mapping, left)
        b = _sat_lit(mapping, right)
        solver.add_clause([-out, a])
        solver.add_clause([-out, b])
        solver.add_clause([out, -a, -b])
        mapping.num_clauses += 3

    for lit in outputs:
        node = node_of(lit)
        if node == 0:
            if is_complement(lit):  # constant FALSE asserted
                solver.add_clause([])  # forces UNSAT via empty clause path
            continue
        solver.add_clause([_sat_lit(mapping, lit)])
        mapping.num_clauses += 1
    return mapping
