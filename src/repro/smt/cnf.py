"""Tseitin transformation from AIG cones to CNF.

Only the transitive fan-in of the requested output literals is encoded, so
lemmas that collapse structurally in the AIG produce tiny CNFs.

The encoder is incremental: pass the :class:`CnfMapping` returned by an
earlier call to extend an already-populated solver with just the *new*
nodes of a further cone (nodes already mapped keep their SAT variables and
are not re-encoded — the structural-hashing win carries straight through to
the clause database).  With ``assert_outputs=False`` the outputs are left
unasserted so callers can solve under per-output assumption literals
(:func:`output_literal`) instead — the mechanism behind the shared
family solver in :mod:`repro.smt.solver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.smt.aig import Aig, is_complement, node_of


@dataclass
class CnfMapping:
    """Mapping from AIG nodes to SAT variables produced by encoding."""

    node_to_var: dict[int, int] = field(default_factory=dict)
    num_clauses: int = 0


def _sat_lit(mapping: CnfMapping, lit: int) -> int:
    var = mapping.node_to_var[node_of(lit)]
    return -var if is_complement(lit) else var


def output_literal(mapping: CnfMapping, lit: int) -> int:
    """The SAT literal equivalent to AIG literal `lit` under `mapping` —
    what an incremental caller passes as an assumption.  Constant literals
    have no SAT encoding and must be handled structurally by the caller."""
    if node_of(lit) == 0:
        raise ValueError("constant AIG literal has no SAT encoding")
    return _sat_lit(mapping, lit)


def encode(aig: Aig, outputs: list[int], solver,
           mapping: CnfMapping | None = None,
           assert_outputs: bool = True) -> CnfMapping:
    """Encode the cones of `outputs` into `solver`; assert each output
    unless ``assert_outputs=False``.

    `solver` is anything with the :class:`repro.smt.sat.SatSolver`
    construction API (``new_var`` / ``add_clause``) — the preprocessing
    pipeline passes a :class:`repro.smt.preprocess.CnfBuffer`.

    When `mapping` is given, encoding *extends* it: nodes already present
    keep their variables and emit no new clauses, so repeated calls against
    one solver build a single shared CNF across overlapping cones.

    Constant outputs are handled directly: TRUE is a no-op, FALSE makes the
    problem trivially unsatisfiable (the asserted empty clause counts
    toward ``num_clauses`` like every other asserted clause).
    """
    if mapping is None:
        mapping = CnfMapping()
    cone = aig.cone(outputs)

    fresh = [node for node in cone if node not in mapping.node_to_var]
    for node in fresh:
        mapping.node_to_var[node] = solver.new_var()

    for node in fresh:
        definition = aig.definition(node)
        if definition is None:
            continue  # primary input: free variable
        left, right = definition
        out = mapping.node_to_var[node]
        a = _sat_lit(mapping, left)
        b = _sat_lit(mapping, right)
        solver.add_clause([-out, a])
        solver.add_clause([-out, b])
        solver.add_clause([out, -a, -b])
        mapping.num_clauses += 3

    if assert_outputs:
        for lit in outputs:
            node = node_of(lit)
            if node == 0:
                if is_complement(lit):  # constant FALSE asserted
                    solver.add_clause([])  # forces UNSAT via empty clause
                    mapping.num_clauses += 1
                continue
            solver.add_clause([_sat_lit(mapping, lit)])
            mapping.num_clauses += 1
    return mapping
