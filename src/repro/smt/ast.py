"""Hash-consed term AST for the QF_BV fragment.

Terms are immutable and interned: structurally equal terms are the same
Python object, so identity comparison and dict lookups are O(1).  Because of
interning, ``Term`` does *not* overload ``__eq__`` to build equations; use
:meth:`Term.eq` for that, and ``is`` (or plain ``==``, which falls back to
identity) to compare term objects.

Sorts are either :data:`BOOL` or ``BV(width)``.  Construction performs light
constant folding; the heavier rewriting lives in :mod:`repro.smt.rewrite`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import wordlib

# ---------------------------------------------------------------------------
# Sorts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Sort:
    """A term sort: ``width == 0`` means Bool, otherwise a bitvector width."""

    width: int

    @property
    def is_bool(self) -> bool:
        return self.width == 0

    @property
    def is_bv(self) -> bool:
        return self.width > 0

    def __repr__(self) -> str:
        return "Bool" if self.is_bool else f"BV{self.width}"


BOOL = Sort(0)

_BV_CACHE: dict[int, Sort] = {}


def BV(width: int) -> Sort:
    """Return the (cached) bitvector sort of the given width."""
    if width <= 0:
        raise ValueError(f"bitvector width must be positive, got {width}")
    sort = _BV_CACHE.get(width)
    if sort is None:
        sort = Sort(width)
        _BV_CACHE[width] = sort
    return sort


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------

# Leaf ops
CONST = "const"
VAR = "var"

# Bool connectives
NOT = "not"
AND = "and"
OR = "or"
XOR = "xor"
IMPLIES = "implies"

# Polymorphic
ITE = "ite"
EQ = "eq"

# Bitvector ops
BVNOT = "bvnot"
BVAND = "bvand"
BVOR = "bvor"
BVXOR = "bvxor"
BVADD = "bvadd"
BVSUB = "bvsub"
BVNEG = "bvneg"
BVMUL = "bvmul"
BVSHL = "bvshl"
BVLSHR = "bvlshr"
BVASHR = "bvashr"
EXTRACT = "extract"
CONCAT = "concat"
ZEXT = "zext"
SEXT = "sext"
ULT = "ult"
ULE = "ule"

_COMMUTATIVE = {AND, OR, XOR, BVAND, BVOR, BVXOR, BVADD, BVMUL, EQ}


class Term:
    """An interned term node.

    Attributes:
        op: operator tag (one of the module-level constants).
        args: child terms.
        sort: the term's sort.
        value: constant value (for ``CONST``) — bool or int.
        name: variable name (for ``VAR``).
        params: extra integer parameters (``EXTRACT`` hi/lo, ``ZEXT`` width).
    """

    __slots__ = ("op", "args", "sort", "value", "name", "params", "_id")

    _intern: dict[tuple, "Term"] = {}
    _next_id = 0

    def __new__(
        cls,
        op: str,
        args: tuple["Term", ...] = (),
        sort: Sort = BOOL,
        value=None,
        name: str | None = None,
        params: tuple[int, ...] = (),
    ) -> "Term":
        key = (op, tuple(id(a) for a in args), sort, value, name, params)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        term = object.__new__(cls)
        term.op = op
        term.args = args
        term.sort = sort
        term.value = value
        term.name = name
        term.params = params
        term._id = cls._next_id
        Term._next_id += 1
        cls._intern[key] = term
        return term

    # Interning makes identity the right notion of equality.
    def __hash__(self) -> int:
        return self._id

    @property
    def width(self) -> int:
        return self.sort.width

    @property
    def is_const(self) -> bool:
        return self.op == CONST

    # -- equation / comparison builders (not operator overloads; see module
    #    docstring for why __eq__ stays as identity) ------------------------

    def eq(self, other: "Term | int | bool") -> "Term":
        return eq(self, _coerce(other, self.sort))

    def neq(self, other: "Term | int | bool") -> "Term":
        return not_(self.eq(other))

    def ult(self, other: "Term | int") -> "Term":
        return ult(self, _coerce(other, self.sort))

    def ule(self, other: "Term | int") -> "Term":
        return ule(self, _coerce(other, self.sort))

    def ugt(self, other: "Term | int") -> "Term":
        return ult(_coerce(other, self.sort), self)

    def uge(self, other: "Term | int") -> "Term":
        return ule(_coerce(other, self.sort), self)

    # -- arithmetic / bitwise operator sugar --------------------------------

    def __and__(self, other):
        if self.sort.is_bool:
            return and_(self, _coerce(other, BOOL))
        return bvand(self, _coerce(other, self.sort))

    def __or__(self, other):
        if self.sort.is_bool:
            return or_(self, _coerce(other, BOOL))
        return bvor(self, _coerce(other, self.sort))

    def __xor__(self, other):
        if self.sort.is_bool:
            return xor_(self, _coerce(other, BOOL))
        return bvxor(self, _coerce(other, self.sort))

    def __invert__(self):
        if self.sort.is_bool:
            return not_(self)
        return bvnot(self)

    def __add__(self, other):
        return bvadd(self, _coerce(other, self.sort))

    def __sub__(self, other):
        return bvsub(self, _coerce(other, self.sort))

    def __mul__(self, other):
        return bvmul(self, _coerce(other, self.sort))

    def __lshift__(self, other):
        return bvshl(self, _coerce(other, self.sort))

    def __rshift__(self, other):
        return bvlshr(self, _coerce(other, self.sort))

    def __neg__(self):
        return bvneg(self)

    def extract(self, hi: int, lo: int) -> "Term":
        return extract(self, hi, lo)

    def zext(self, to_width: int) -> "Term":
        return zext(self, to_width)

    def sext(self, to_width: int) -> "Term":
        return sext(self, to_width)

    def __repr__(self) -> str:
        if self.op == CONST:
            if self.sort.is_bool:
                return "true" if self.value else "false"
            return f"{self.value:#x}:{self.width}"
        if self.op == VAR:
            return f"{self.name}:{self.sort!r}"
        if self.op == EXTRACT:
            return f"(extract[{self.params[0]}:{self.params[1]}] {self.args[0]!r})"
        inner = " ".join(repr(a) for a in self.args)
        return f"({self.op} {inner})"


def _coerce(value, sort: Sort) -> Term:
    """Turn a Python bool/int into a constant of `sort` (terms pass through)."""
    if isinstance(value, Term):
        return value
    if sort.is_bool:
        return true() if value else false()
    return bv_const(value, sort.width)


# ---------------------------------------------------------------------------
# Leaf constructors
# ---------------------------------------------------------------------------


def true() -> Term:
    return Term(CONST, sort=BOOL, value=True)


def false() -> Term:
    return Term(CONST, sort=BOOL, value=False)


def bool_const(value: bool) -> Term:
    return true() if value else false()


def bv_const(value: int, width: int) -> Term:
    if not isinstance(value, int):
        raise TypeError(f"bitvector constant must be int, got {type(value)}")
    return Term(CONST, sort=BV(width), value=wordlib.truncate(value, width))


def bool_var(name: str) -> Term:
    return Term(VAR, sort=BOOL, name=name)


def bv_var(name: str, width: int) -> Term:
    return Term(VAR, sort=BV(width), name=name)


# ---------------------------------------------------------------------------
# Boolean connectives (with constant folding)
# ---------------------------------------------------------------------------


def not_(a: Term) -> Term:
    _expect_bool(a, "not")
    if a.is_const:
        return bool_const(not a.value)
    if a.op == NOT:
        return a.args[0]
    return Term(NOT, (a,), BOOL)


def and_(*terms: Term) -> Term:
    return _nary_bool(AND, terms, identity=True, absorbing=False)


def or_(*terms: Term) -> Term:
    return _nary_bool(OR, terms, identity=False, absorbing=True)


def _nary_bool(op: str, terms, identity: bool, absorbing: bool) -> Term:
    flat: list[Term] = []
    for t in terms:
        _expect_bool(t, op)
        if t.is_const:
            if t.value == absorbing:
                return bool_const(absorbing)
            continue  # identity element: drop
        if t.op == op:
            flat.extend(t.args)
        else:
            flat.append(t)
    seen: dict[Term, None] = {}
    for t in flat:
        seen[t] = None
    flat = list(seen)
    if not flat:
        return bool_const(identity)
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=lambda t: t._id)
    return Term(op, tuple(flat), BOOL)


def xor_(a: Term, b: Term) -> Term:
    _expect_bool(a, "xor")
    _expect_bool(b, "xor")
    if a.is_const and b.is_const:
        return bool_const(a.value != b.value)
    if a.is_const:
        return not_(b) if a.value else b
    if b.is_const:
        return not_(a) if b.value else a
    if a is b:
        return false()
    if a._id > b._id:
        a, b = b, a
    return Term(XOR, (a, b), BOOL)


def implies(a: Term, b: Term) -> Term:
    _expect_bool(a, "implies")
    _expect_bool(b, "implies")
    if a.is_const:
        return b if a.value else true()
    if b.is_const:
        return true() if b.value else not_(a)
    if a is b:
        return true()
    return Term(IMPLIES, (a, b), BOOL)


def ite(cond: Term, then: Term, other: Term) -> Term:
    _expect_bool(cond, "ite")
    if then.sort != other.sort:
        raise TypeError(f"ite branch sorts differ: {then.sort!r} vs {other.sort!r}")
    if cond.is_const:
        return then if cond.value else other
    if then is other:
        return then
    if then.sort.is_bool and then.is_const and other.is_const:
        # then/other differ (previous check), so this is cond or !cond.
        return cond if then.value else not_(cond)
    return Term(ITE, (cond, then, other), then.sort)


def eq(a: Term, b: Term) -> Term:
    if a.sort != b.sort:
        raise TypeError(f"eq on different sorts: {a.sort!r} vs {b.sort!r}")
    if a is b:
        return true()
    if a.is_const and b.is_const:
        return bool_const(a.value == b.value)
    if a.sort.is_bool:
        if a.is_const:
            return b if a.value else not_(b)
        if b.is_const:
            return a if b.value else not_(a)
    if a._id > b._id:
        a, b = b, a
    return Term(EQ, (a, b), BOOL)


# ---------------------------------------------------------------------------
# Bitvector operations (with constant folding)
# ---------------------------------------------------------------------------


def _expect_bool(t: Term, op: str) -> None:
    if not isinstance(t, Term) or not t.sort.is_bool:
        raise TypeError(f"{op} expects Bool terms, got {t!r}")


def _expect_bv(t: Term, op: str) -> None:
    if not isinstance(t, Term) or not t.sort.is_bv:
        raise TypeError(f"{op} expects bitvector terms, got {t!r}")


def _expect_same_width(a: Term, b: Term, op: str) -> None:
    _expect_bv(a, op)
    _expect_bv(b, op)
    if a.width != b.width:
        raise TypeError(f"{op} width mismatch: {a.width} vs {b.width}")


def bvnot(a: Term) -> Term:
    _expect_bv(a, "bvnot")
    if a.is_const:
        return bv_const(~a.value, a.width)
    if a.op == BVNOT:
        return a.args[0]
    return Term(BVNOT, (a,), a.sort)


def bvneg(a: Term) -> Term:
    _expect_bv(a, "bvneg")
    if a.is_const:
        return bv_const(-a.value, a.width)
    return Term(BVNEG, (a,), a.sort)


def _binop(op: str, a: Term, b: Term, fold) -> Term:
    _expect_same_width(a, b, op)
    if a.is_const and b.is_const:
        return bv_const(fold(a.value, b.value), a.width)
    if op in _COMMUTATIVE and a._id > b._id:
        a, b = b, a
    return Term(op, (a, b), a.sort)


def bvand(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, BVAND)
    if a.is_const and b.is_const:
        return bv_const(a.value & b.value, a.width)
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return bv_const(0, a.width)
            if x.value == wordlib.mask(a.width):
                return y
    if a is b:
        return a
    return _binop(BVAND, a, b, lambda x, y: x & y)


def bvor(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, BVOR)
    if a.is_const and b.is_const:
        return bv_const(a.value | b.value, a.width)
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return y
            if x.value == wordlib.mask(a.width):
                return bv_const(wordlib.mask(a.width), a.width)
    if a is b:
        return a
    return _binop(BVOR, a, b, lambda x, y: x | y)


def bvxor(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, BVXOR)
    if a is b:
        return bv_const(0, a.width)
    for x, y in ((a, b), (b, a)):
        if x.is_const and x.value == 0:
            return y
        if x.is_const and x.value == wordlib.mask(a.width):
            return bvnot(y)
    return _binop(BVXOR, a, b, lambda x, y: x ^ y)


def bvadd(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, BVADD)
    for x, y in ((a, b), (b, a)):
        if x.is_const and x.value == 0:
            return y
    return _binop(BVADD, a, b, lambda x, y: x + y)


def bvsub(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, BVSUB)
    if b.is_const and b.value == 0:
        return a
    if a is b:
        return bv_const(0, a.width)
    if a.is_const and b.is_const:
        return bv_const(a.value - b.value, a.width)
    return Term(BVSUB, (a, b), a.sort)


def bvmul(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, BVMUL)
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return bv_const(0, a.width)
            if x.value == 1:
                return y
    return _binop(BVMUL, a, b, lambda x, y: x * y)


def bvshl(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, BVSHL)
    if b.is_const:
        if b.value == 0:
            return a
        if b.value >= a.width:
            return bv_const(0, a.width)
        if a.is_const:
            return bv_const(a.value << b.value, a.width)
    return Term(BVSHL, (a, b), a.sort)


def bvlshr(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, BVLSHR)
    if b.is_const:
        if b.value == 0:
            return a
        if b.value >= a.width:
            return bv_const(0, a.width)
        if a.is_const:
            return bv_const(a.value >> b.value, a.width)
    return Term(BVLSHR, (a, b), a.sort)


def bvashr(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, BVASHR)
    if b.is_const:
        if b.value == 0:
            return a
        if a.is_const:
            shift = min(b.value, a.width)
            signed = wordlib.to_signed(a.value, a.width)
            return bv_const(signed >> shift, a.width)
    return Term(BVASHR, (a, b), a.sort)


def extract(a: Term, hi: int, lo: int) -> Term:
    _expect_bv(a, EXTRACT)
    if not 0 <= lo <= hi < a.width:
        raise ValueError(f"extract [{hi}:{lo}] out of range for width {a.width}")
    if lo == 0 and hi == a.width - 1:
        return a
    if a.is_const:
        return bv_const(wordlib.extract(a.value, hi, lo), hi - lo + 1)
    return Term(EXTRACT, (a,), BV(hi - lo + 1), params=(hi, lo))


def concat(hi_part: Term, lo_part: Term) -> Term:
    """Concatenate: `hi_part` becomes the most-significant bits."""
    _expect_bv(hi_part, CONCAT)
    _expect_bv(lo_part, CONCAT)
    width = hi_part.width + lo_part.width
    if hi_part.is_const and lo_part.is_const:
        return bv_const((hi_part.value << lo_part.width) | lo_part.value, width)
    return Term(CONCAT, (hi_part, lo_part), BV(width))


def zext(a: Term, to_width: int) -> Term:
    _expect_bv(a, ZEXT)
    if to_width < a.width:
        raise ValueError(f"zext must widen ({a.width} -> {to_width})")
    if to_width == a.width:
        return a
    if a.is_const:
        return bv_const(a.value, to_width)
    return Term(ZEXT, (a,), BV(to_width), params=(to_width,))


def sext(a: Term, to_width: int) -> Term:
    _expect_bv(a, SEXT)
    if to_width < a.width:
        raise ValueError(f"sext must widen ({a.width} -> {to_width})")
    if to_width == a.width:
        return a
    if a.is_const:
        return bv_const(wordlib.sign_extend(a.value, a.width, to_width), to_width)
    return Term(SEXT, (a,), BV(to_width), params=(to_width,))


def ult(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, ULT)
    if a.is_const and b.is_const:
        return bool_const(a.value < b.value)
    if a is b:
        return false()
    if b.is_const and b.value == 0:
        return false()
    return Term(ULT, (a, b), BOOL)


def ule(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, ULE)
    if a.is_const and b.is_const:
        return bool_const(a.value <= b.value)
    if a is b:
        return true()
    if a.is_const and a.value == 0:
        return true()
    if b.is_const and b.value == wordlib.mask(b.width):
        return true()
    return Term(ULE, (a, b), BOOL)


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def free_vars(term: Term) -> list[Term]:
    """All distinct VAR leaves of `term` in first-seen (deterministic) order."""
    seen: set[int] = set()
    out: list[Term] = []
    stack = [term]
    while stack:
        node = stack.pop()
        if node._id in seen:
            continue
        seen.add(node._id)
        if node.op == VAR:
            out.append(node)
        else:
            stack.extend(reversed(node.args))
    out.sort(key=lambda t: (t.name or ""))
    return out


def term_size(term: Term) -> int:
    """Number of distinct nodes in the DAG rooted at `term`."""
    seen: set[int] = set()
    stack = [term]
    while stack:
        node = stack.pop()
        if node._id in seen:
            continue
        seen.add(node._id)
        stack.extend(node.args)
    return len(seen)
