"""Rule-based term simplification.

The constructors in :mod:`repro.smt.ast` already fold constants; this module
adds the structural rules that make bit-manipulation lemmas (the bulk of the
page-table proof) cheap to discharge: pushing extracts through masks and
shifts, collapsing shift chains, and normalising comparisons.

The rewriter is deliberately a separate, optional pass so the ablation
benchmark (`bench_ablation_smt`) can measure its effect on VC times.
"""

from __future__ import annotations

from repro import wordlib
from repro.smt import ast
from repro.smt.ast import Term


def simplify(term: Term) -> Term:
    """Rewrite `term` bottom-up to a fixpoint (single bottom-up pass per
    iteration, at most a few iterations in practice)."""
    cache: dict[Term, Term] = {}
    for _ in range(8):
        result = _simplify_pass(term, cache)
        if result is term:
            return result
        term = result
        cache = {}
    return term


def _simplify_pass(term: Term, cache: dict[Term, Term]) -> Term:
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        node, ready = stack.pop()
        if node in cache:
            continue
        if not ready:
            stack.append((node, True))
            for arg in node.args:
                if arg not in cache:
                    stack.append((arg, False))
            continue
        new_args = tuple(cache[a] for a in node.args)
        rebuilt = _rebuild(node, new_args)
        cache[node] = _rewrite_node(rebuilt)
    return cache[term]


def _rebuild(node: Term, args: tuple[Term, ...]) -> Term:
    """Re-run the smart constructor for `node` with simplified children."""
    if args == node.args:
        return node
    op = node.op
    if op == ast.NOT:
        return ast.not_(args[0])
    if op == ast.AND:
        return ast.and_(*args)
    if op == ast.OR:
        return ast.or_(*args)
    if op == ast.XOR:
        return ast.xor_(args[0], args[1])
    if op == ast.IMPLIES:
        return ast.implies(args[0], args[1])
    if op == ast.ITE:
        return ast.ite(args[0], args[1], args[2])
    if op == ast.EQ:
        return ast.eq(args[0], args[1])
    if op == ast.ULT:
        return ast.ult(args[0], args[1])
    if op == ast.ULE:
        return ast.ule(args[0], args[1])
    if op == ast.BVNOT:
        return ast.bvnot(args[0])
    if op == ast.BVNEG:
        return ast.bvneg(args[0])
    if op == ast.BVAND:
        return ast.bvand(args[0], args[1])
    if op == ast.BVOR:
        return ast.bvor(args[0], args[1])
    if op == ast.BVXOR:
        return ast.bvxor(args[0], args[1])
    if op == ast.BVADD:
        return ast.bvadd(args[0], args[1])
    if op == ast.BVSUB:
        return ast.bvsub(args[0], args[1])
    if op == ast.BVMUL:
        return ast.bvmul(args[0], args[1])
    if op == ast.BVSHL:
        return ast.bvshl(args[0], args[1])
    if op == ast.BVLSHR:
        return ast.bvlshr(args[0], args[1])
    if op == ast.BVASHR:
        return ast.bvashr(args[0], args[1])
    if op == ast.EXTRACT:
        return ast.extract(args[0], node.params[0], node.params[1])
    if op == ast.CONCAT:
        return ast.concat(args[0], args[1])
    if op == ast.ZEXT:
        return ast.zext(args[0], node.params[0])
    if op == ast.SEXT:
        return ast.sext(args[0], node.params[0])
    return node


def _rewrite_node(node: Term) -> Term:
    op = node.op
    if op == ast.EXTRACT:
        return _rewrite_extract(node)
    if op == ast.BVLSHR:
        return _rewrite_lshr(node)
    if op == ast.BVSHL:
        return _rewrite_shl(node)
    if op == ast.BVAND:
        return _rewrite_and(node)
    if op == ast.EQ:
        return _rewrite_eq(node)
    if op == ast.ZEXT:
        return _rewrite_zext(node)
    return node


def _rewrite_extract(node: Term) -> Term:
    hi, lo = node.params
    inner = node.args[0]
    # extract of extract composes.
    if inner.op == ast.EXTRACT:
        ihi, ilo = inner.params
        del ihi
        return ast.extract(inner.args[0], hi + ilo, lo + ilo)
    # extract distributes into concat when fully inside one side.
    if inner.op == ast.CONCAT:
        hi_part, lo_part = inner.args
        if hi >= lo_part.width and lo >= lo_part.width:
            return ast.extract(hi_part, hi - lo_part.width, lo - lo_part.width)
        if hi < lo_part.width:
            return ast.extract(lo_part, hi, lo)
    # extract of zext: inside original -> extract original; above -> zeros;
    # straddling the boundary -> zext of the original's top part.
    if inner.op == ast.ZEXT:
        orig = inner.args[0]
        if hi < orig.width:
            return ast.extract(orig, hi, lo)
        if lo >= orig.width:
            return ast.bv_const(0, hi - lo + 1)
        return ast.zext(ast.extract(orig, orig.width - 1, lo), hi - lo + 1)
    # extract of a right-shift by constant composes into one extract.
    if inner.op == ast.BVLSHR and inner.args[1].is_const:
        shift = inner.args[1].value
        if hi + shift < inner.width:
            return ast.extract(inner.args[0], hi + shift, lo + shift)
    # extract of a left-shift by constant: fully above the shifted-in zeros.
    if inner.op == ast.BVSHL and inner.args[1].is_const:
        shift = inner.args[1].value
        if lo >= shift:
            return ast.extract(inner.args[0], hi - shift, lo - shift)
        if hi < shift:
            return ast.bv_const(0, hi - lo + 1)
    # extract distributes over bitwise ops.
    if inner.op in (ast.BVAND, ast.BVOR, ast.BVXOR):
        left = ast.extract(inner.args[0], hi, lo)
        right = ast.extract(inner.args[1], hi, lo)
        if inner.op == ast.BVAND:
            return ast.bvand(left, right)
        if inner.op == ast.BVOR:
            return ast.bvor(left, right)
        return ast.bvxor(left, right)
    if inner.op == ast.BVNOT:
        return ast.bvnot(ast.extract(inner.args[0], hi, lo))
    if inner.op == ast.ITE:
        return ast.ite(
            inner.args[0],
            ast.extract(inner.args[1], hi, lo),
            ast.extract(inner.args[2], hi, lo),
        )
    return node


def _rewrite_lshr(node: Term) -> Term:
    a, b = node.args
    if not b.is_const:
        return node
    shift = b.value
    # (x >> c1) >> c2 == x >> (c1+c2)
    if a.op == ast.BVLSHR and a.args[1].is_const:
        total = shift + a.args[1].value
        return ast.bvlshr(a.args[0], ast.bv_const(total, a.width))
    # (x << c) >> c when we can't cancel in general; handled via extract rules.
    # Rewrite x >> c as zext(extract(x, w-1, c)) to expose structure.
    if 0 < shift < a.width:
        return ast.zext(ast.extract(a, a.width - 1, shift), a.width)
    return node


def _rewrite_shl(node: Term) -> Term:
    a, b = node.args
    if not b.is_const:
        return node
    shift = b.value
    if a.op == ast.BVSHL and a.args[1].is_const:
        total = shift + a.args[1].value
        return ast.bvshl(a.args[0], ast.bv_const(total, a.width))
    # Rewrite x << c as concat(extract(x, w-1-c, 0), zeros) to expose structure.
    if 0 < shift < a.width:
        low = ast.extract(a, a.width - 1 - shift, 0)
        return ast.concat(low, ast.bv_const(0, shift))
    return node


def _rewrite_and(node: Term) -> Term:
    a, b = node.args
    const, other = (a, b) if a.is_const else ((b, a) if b.is_const else (None, None))
    if const is None:
        return node
    value = const.value
    width = node.width
    # Contiguous mask starting at bit 0: x & 0..01..1 == zext(extract(x)).
    if value != 0 and value == wordlib.mask(value.bit_length()):
        keep = value.bit_length()
        if keep < width:
            return ast.zext(ast.extract(other, keep - 1, 0), width)
    # Contiguous mask at higher bits: x & (1..10..0) == concat(extract, zeros).
    low_zeros = (value & -value).bit_length() - 1 if value else 0
    shifted = value >> low_zeros
    if value != 0 and shifted == wordlib.mask(shifted.bit_length()):
        hi = low_zeros + shifted.bit_length() - 1
        if hi == width - 1 and low_zeros > 0:
            field = ast.extract(other, hi, low_zeros)
            return ast.concat(field, ast.bv_const(0, low_zeros))
        if hi < width - 1 and low_zeros > 0:
            field = ast.extract(other, hi, low_zeros)
            return ast.zext(
                ast.concat(field, ast.bv_const(0, low_zeros)), width
            )
    return node


def _rewrite_zext(node: Term) -> Term:
    inner = node.args[0]
    if inner.op == ast.ZEXT:
        return ast.zext(inner.args[0], node.width)
    return node


def _rewrite_eq(node: Term) -> Term:
    a, b = node.args
    if a.sort.is_bv and a.op == ast.ZEXT and b.op == ast.ZEXT:
        if a.args[0].width == b.args[0].width:
            return ast.eq(a.args[0], b.args[0])
    if a.sort.is_bv and a.op == ast.CONCAT and b.op == ast.CONCAT:
        a_hi, a_lo = a.args
        b_hi, b_lo = b.args
        if a_lo.width == b_lo.width:
            return ast.and_(ast.eq(a_hi, b_hi), ast.eq(a_lo, b_lo))
    return node
