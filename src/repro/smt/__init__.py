"""A from-scratch QF_BV SMT stack.

This package stands in for the Verus/Z3 toolchain used by the paper.  It
provides:

* :mod:`repro.smt.ast` — hash-consed terms over booleans and bitvectors
* :mod:`repro.smt.rewrite` — a rule-based simplifier
* :mod:`repro.smt.aig` — an and-inverter graph with structural hashing
* :mod:`repro.smt.bitblast` — lowering of bitvector terms to AIG literals
* :mod:`repro.smt.cnf` — Tseitin transformation of AIG cones to CNF
* :mod:`repro.smt.sat` — a CDCL SAT solver (watched literals, VSIDS, 1UIP)
* :mod:`repro.smt.solver` — the user-facing Solver / prove() API
* :mod:`repro.smt.interp` — a concrete evaluator used as a test oracle
"""

from repro.smt.ast import (
    BV,
    BOOL,
    Term,
    bv_const,
    bv_var,
    bool_var,
    true,
    false,
    and_,
    or_,
    not_,
    xor_,
    implies,
    ite,
)
from repro.smt.solver import Solver, SolverResult, prove, counterexample

__all__ = [
    "BV",
    "BOOL",
    "Term",
    "bv_const",
    "bv_var",
    "bool_var",
    "true",
    "false",
    "and_",
    "or_",
    "not_",
    "xor_",
    "implies",
    "ite",
    "Solver",
    "SolverResult",
    "prove",
    "counterexample",
]
