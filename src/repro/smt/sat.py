"""A CDCL SAT solver.

Implements the standard modern architecture: two-watched-literal propagation,
first-UIP conflict analysis with clause learning, VSIDS-style variable
activities with phase saving, Luby restarts, and periodic deletion of
low-activity learnt clauses.

The solver is *incremental* in the MiniSat sense: `solve()` accepts an
``assumptions`` list of literals that are enqueued as pseudo-decisions below
every real decision, so one solver instance can answer a sequence of
"satisfiable under these extra units?" queries while keeping its clause
database — and everything it has learnt — between calls.  Clauses may also
be added between calls (the trail is rewound to the root level after each
solve), which is what lets the SMT layer grow one shared CNF cone by cone
across a family of related goals.

Variables are positive integers; literals are non-zero signed integers
(DIMACS convention).  The solver is deliberately dependency-free so it can be
tested exhaustively against brute-force enumeration.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

UNDEF = -1


class BudgetExceeded(RuntimeError):
    """Raised when `solve(max_conflicts=...)` runs out of conflict budget.

    A subclass of the RuntimeError historically raised here, so existing
    callers keep working; the prover's scheduler catches it specifically to
    distinguish a timed-out VC from a refuted one and to retry with a
    larger budget.
    """

    def __init__(self, budget: int, conflicts: int) -> None:
        super().__init__(
            f"SAT solver exceeded conflict budget ({conflicts} > {budget})"
        )
        self.budget = budget
        self.conflicts = conflicts


@dataclass
class SatStats:
    """Counters exposed for the evaluation harness."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learnt_clauses: int = 0
    deleted_clauses: int = 0


class _Clause:
    __slots__ = ("lits", "learnt", "activity")

    def __init__(self, lits: list[int], learnt: bool = False) -> None:
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0


@dataclass
class SatResult:
    """Outcome of a solve call."""

    sat: bool
    model: dict[int, bool] = field(default_factory=dict)
    stats: SatStats = field(default_factory=SatStats)


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence
    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ..."""
    while True:
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


class SatSolver:
    """CDCL solver over a fixed number of variables."""

    def __init__(self, num_vars: int = 0) -> None:
        self.num_vars = 0
        self._assign: list[int] = [UNDEF]
        self._level: list[int] = [0]
        self._reason: list[_Clause | None] = [None]
        self._activity: list[float] = [0.0]
        self._polarity: list[bool] = [False]
        self._watches: dict[int, list[_Clause]] = {}
        self._clauses: list[_Clause] = []
        self._learnts: list[_Clause] = []
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._order_heap: list[tuple[float, int]] = []
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._cla_inc = 1.0
        self._unsat = False
        self.stats = SatStats()
        if num_vars:
            self.ensure_vars(num_vars)

    # -- problem construction ------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        self._assign.append(UNDEF)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._polarity.append(False)
        self._watches[self.num_vars] = []
        self._watches[-self.num_vars] = []
        heapq.heappush(self._order_heap, (0.0, self.num_vars))
        return self.num_vars

    def ensure_vars(self, count: int) -> None:
        while self.num_vars < count:
            self.new_var()

    def add_clause(self, lits: list[int]) -> None:
        """Add a problem clause; duplicate literals are removed and
        tautologies dropped."""
        if self._unsat:
            return
        seen: set[int] = set()
        cleaned: list[int] = []
        for lit in lits:
            var = abs(lit)
            if var == 0 or var > self.num_vars:
                raise ValueError(f"literal {lit} out of range")
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            value = self._value(lit)
            if value == 1 and self._level[var] == 0:
                return  # already satisfied at root
            if value == 0 and self._level[var] == 0:
                continue  # falsified at root: drop literal
            seen.add(lit)
            cleaned.append(lit)
        if not cleaned:
            self._unsat = True
            return
        if len(cleaned) == 1:
            if not self._enqueue(cleaned[0], None):
                self._unsat = True
            elif self._propagate() is not None:
                self._unsat = True
            return
        clause = _Clause(cleaned)
        self._clauses.append(clause)
        self._watch(clause)

    def _watch(self, clause: _Clause) -> None:
        self._watches[clause.lits[0]].append(clause)
        self._watches[clause.lits[1]].append(clause)

    # -- assignment primitives -------------------------------------------------

    def _value(self, lit: int) -> int:
        """1 = true, 0 = false, UNDEF = unassigned."""
        value = self._assign[abs(lit)]
        if value == UNDEF:
            return UNDEF
        return value if lit > 0 else 1 - value

    def _enqueue(self, lit: int, reason: _Clause | None) -> bool:
        value = self._value(lit)
        if value != UNDEF:
            return value == 1
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> _Clause | None:
        """Unit propagation; returns a conflicting clause or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_lit = -lit
            watchers = self._watches[false_lit]
            i = 0
            end = len(watchers)
            while i < end:
                clause = watchers[i]
                lits = clause.lits
                # Normalise: the false literal goes to position 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._value(first) == 1:
                    i += 1
                    continue
                # Look for a replacement watch.
                found = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) != 0:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[lits[1]].append(clause)
                        watchers[i] = watchers[end - 1]
                        end -= 1
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                if self._value(first) == 0:
                    del watchers[end:]
                    self._qhead = len(self._trail)
                    return clause
                self._enqueue(first, clause)
                i += 1
            del watchers[end:]
        return None

    # -- conflict analysis -------------------------------------------------------

    def _analyze(self, conflict: _Clause) -> tuple[list[int], int]:
        """First-UIP analysis: returns (learnt clause, backjump level); the
        asserting literal is placed first."""
        learnt: list[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        reason: _Clause | None = conflict
        index = len(self._trail) - 1
        current_level = len(self._trail_lim)

        while True:
            assert reason is not None
            self._bump_clause(reason)
            start = 0 if lit is None else 1
            for other in reason.lits[start:]:
                var = abs(other)
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump_var(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learnt.append(other)
            # Walk back the trail to the next marked literal.
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[var]
        learnt[0] = -lit

        # Clause minimisation: drop literals implied by the rest.
        marked = set(abs(l) for l in learnt)
        kept = [learnt[0]]
        for other in learnt[1:]:
            reason = self._reason[abs(other)]
            if reason is None:
                kept.append(other)
                continue
            if all(
                abs(x) in marked or self._level[abs(x)] == 0
                for x in reason.lits
                if x != -other
            ):
                continue
            kept.append(other)
        learnt = kept

        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest decision level in the clause.
        max_i = 1
        for i in range(2, len(learnt)):
            if self._level[abs(learnt[i])] > self._level[abs(learnt[max_i])]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self._level[abs(learnt[1])]

    def _backtrack(self, target_level: int) -> None:
        if len(self._trail_lim) <= target_level:
            return
        boundary = self._trail_lim[target_level]
        for lit in reversed(self._trail[boundary:]):
            var = abs(lit)
            self._polarity[var] = self._assign[var] == 1
            self._assign[var] = UNDEF
            self._reason[var] = None
            heapq.heappush(self._order_heap, (-self._activity[var], var))
        del self._trail[boundary:]
        del self._trail_lim[target_level:]
        self._qhead = len(self._trail)

    # -- heuristics ---------------------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._assign[var] == UNDEF:
            heapq.heappush(self._order_heap, (-self._activity[var], var))
        if self._activity[var] > 1e100:
            for i in range(1, self.num_vars + 1):
                self._activity[i] *= 1e-100
            self._var_inc *= 1e-100
            self._order_heap = [
                (-self._activity[v], v)
                for v in range(1, self.num_vars + 1)
                if self._assign[v] == UNDEF
            ]
            heapq.heapify(self._order_heap)

    def _bump_clause(self, clause: _Clause) -> None:
        if not clause.learnt:
            return
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learnts:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decide(self) -> int:
        """Pick an unassigned variable with (approximately) highest activity
        using a lazy heap: stale entries are skipped on pop."""
        while self._order_heap:
            _, var = heapq.heappop(self._order_heap)
            if self._assign[var] == UNDEF:
                return var
        # Heap exhausted by staleness; fall back to a scan (rare).
        for var in range(1, self.num_vars + 1):
            if self._assign[var] == UNDEF:
                return var
        return 0

    def _reduce_learnts(self) -> None:
        self._learnts.sort(key=lambda c: c.activity)
        keep_from = len(self._learnts) // 2
        removed: list[_Clause] = []
        kept: list[_Clause] = []
        for i, clause in enumerate(self._learnts):
            is_reason = any(
                self._reason[abs(l)] is clause for l in clause.lits[:1]
            )
            if i < keep_from and len(clause.lits) > 2 and not is_reason:
                removed.append(clause)
            else:
                kept.append(clause)
        for clause in removed:
            for lit in clause.lits[:2]:
                try:
                    self._watches[lit].remove(clause)
                except ValueError:
                    pass
            self.stats.deleted_clauses += 1
        self._learnts = kept

    # -- main loop -------------------------------------------------------------------

    def solve(self, max_conflicts: int | None = None,
              assumptions: list[int] | None = None) -> SatResult:
        """Run the CDCL loop.  Returns a :class:`SatResult`; if
        `max_conflicts` is hit a :class:`BudgetExceeded` is raised (our VCs
        are expected to be decided).

        `assumptions` are literals held true for this call only, enqueued as
        pseudo-decisions at levels 1..k below every real decision (the
        MiniSat discipline).  ``sat=False`` with assumptions means
        "unsatisfiable *under these assumptions*"; the clause database stays
        usable, and the trail is rewound to the root level on every exit so
        further clauses and further `solve()` calls are welcome.

        `max_conflicts` is a budget *for this call*: the limit applies to
        conflicts incurred since entry, not to the solver's lifetime
        counter, so a long-lived incremental solver does not inherit earlier
        calls' spending.
        """
        assumptions = list(assumptions) if assumptions else []
        for lit in assumptions:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"assumption literal {lit} out of range")
        self._backtrack(0)
        if self._unsat:
            return SatResult(sat=False, stats=self.stats)
        if self._propagate() is not None:
            self._unsat = True
            return SatResult(sat=False, stats=self.stats)

        budget_start = self.stats.conflicts
        restart_count = 0
        conflicts_until_restart = 100 * _luby(1)
        conflicts_in_run = 0
        max_learnts = max(1000, len(self._clauses) // 2)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_in_run += 1
                if len(self._trail_lim) == 0:
                    self._unsat = True
                    return SatResult(sat=False, stats=self.stats)
                learnt, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._unsat = True
                        return SatResult(sat=False, stats=self.stats)
                else:
                    clause = _Clause(learnt, learnt=True)
                    self._learnts.append(clause)
                    self._watch(clause)
                    self._bump_clause(clause)
                    self.stats.learnt_clauses += 1
                    self._enqueue(learnt[0], clause)
                self._var_inc *= self._var_decay
                self._cla_inc *= 1.001
                spent = self.stats.conflicts - budget_start
                if max_conflicts is not None and spent > max_conflicts:
                    self._backtrack(0)
                    raise BudgetExceeded(max_conflicts, spent)
                continue

            if conflicts_in_run >= conflicts_until_restart:
                restart_count += 1
                self.stats.restarts += 1
                conflicts_in_run = 0
                conflicts_until_restart = 100 * _luby(restart_count + 1)
                self._backtrack(0)
                continue

            if len(self._learnts) > max_learnts:
                self._reduce_learnts()
                max_learnts = int(max_learnts * 1.3)

            if len(self._trail_lim) < len(assumptions):
                # Establish the next assumption as a pseudo-decision.
                lit = assumptions[len(self._trail_lim)]
                value = self._value(lit)
                if value == 1:
                    # Already implied: open a dummy level so level index k
                    # keeps corresponding to assumption k.
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == 0:
                    # The clause database (plus earlier assumptions) forces
                    # the complement: UNSAT under these assumptions.
                    self._backtrack(0)
                    return SatResult(sat=False, stats=self.stats)
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                continue

            var = self._decide()
            if var == 0:
                model = {
                    v: self._assign[v] == 1 for v in range(1, self.num_vars + 1)
                }
                self._backtrack(0)
                return SatResult(sat=True, model=model, stats=self.stats)
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            lit = var if self._polarity[var] else -var
            self._enqueue(lit, None)
