"""User-facing SMT solving API.

Pipeline: term rewriting -> bit-blasting into an AIG (structural hashing) ->
Tseitin CNF of the output cone -> CDCL SAT.  Models are lifted back to a
mapping from variable names to Python ints/bools and re-checked against the
concrete evaluator before being returned, so a buggy lower layer can never
produce a bogus counterexample silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.smt import ast, interp, rewrite
from repro.smt.aig import FALSE, TRUE
from repro.smt.bitblast import BitBlaster
from repro.smt.cnf import encode
from repro.smt.sat import SatSolver
from repro.smt.ast import Term


@dataclass
class SolverStats:
    """Breakdown of where solving time went, for the evaluation harness.

    The `*_seconds` fields are wall-clock and vary run to run; everything
    else is a deterministic function of the formula and the solver
    configuration, which is what the proof cache persists and what the
    determinism tests compare.
    """

    rewrite_seconds: float = 0.0
    blast_seconds: float = 0.0
    sat_seconds: float = 0.0
    aig_nodes: int = 0
    cnf_vars: int = 0
    cnf_clauses: int = 0
    decided_structurally: bool = False
    sat_conflicts: int = 0
    sat_decisions: int = 0
    sat_propagations: int = 0
    sat_restarts: int = 0

    @property
    def solver_seconds(self) -> float:
        """Total time attributable to the solving pipeline itself."""
        return self.rewrite_seconds + self.blast_seconds + self.sat_seconds

    def deterministic(self) -> dict[str, int | bool]:
        """The machine-independent counters (cacheable / comparable)."""
        return {
            "aig_nodes": self.aig_nodes,
            "cnf_vars": self.cnf_vars,
            "cnf_clauses": self.cnf_clauses,
            "decided_structurally": self.decided_structurally,
            "sat_conflicts": self.sat_conflicts,
            "sat_decisions": self.sat_decisions,
            "sat_propagations": self.sat_propagations,
            "sat_restarts": self.sat_restarts,
        }


@dataclass
class SolverResult:
    """Outcome of a `check()` call."""

    sat: bool
    model: dict[str, int | bool] = field(default_factory=dict)
    stats: SolverStats = field(default_factory=SolverStats)


class Solver:
    """An incremental-ish solver: collect assertions, then `check()`.

    `simplify=False` disables the rewriting pass (used by the SMT ablation
    benchmark to quantify how much the rewriter buys).
    """

    def __init__(self, simplify: bool = True) -> None:
        self._assertions: list[Term] = []
        self.simplify = simplify

    def add(self, term: Term) -> None:
        if not term.sort.is_bool:
            raise TypeError(f"assertions must be Bool, got {term!r}")
        self._assertions.append(term)

    def check(self, max_conflicts: int | None = None) -> SolverResult:
        stats = SolverStats()
        original = ast.and_(*self._assertions) if self._assertions else ast.true()
        formula = original

        with obs.span("smt.rewrite", histogram="smt.phase_seconds",
                      labels={"phase": "rewrite"}) as span:
            if self.simplify:
                formula = rewrite.simplify(formula)
        stats.rewrite_seconds = span.elapsed

        if formula.is_const:
            stats.decided_structurally = True
            if formula.value:
                return SolverResult(
                    sat=True, model=self._arbitrary_model(original), stats=stats
                )
            return SolverResult(sat=False, stats=stats)

        with obs.span("smt.blast", histogram="smt.phase_seconds",
                      labels={"phase": "blast"}) as span:
            blaster = BitBlaster()
            out = blaster.blast_bool(formula)
        stats.blast_seconds = span.elapsed
        stats.aig_nodes = len(blaster.aig)

        if out == TRUE:
            stats.decided_structurally = True
            model = self._arbitrary_model(original)
            return SolverResult(sat=True, model=model, stats=stats)
        if out == FALSE:
            stats.decided_structurally = True
            return SolverResult(sat=False, stats=stats)

        sat_solver = SatSolver()
        mapping = encode(blaster.aig, [out], sat_solver)
        stats.cnf_vars = sat_solver.num_vars
        stats.cnf_clauses = mapping.num_clauses

        with obs.span("smt.sat", histogram="smt.phase_seconds",
                      labels={"phase": "sat"}) as span:
            result = sat_solver.solve(max_conflicts=max_conflicts)
        stats.sat_seconds = span.elapsed
        stats.sat_conflicts = result.stats.conflicts
        stats.sat_decisions = result.stats.decisions
        stats.sat_propagations = result.stats.propagations
        stats.sat_restarts = result.stats.restarts

        if not result.sat:
            return SolverResult(sat=False, stats=stats)

        model = self._lift_model(formula, blaster, mapping, result.model)
        # Variables the simplifier eliminated are unconstrained: default them
        # so the model covers the *original* assertions.
        for var in ast.free_vars(original):
            if var.name not in model:
                model[var.name] = False if var.sort.is_bool else 0
        value = interp.evaluate(original, model)
        if value is not True:
            raise RuntimeError(
                "internal solver error: SAT model fails concrete evaluation"
            )
        return SolverResult(sat=True, model=model, stats=stats)

    @staticmethod
    def _arbitrary_model(formula: Term) -> dict[str, int | bool]:
        """When the formula is structurally TRUE any assignment works."""
        model: dict[str, int | bool] = {}
        for var in ast.free_vars(formula):
            model[var.name] = False if var.sort.is_bool else 0
        return model

    @staticmethod
    def _lift_model(
        formula: Term,
        blaster: BitBlaster,
        mapping,
        sat_model: dict[int, bool],
    ) -> dict[str, int | bool]:
        from repro.smt.aig import node_of  # local import to avoid cycle noise

        model: dict[str, int | bool] = {}
        for var in ast.free_vars(formula):
            bits = blaster.var_bits(var.name)
            if bits is None:
                model[var.name] = False if var.sort.is_bool else 0
                continue
            bit_values = []
            for lit in bits:
                node = node_of(lit)
                sat_var = mapping.node_to_var.get(node)
                bit_values.append(
                    False if sat_var is None else sat_model.get(sat_var, False)
                )
            if var.sort.is_bool:
                model[var.name] = bit_values[0]
            else:
                value = 0
                for i, bv in enumerate(bit_values):
                    if bv:
                        value |= 1 << i
                model[var.name] = value
        return model


def prove(
    goal: Term, simplify: bool = True, max_conflicts: int | None = None
) -> SolverResult:
    """Attempt to prove `goal` valid: returns sat=False when proved
    (the negation is unsatisfiable), else a counterexample model.

    `max_conflicts` bounds the CDCL search; exceeding it raises
    :class:`repro.smt.sat.BudgetExceeded` — the prover's per-VC "timeout"
    mechanism, expressed as a deterministic conflict budget rather than a
    wall-clock deadline so results do not depend on machine speed or job
    count."""
    solver = Solver(simplify=simplify)
    solver.add(ast.not_(goal))
    return solver.check(max_conflicts=max_conflicts)


def counterexample(goal: Term) -> dict[str, int | bool] | None:
    """None when `goal` is valid, otherwise a falsifying assignment."""
    result = prove(goal)
    if result.sat:
        return result.model
    return None
