"""User-facing SMT solving API.

Pipeline: term rewriting -> bit-blasting into an AIG (structural hashing) ->
Tseitin CNF of the output cone -> SatELite-style CNF preprocessing
(:mod:`repro.smt.preprocess`) -> CDCL SAT.  Models are lifted back to a
mapping from variable names to Python ints/bools and re-checked against the
concrete evaluator before being returned, so a buggy lower layer — the
preprocessor's model reconstruction included — can never produce a bogus
counterexample silently.

Two entry points share the pipeline:

* :class:`Solver` / :func:`prove` — the single-shot path: one goal, one
  solver, full preprocessing (variable elimination included).
* :class:`FamilySolver` — the incremental path: a *family* of
  structurally-similar goals discharged through one shared AIG, one shared
  CNF, and one shared CDCL instance.  Every goal's negation cone is encoded
  unasserted up front, the union CNF is preprocessed once (full reductions,
  with primary inputs and output variables frozen), and each member is
  solved under a per-goal assumption literal — so structural hashing,
  preprocessing, and learnt clauses all amortise across the family.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import obs
from repro.smt import ast, interp, rewrite
from repro.smt.aig import FALSE, TRUE
from repro.smt.bitblast import BitBlaster
from repro.smt.cnf import CnfMapping, encode, output_literal
from repro.smt.preprocess import CnfBuffer, PreprocessResult, preprocess
from repro.smt.sat import SatSolver
from repro.smt.ast import Term


@dataclass
class SolverStats:
    """Breakdown of where solving time went, for the evaluation harness.

    The `*_seconds` fields are wall-clock and vary run to run; everything
    else is a deterministic function of the formula and the solver
    configuration, which is what the proof cache persists and what the
    determinism tests compare.
    """

    rewrite_seconds: float = 0.0
    blast_seconds: float = 0.0
    preprocess_seconds: float = 0.0
    sat_seconds: float = 0.0
    aig_nodes: int = 0
    cnf_vars: int = 0
    cnf_clauses: int = 0
    #: Clauses actually loaded into the CDCL solver after preprocessing
    #: (equals `cnf_clauses` when preprocessing is disabled or skipped).
    cnf_clauses_preprocessed: int = 0
    decided_structurally: bool = False
    #: The preprocessor alone settled the query (root-level refutation or
    #: a clause set reduced to nothing) — no CDCL search was needed.
    decided_by_preprocessing: bool = False
    pre_units: int = 0
    pre_pure_literals: int = 0
    pre_subsumed: int = 0
    pre_strengthened: int = 0
    pre_eliminated_vars: int = 0
    sat_conflicts: int = 0
    sat_decisions: int = 0
    sat_propagations: int = 0
    sat_restarts: int = 0

    @property
    def solver_seconds(self) -> float:
        """Total time attributable to the solving pipeline itself."""
        return (self.rewrite_seconds + self.blast_seconds
                + self.preprocess_seconds + self.sat_seconds)

    def deterministic(self) -> dict[str, int | bool]:
        """The machine-independent counters (cacheable / comparable)."""
        return {
            "aig_nodes": self.aig_nodes,
            "cnf_vars": self.cnf_vars,
            "cnf_clauses": self.cnf_clauses,
            "cnf_clauses_preprocessed": self.cnf_clauses_preprocessed,
            "decided_structurally": self.decided_structurally,
            "decided_by_preprocessing": self.decided_by_preprocessing,
            "pre_units": self.pre_units,
            "pre_pure_literals": self.pre_pure_literals,
            "pre_subsumed": self.pre_subsumed,
            "pre_strengthened": self.pre_strengthened,
            "pre_eliminated_vars": self.pre_eliminated_vars,
            "sat_conflicts": self.sat_conflicts,
            "sat_decisions": self.sat_decisions,
            "sat_propagations": self.sat_propagations,
            "sat_restarts": self.sat_restarts,
        }

    def absorb_preprocess(self, pre: PreprocessResult) -> None:
        self.pre_units = pre.stats.units_fixed
        self.pre_pure_literals = pre.stats.pure_literals
        self.pre_subsumed = pre.stats.subsumed
        self.pre_strengthened = pre.stats.strengthened
        self.pre_eliminated_vars = pre.stats.eliminated_vars


@dataclass
class SolverResult:
    """Outcome of a `check()` call."""

    sat: bool
    model: dict[str, int | bool] = field(default_factory=dict)
    stats: SolverStats = field(default_factory=SolverStats)


class Solver:
    """An incremental-ish solver: collect assertions, then `check()`.

    `simplify=False` disables the rewriting pass and `preprocess=False` the
    CNF preprocessor (both used by the SMT ablation benchmark to quantify
    what each stage buys).
    """

    def __init__(self, simplify: bool = True, preprocess: bool = True) -> None:
        self._assertions: list[Term] = []
        self.simplify = simplify
        self.preprocess = preprocess

    def add(self, term: Term) -> None:
        if not term.sort.is_bool:
            raise TypeError(f"assertions must be Bool, got {term!r}")
        self._assertions.append(term)

    def check(self, max_conflicts: int | None = None) -> SolverResult:
        stats = SolverStats()
        original = ast.and_(*self._assertions) if self._assertions else ast.true()
        formula = original

        with obs.span("smt.rewrite", histogram="smt.phase_seconds",
                      labels={"phase": "rewrite"}) as span:
            if self.simplify:
                formula = rewrite.simplify(formula)
        stats.rewrite_seconds = span.elapsed

        if formula.is_const:
            stats.decided_structurally = True
            if formula.value:
                return SolverResult(
                    sat=True, model=self._arbitrary_model(original), stats=stats
                )
            return SolverResult(sat=False, stats=stats)

        with obs.span("smt.blast", histogram="smt.phase_seconds",
                      labels={"phase": "blast"}) as span:
            blaster = BitBlaster()
            out = blaster.blast_bool(formula)
        stats.blast_seconds = span.elapsed
        stats.aig_nodes = len(blaster.aig)

        if out == TRUE:
            stats.decided_structurally = True
            model = self._arbitrary_model(original)
            return SolverResult(sat=True, model=model, stats=stats)
        if out == FALSE:
            stats.decided_structurally = True
            return SolverResult(sat=False, stats=stats)

        sat_solver = SatSolver()
        pre: PreprocessResult | None = None
        buffer = CnfBuffer()
        mapping = encode(blaster.aig, [out], buffer)
        stats.cnf_vars = buffer.num_vars
        stats.cnf_clauses = mapping.num_clauses
        if self.preprocess and len(buffer.clauses) >= SINGLE_PREPROCESS_MIN_CLAUSES:
            # Primary inputs carry the lifted model bits; the preprocessor
            # must not resolve them away.
            frozen = [var for node, var in mapping.node_to_var.items()
                      if blaster.aig.definition(node) is None]
            with obs.span("smt.preprocess", histogram="smt.phase_seconds",
                          labels={"phase": "preprocess"}) as span:
                pre = preprocess(buffer.num_vars, buffer.clauses,
                                 frozen=frozen)
            stats.preprocess_seconds = span.elapsed
            stats.absorb_preprocess(pre)
            if pre.unsat:
                stats.decided_by_preprocessing = True
                return SolverResult(sat=False, stats=stats)
            if not pre.clauses:
                stats.decided_by_preprocessing = True
            stats.cnf_clauses_preprocessed = pre.load_into(sat_solver)
        else:
            sat_solver.ensure_vars(buffer.num_vars)
            for clause in buffer.clauses:
                sat_solver.add_clause(clause)
            stats.cnf_clauses_preprocessed = len(buffer.clauses)

        with obs.span("smt.sat", histogram="smt.phase_seconds",
                      labels={"phase": "sat"}) as span:
            result = sat_solver.solve(max_conflicts=max_conflicts)
        stats.sat_seconds = span.elapsed
        stats.sat_conflicts = result.stats.conflicts
        stats.sat_decisions = result.stats.decisions
        stats.sat_propagations = result.stats.propagations
        stats.sat_restarts = result.stats.restarts

        if not result.sat:
            return SolverResult(sat=False, stats=stats)

        sat_model = pre.model(result.model) if pre is not None else result.model
        model = self._lift_model(formula, blaster, mapping, sat_model)
        # Variables the simplifier eliminated are unconstrained: default them
        # so the model covers the *original* assertions.
        for var in ast.free_vars(original):
            if var.name not in model:
                model[var.name] = False if var.sort.is_bool else 0
        value = interp.evaluate(original, model)
        if value is not True:
            raise RuntimeError(
                "internal solver error: SAT model fails concrete evaluation"
            )
        return SolverResult(sat=True, model=model, stats=stats)

    @staticmethod
    def _arbitrary_model(formula: Term) -> dict[str, int | bool]:
        """When the formula is structurally TRUE any assignment works."""
        model: dict[str, int | bool] = {}
        for var in ast.free_vars(formula):
            model[var.name] = False if var.sort.is_bool else 0
        return model

    @staticmethod
    def _lift_model(
        formula: Term,
        blaster: BitBlaster,
        mapping,
        sat_model: dict[int, bool],
    ) -> dict[str, int | bool]:
        from repro.smt.aig import node_of  # local import to avoid cycle noise

        model: dict[str, int | bool] = {}
        for var in ast.free_vars(formula):
            bits = blaster.var_bits(var.name)
            if bits is None:
                model[var.name] = False if var.sort.is_bool else 0
                continue
            bit_values = []
            for lit in bits:
                node = node_of(lit)
                sat_var = mapping.node_to_var.get(node)
                bit_values.append(
                    False if sat_var is None else sat_model.get(sat_var, False)
                )
            if var.sort.is_bool:
                model[var.name] = bit_values[0]
            else:
                value = 0
                for i, bv in enumerate(bit_values):
                    if bv:
                        value |= 1 << i
                model[var.name] = value
        return model


#: Single-shot preprocessing only runs when the asserted cone's CNF is at
#: least this large.  Below it the cone is small enough that CDCL search on
#: the raw Tseitin clauses finishes before the preprocessor's occurrence
#: lists are even built; above it root unit propagation plus the reductions
#: shrink the instance faster than search explores it.  Measured on this
#: population: preprocessing is a wash or a small loss up to ~1.7k clauses
#: and wins >=2x from ~2k up (the hard square-expansion goals, ~6k clauses,
#: solve almost twice as fast preprocessed).
SINGLE_PREPROCESS_MIN_CLAUSES = 2048


#: Family-union preprocessing only runs when the union CNF is at least this
#: large.  Nothing is asserted in a family CNF, so there is no root unit
#: propagation to do the preprocessor's work for free (the thing that makes
#: single-shot preprocessing cheap): the reductions must grind through the
#: whole definitional clause set.  On small unions — where clause sharing
#: already makes each assumption solve nearly free — that grind costs more
#: than every member's search combined; it pays once CDCL search on the raw
#: union would dominate.  Measured crossover on this population sits between
#: ~2.4k clauses (preprocessing still loses) and ~6.4k (preprocessing wins
#: ~30%).
FAMILY_PREPROCESS_MIN_CLAUSES = 4096


class FamilySolver:
    """One shared solving context for a family of structurally-similar goals.

    Construction takes the *whole* family: every goal's negation is
    rewritten and bit-blasted into one shared AIG (structural hashing folds
    the parts the members have in common onto the same nodes), the union of
    the cones is Tseitin-encoded *unasserted* into one CNF, and that CNF is
    preprocessed **once** — full SatELite reductions, variable elimination
    included — with the primary inputs and every member's output variable
    frozen.  Each :meth:`prove_member` call then solves the shared CDCL
    instance under that member's single assumption literal, so
    preprocessing *and* learnt clauses amortise across the family.

    Soundness: unasserted Tseitin cones constrain nothing on their own (the
    clauses are satisfiable definitions ``out_i <-> cone_i(inputs)``), so
    member `k`'s query answers exactly "is cone_k satisfiable?" — the same
    question the single-shot path asks.  Running the satisfiability-only
    preprocessing techniques here is sound because the clause set is
    *complete* before they run (nothing is added afterwards) and
    assumptions only touch frozen variables: bounded variable elimination
    is Davis–Putnam resolution, i.e. exact existential quantification — the
    reduced CNF is equivalent to the original over the surviving variables
    — and a model repaired through the reconstruction stack still passes
    the concrete re-evaluation gate.

    Per-member `SolverStats` report the shared context (AIG/CNF sizes and
    preprocessing counters are those of the union) plus *deltas* of the
    shared solver's cumulative SAT counters, so per-VC stats remain a
    deterministic function of the (ordered) family regardless of which
    scheduler lane runs it.
    """

    def __init__(self, goals: list[Term], simplify: bool = True,
                 preprocess: bool = True) -> None:
        self.simplify = simplify
        self.preprocess = preprocess
        self._blaster = BitBlaster()
        self._sat = SatSolver()
        self._mapping = CnfMapping()
        self._pre: PreprocessResult | None = None
        self._base = SolverStats()
        # Per member: ("const", sat?, original) for goals settled before
        # the CNF exists, or ("solve", out literal, formula, original).
        self._entries: list[tuple] = []
        self._build(goals)

    @property
    def setup_seconds(self) -> float:
        """Wall-clock spent building the shared context (rewrite + blast +
        encode + preprocess) — the cost `prove_member` calls amortise."""
        return (self._base.rewrite_seconds + self._base.blast_seconds
                + self._base.preprocess_seconds)

    def _build(self, goals: list[Term]) -> None:
        base = self._base
        for goal in goals:
            original = ast.not_(goal)
            formula = original
            with obs.span("smt.rewrite", histogram="smt.phase_seconds",
                          labels={"phase": "rewrite"}) as span:
                if self.simplify:
                    formula = rewrite.simplify(formula)
            base.rewrite_seconds += span.elapsed
            if formula.is_const:
                self._entries.append(("const", bool(formula.value), original))
                continue
            with obs.span("smt.blast", histogram="smt.phase_seconds",
                          labels={"phase": "blast"}) as span:
                out = self._blaster.blast_bool(formula)
            base.blast_seconds += span.elapsed
            if out == TRUE:
                self._entries.append(("const", True, original))
                continue
            if out == FALSE:
                self._entries.append(("const", False, original))
                continue
            self._entries.append(("solve", out, formula, original))

        buffer = CnfBuffer()
        outputs = [entry[1] for entry in self._entries
                   if entry[0] == "solve"]
        for out in outputs:
            # Encoding extends the shared mapping: overlapping cones emit
            # their common nodes exactly once.
            encode(self._blaster.aig, [out], buffer, mapping=self._mapping,
                   assert_outputs=False)
        base.aig_nodes = len(self._blaster.aig)
        base.cnf_vars = buffer.num_vars
        base.cnf_clauses = self._mapping.num_clauses

        if (self.preprocess
                and len(buffer.clauses) >= FAMILY_PREPROCESS_MIN_CLAUSES):
            # Frozen: primary inputs (model lifting reads them) and every
            # member's output variable (assumption literals name them).
            frozen = [var for node, var in self._mapping.node_to_var.items()
                      if self._blaster.aig.definition(node) is None]
            frozen += [output_literal(self._mapping, out) for out in outputs]
            frozen = [abs(v) for v in frozen]
            with obs.span("smt.preprocess", histogram="smt.phase_seconds",
                          labels={"phase": "preprocess"}) as span:
                pre = preprocess(buffer.num_vars, buffer.clauses,
                                 frozen=frozen)
            base.preprocess_seconds = span.elapsed
            base.absorb_preprocess(pre)
            if pre.unsat:
                # Definitional clauses are satisfiable by construction; an
                # UNSAT union means a preprocessor bug, never a verdict.
                raise RuntimeError(
                    "internal solver error: unasserted family CNF "
                    "preprocessed to UNSAT"
                )
            base.cnf_clauses_preprocessed = pre.load_into(self._sat)
            self._pre = pre
        else:
            self._sat.ensure_vars(buffer.num_vars)
            for clause in buffer.clauses:
                self._sat.add_clause(clause)
            base.cnf_clauses_preprocessed = len(buffer.clauses)

    def __len__(self) -> int:
        return len(self._entries)

    def prove_member(self, index: int,
                     max_conflicts: int | None = None) -> SolverResult:
        """Attempt to prove member `index`'s goal valid (sat=False) or
        refute it with a model of its negation (sat=True), under the shared
        family context.  Calls may repeat (the scheduler's retry ladder) —
        clauses learnt during a failed attempt still help the next one."""
        entry = self._entries[index]
        # Each member carries the shared-context counters verbatim and a
        # 1/N share of the shared setup time, so summing members' solver
        # seconds over the family counts the setup exactly once.
        share = 1.0 / len(self._entries)
        stats = replace(
            self._base,
            rewrite_seconds=self._base.rewrite_seconds * share,
            blast_seconds=self._base.blast_seconds * share,
            preprocess_seconds=self._base.preprocess_seconds * share,
        )
        if entry[0] == "const":
            _, truthy, original = entry
            stats.decided_structurally = True
            if truthy:
                return SolverResult(
                    sat=True, model=Solver._arbitrary_model(original),
                    stats=stats)
            return SolverResult(sat=False, stats=stats)

        _, out, formula, original = entry
        assumption = output_literal(self._mapping, out)
        if self._pre is not None:
            root = self._pre.fixed.get(abs(assumption))
            if root is not None and root != (assumption > 0):
                # Root propagation already refuted this cone's output.
                stats.decided_by_preprocessing = True
                return SolverResult(sat=False, stats=stats)

        cumulative = self._sat.stats
        before = (cumulative.conflicts, cumulative.decisions,
                  cumulative.propagations, cumulative.restarts)
        with obs.span("smt.sat", histogram="smt.phase_seconds",
                      labels={"phase": "sat"}) as span:
            result = self._sat.solve(max_conflicts=max_conflicts,
                                     assumptions=[assumption])
        stats.sat_seconds = span.elapsed
        stats.sat_conflicts = cumulative.conflicts - before[0]
        stats.sat_decisions = cumulative.decisions - before[1]
        stats.sat_propagations = cumulative.propagations - before[2]
        stats.sat_restarts = cumulative.restarts - before[3]

        if not result.sat:
            return SolverResult(sat=False, stats=stats)

        sat_model = (self._pre.model(result.model)
                     if self._pre is not None else result.model)
        model = Solver._lift_model(formula, self._blaster, self._mapping,
                                   sat_model)
        for var in ast.free_vars(original):
            if var.name not in model:
                model[var.name] = False if var.sort.is_bool else 0
        value = interp.evaluate(original, model)
        if value is not True:
            raise RuntimeError(
                "internal solver error: SAT model fails concrete evaluation"
            )
        return SolverResult(sat=True, model=model, stats=stats)


def prove(
    goal: Term, simplify: bool = True, max_conflicts: int | None = None,
    preprocess: bool = True
) -> SolverResult:
    """Attempt to prove `goal` valid: returns sat=False when proved
    (the negation is unsatisfiable), else a counterexample model.

    `max_conflicts` bounds the CDCL search; exceeding it raises
    :class:`repro.smt.sat.BudgetExceeded` — the prover's per-VC "timeout"
    mechanism, expressed as a deterministic conflict budget rather than a
    wall-clock deadline so results do not depend on machine speed or job
    count."""
    solver = Solver(simplify=simplify, preprocess=preprocess)
    solver.add(ast.not_(goal))
    return solver.check(max_conflicts=max_conflicts)


def counterexample(goal: Term) -> dict[str, int | bool] | None:
    """None when `goal` is valid, otherwise a falsifying assignment."""
    result = prove(goal)
    if result.sat:
        return result.model
    return None
