"""The static lock-order pass (the ``lockorder.*`` rules).

Deadlock freedom for the kernel's blocking primitives is an ordering
argument: if every thread acquires locks in one global partial order,
no cycle of waiters can form.  This pass recovers that order from the
AST instead of trusting comments: it scans the lock-using modules
(NR, the SMP scheduler protocol, the syscall ring, the cluster WAL,
the allocator, vspace, and the page table), finds every acquisition
site — ``with self.<lock>:`` brackets, ``try_acquire_*``/``try_lock``
spin loops, and the scheduler's ``_acquire``/``_release`` wrapper
generators — and builds the *acquisition graph*: an edge A → B
whenever code acquires a lock of class B while statically holding one
of class A, including acquisitions reached through a bounded-depth
closure of method calls (that is how the combiner's
``replica.ds.apply`` is seen to reach the buddy allocator's lock:
``nr.replica → pmem.alloc``).

Rules:

* ``lockorder.cycle`` — the acquisition graph has a cycle, so there
  is an interleaving in which two threads wait on each other;
* ``lockorder.unordered-same-class`` — two locks of the same class
  nest without the sanctioned sort-before-acquire discipline
  (``migrate_steps`` orders its two runqueue locks by core id; any
  other same-class nesting is a deadlock waiting for the right pair).
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding

#: Modules whose lock usage the pass scans (repo-relative).
SCAN_MODULES = (
    "src/repro/nr/core.py",
    "src/repro/nr/rwlock.py",
    "src/repro/nros/sched/smp.py",
    "src/repro/nros/sched/scheduler.py",
    "src/repro/nros/syscall/ring.py",
    "src/repro/cluster/wal.py",
    "src/repro/nros/pmem.py",
    "src/repro/nros/vspace.py",
    "src/repro/core/pt/impl.py",
)

#: Lock constructor -> lock class (the graph's nodes).
LOCK_CLASSES = {
    "RwLock": "nr.replica",
    "QueueLock": "sched.rq",
    "AllocLock": "pmem.alloc",
}

#: Acquire/release method name -> lock class.
ACQUIRE_METHODS = {
    "try_acquire_write": "nr.replica",
    "try_acquire_read": "nr.replica",
    "try_lock": "sched.rq",
}
RELEASE_METHODS = {
    "release_write": "nr.replica",
    "release_read": "nr.replica",
    "unlock": "sched.rq",
}

#: Lock classes where same-class nesting is sanctioned *when* the
#: acquiring function sorts the instances first (runqueue pairs are
#: taken in core order by migrate_steps).
ORDERED_DOMAINS = ("sched.rq",)

#: Call-closure depth: nr.replica -> ds.apply -> pt.map_frame ->
#: allocator.alloc_frame -> alloc_block -> with self._lock is depth 5.
MAX_CALL_DEPTH = 6

_STMT_LIST_FIELDS = ("body", "orelse", "finalbody", "handlers")


def _expr_nodes(stmt):
    """Walk a statement's expression level without descending into
    nested statement bodies (those are visited in order separately)."""
    queue = [stmt]
    while queue:
        node = queue.pop(0)
        yield node
        for field, value in ast.iter_fields(node):
            if field in _STMT_LIST_FIELDS:
                continue
            if isinstance(value, list):
                queue.extend(v for v in value if isinstance(v, ast.AST))
            elif isinstance(value, ast.AST):
                queue.append(value)


class _Event:
    __slots__ = ("kind", "label", "instance", "line", "detail")

    def __init__(self, kind, label, instance, line, detail=None):
        self.kind = kind          # "acquire" | "release" | "call"
        self.label = label        # lock class, or callee name for call
        self.instance = instance  # receiver text (call resolution)
        self.line = line
        self.detail = detail or instance   # full call text (identity)


def _receiver_text(node) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on our trees
        return "<expr>"


def _collect_events(stmts, lock_attrs: dict[str, str], out: list) -> None:
    """Events of a statement list, in source order."""
    for stmt in stmts:
        if isinstance(stmt, ast.With):
            entered = []
            for item in stmt.items:
                expr = item.context_expr
                for node in ast.walk(expr):
                    if (isinstance(node, ast.Attribute)
                            and node.attr in lock_attrs):
                        cls = lock_attrs[node.attr]
                        out.append(_Event("acquire", cls,
                                          _receiver_text(node),
                                          stmt.lineno))
                        entered.append(cls)
            _collect_events(stmt.body, lock_attrs, out)
            for cls in reversed(entered):
                out.append(_Event("release", cls, "", stmt.lineno))
            continue
        for node in _expr_nodes(stmt):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                name = node.func.attr
                recv = _receiver_text(node.func.value)
                if name in ACQUIRE_METHODS:
                    out.append(_Event("acquire", ACQUIRE_METHODS[name],
                                      recv, node.lineno))
                elif name in RELEASE_METHODS:
                    out.append(_Event("release", RELEASE_METHODS[name],
                                      recv, node.lineno))
                else:
                    out.append(_Event("call", name, recv, node.lineno,
                                      detail=_receiver_text(node)))
        for field in _STMT_LIST_FIELDS:
            children = getattr(stmt, field, None)
            if not children:
                continue
            if field == "handlers":
                for handler in children:
                    _collect_events(handler.body, lock_attrs, out)
            else:
                _collect_events(children, lock_attrs, out)


class _Method:
    def __init__(self, path, cls, node, events):
        self.path = path
        self.cls = cls
        self.node = node
        self.events = events
        self.sorts_instances = any(
            isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
            and n.func.id == "sorted" for n in ast.walk(node))
        counts: dict[str, int] = {}
        for event in events:
            if event.kind == "acquire":
                counts[event.label] = counts.get(event.label, 0) + 1
            elif event.kind == "release":
                counts[event.label] = counts.get(event.label, 0) - 1
        self.net = counts

    @property
    def wrapper_acquires(self):
        return [cls for cls, n in self.net.items() if n > 0]

    @property
    def wrapper_releases(self):
        return [cls for cls, n in self.net.items() if n < 0]


def _lock_attrs(tree) -> dict[str, str]:
    """Attribute name -> lock class, from ``self.X = LockClass(...)``
    style assignments anywhere in the module (including list builds)."""
    attrs: dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        classes = [LOCK_CLASSES[sub.func.id]
                   for sub in ast.walk(node.value)
                   if isinstance(sub, ast.Call)
                   and isinstance(sub.func, ast.Name)
                   and sub.func.id in LOCK_CLASSES]
        if not classes:
            continue
        for target in node.targets:
            if isinstance(target, ast.Attribute):
                attrs[target.attr] = classes[0]
    return attrs


def _index_methods(sources, modules):
    """name -> [_Method] across every class in the scanned modules."""
    index: dict[str, list[_Method]] = {}
    parse_errors: list[Finding] = []
    for path in modules:
        text = sources.get(path)
        if text is None:
            continue
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            parse_errors.append(Finding(
                rule="parse-error", path=path, line=exc.lineno or 1,
                message=f"cannot parse: {exc.msg}"))
            continue
        lock_attrs = _lock_attrs(tree)
        for cls in tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            for item in cls.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if _is_stub(item):
                    continue   # duck-typing interface documentation
                events: list = []
                _collect_events(item.body, lock_attrs, events)
                method = _Method(path, cls.name, item, events)
                index.setdefault(item.name, []).append(method)
    return index, parse_errors


def _is_stub(method: ast.FunctionDef) -> bool:
    """Interface stubs (docstring + raise NotImplementedError / pass)
    document duck typing; indexing them would shadow the real methods."""
    for stmt in method.body:
        if isinstance(stmt, ast.Expr) and \
                isinstance(stmt.value, ast.Constant):
            continue
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Raise):
            continue
        return False
    return True


def _resolve(name: str, index, caller_cls: str,
             receiver: str) -> list:
    """Resolve a method call to scanned methods.  A bare ``self``
    receiver resolves within the caller's class; anything else resolves
    only when the name is *unique* across the scanned classes —
    ambiguous names are skipped rather than unioned, so duck-typed
    names (``unmap`` on a page table vs. on a vspace) don't fabricate
    edges."""
    candidates = index.get(name, [])
    if receiver == "self":
        own = [m for m in candidates if m.cls == caller_cls]
        if own:
            return own
    if len(candidates) == 1:
        return candidates
    return []


def _closure_acquired(name, index, depth, seen) -> set[str]:
    """Every lock class acquired anywhere inside methods reachable
    from a call to `name`.  Unlike wrapper resolution this *unions*
    ambiguous candidates — any implementation may be behind a
    duck-typed receiver — which is why closure-derived acquisitions
    only ever contribute cross-class edges (instance identity does not
    survive the union)."""
    if depth <= 0 or name in seen:
        return set()
    seen = seen | {name}
    acquired: set[str] = set()
    for method in index.get(name, ()):
        for event in method.events:
            if event.kind == "acquire":
                acquired.add(event.label)
            elif event.kind == "call":
                acquired |= _closure_acquired(event.label, index,
                                              depth - 1, seen)
    return acquired


def _simulate(method, index, edges, findings) -> None:
    """Replay one method's events, tracking the held stack and
    recording acquisition edges."""
    held: list[tuple[str, str]] = []   # (lock class, instance text)

    def note_acquire(cls, instance, line, via_closure=False):
        for held_cls, held_inst in held:
            if held_cls == cls:
                if via_closure:
                    continue  # no instance identity through a closure
                if held_inst == instance:
                    continue  # re-bracket of the same expression
                if cls in ORDERED_DOMAINS and method.sorts_instances:
                    continue  # sanctioned sort-before-acquire pairs
                findings.append(Finding(
                    rule="lockorder.unordered-same-class",
                    path=method.path, line=line,
                    message=f"{method.cls}.{method.node.name} nests "
                            f"two '{cls}' locks ({held_inst!r} then "
                            f"{instance!r}) without ordering them"))
            else:
                edges.setdefault((held_cls, cls), []).append(
                    (method.path, line,
                     f"{method.cls}.{method.node.name}"))

    for event in method.events:
        if event.kind == "acquire":
            note_acquire(event.label, event.instance, event.line)
            held.append((event.label, event.instance))
        elif event.kind == "release":
            for i in range(len(held) - 1, -1, -1):
                if held[i][0] == event.label:
                    del held[i]
                    break
        elif event.kind == "call":
            callees = _resolve(event.label, index, method.cls,
                               event.instance)
            pushed = False
            for callee in callees:
                for cls in callee.wrapper_acquires:
                    note_acquire(cls, event.detail, event.line)
                    held.append((cls, event.detail))
                    pushed = True
                if pushed:
                    break
            if pushed:
                continue
            for callee in callees:
                released = callee.wrapper_releases
                if released:
                    for cls in released:
                        for i in range(len(held) - 1, -1, -1):
                            if held[i][0] == cls:
                                del held[i]
                                break
                    break
            else:
                if held and event.label in index:
                    for cls in _closure_acquired(event.label, index,
                                                 MAX_CALL_DEPTH, set()):
                        note_acquire(cls, f"via {event.label}()",
                                     event.line, via_closure=True)


def _find_cycle(edges) -> list[str] | None:
    graph: dict[str, set[str]] = {}
    for src, dst in edges:
        graph.setdefault(src, set()).add(dst)
        graph.setdefault(dst, set())
    state = dict.fromkeys(graph, 0)  # 0 new, 1 on stack, 2 done
    stack: list[str] = []

    def visit(node):
        state[node] = 1
        stack.append(node)
        for succ in sorted(graph[node]):
            if state[succ] == 1:
                return stack[stack.index(succ):] + [succ]
            if state[succ] == 0:
                cycle = visit(succ)
                if cycle:
                    return cycle
        state[node] = 2
        stack.pop()
        return None

    for node in sorted(graph):
        if state[node] == 0:
            cycle = visit(node)
            if cycle:
                return cycle
    return None


def check_lock_order(sources: dict[str, str],
                     modules=SCAN_MODULES) -> tuple[list[Finding], dict]:
    """Build the acquisition graph and flag cycles / unordered pairs."""
    index, findings = _index_methods(sources, modules)
    edges: dict[tuple[str, str], list] = {}
    for methods in index.values():
        for method in methods:
            _simulate(method, index, edges, findings)

    cycle = _find_cycle(edges)
    if cycle:
        sites = []
        for src, dst in zip(cycle, cycle[1:]):
            for path, line, holder in edges.get((src, dst), ()):
                sites.append(f"{holder} ({path}:{line})")
        where = edges.get((cycle[0], cycle[1]), [(modules[0], 1, "?")])
        findings.append(Finding(
            rule="lockorder.cycle", path=where[0][0], line=where[0][1],
            message=f"lock acquisition cycle "
                    f"{' -> '.join(cycle)} via " + "; ".join(sites)))
    stats = {
        "modules": sum(1 for m in modules if m in sources),
        "methods": sum(len(v) for v in index.values()),
        "edges": len(edges),
        "order": ", ".join(sorted(f"{a}->{b}" for a, b in edges)),
        "cycle": bool(cycle),
    }
    return findings, stats


def acquisition_graph(sources: dict[str, str],
                      modules=SCAN_MODULES) -> dict:
    """(holder class, acquired class) -> [(path, line, holder fn)] —
    the raw graph, for tests and the EXPERIMENTS tables."""
    index, _errors = _index_methods(sources, modules)
    edges: dict[tuple[str, str], list] = {}
    scratch: list = []
    for methods in index.values():
        for method in methods:
            _simulate(method, index, edges, scratch)
    return edges
