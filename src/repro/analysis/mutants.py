"""Seeded protocol mutants the race detector must catch.

A detector that has only ever said "no races" is indistinguishable from
a detector that is wired to nothing.  Each mutant here is a known-racy
variant of the NR step protocol; CI runs the detector against them and
fails if they stop being flagged (the analysis analog of the fault
campaign's seeded injections).
"""

from __future__ import annotations

from repro.nr.core import (
    APPLY,
    NodeReplicated,
    READ,
    READ_TAIL,
    RELEASE,
    SPIN,
    TRY_COMBINE,
    WLOCK,
)
from repro.nr.log import LogEntry


class ReaderLockElisionNR(NodeReplicated):
    """The classic NR bug: a reader that checked the log prefix but
    queries the replica *without the reader lock*.  A concurrent
    combiner can then apply log entries to the data structure mid-query:
    its ``APPLY`` writes are neither lock-guarded against nor ordered
    with the reader's ``READ``, which is exactly what the lockset +
    vector-clock detector reports."""

    def read_steps(self, op, node: int, thread: int):
        replica = self.replicas[node]
        observed_tail = self.log.tail
        yield READ_TAIL

        # Catch-up is unchanged from the real protocol.
        while replica.ltail < observed_tail:
            if replica.combiner is None:
                replica.combiner = thread
                acquired = True
            else:
                acquired = False
            yield TRY_COMBINE
            if not acquired:
                yield SPIN
                continue
            while not replica.lock.try_acquire_write():
                yield WLOCK
            yield WLOCK
            tail = self.log.tail
            for entry in self.log.slice_from(replica.ltail, tail):
                result = replica.ds.apply(entry.op)
                if entry.node == node:
                    replica.results[entry.thread] = result
                replica.ltail += 1
                yield APPLY
            replica.lock.release_write()
            replica.combiner = None
            yield RELEASE

        # BUG (deliberate): the RLOCK acquire/release bracket is elided —
        # the query reads the replica unprotected.
        result = replica.ds.query(op)
        yield READ
        return result


class WriterLockElisionNR(NodeReplicated):
    """The dual mutant: the combiner applies log entries to the replica
    *without taking the writer lock*, so its ``APPLY`` writes race with
    any reader's locked ``READ`` (a read-lock alone cannot exclude an
    unlocked writer)."""

    def execute_steps(self, op, node: int, thread: int):
        replica = self.replicas[node]
        replica.slots[thread] = op
        yield "publish"

        while True:
            if thread in replica.results:
                result = replica.results.pop(thread)
                yield "check_result"
                return result
            yield "check_result"

            if replica.combiner is None:
                replica.combiner = thread
                acquired = True
            else:
                acquired = False
            yield TRY_COMBINE

            if not acquired:
                yield SPIN
                continue

            batch = list(replica.slots.items())
            replica.slots.clear()
            yield "collect"

            entries = [LogEntry(op=o, node=node, thread=t) for t, o in batch]
            self.log.append_batch(entries)
            replica.batches += 1
            replica.max_batch = max(replica.max_batch, len(entries))
            self.batch_sizes.record(len(entries))
            yield "append"

            # BUG (deliberate): the WLOCK acquire/release bracket is
            # elided — entries are applied with no writer lock held.
            tail = self.log.tail
            for entry in self.log.slice_from(replica.ltail, tail):
                result = replica.ds.apply(entry.op)
                if entry.node == node:
                    replica.results[entry.thread] = result
                replica.ltail += 1
                yield APPLY

            replica.combiner = None
            self._maybe_auto_gc()
            yield RELEASE


#: Name -> NodeReplicated subclass, for `python -m repro analyze --mutant`.
MUTANTS = {
    "reader-lock-elision": ReaderLockElisionNR,
    "writer-lock-elision": WriterLockElisionNR,
}
