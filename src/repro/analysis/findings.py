"""Structured findings and the ``# repro: allow(<rule>)`` suppression
syntax shared by every analysis pass.

A finding is (rule id, file, line, message).  A finding is *suppressed*
when the offending line — or a standalone comment on the line directly
above it — carries ``# repro: allow(rule)`` naming its rule (several
rules may be comma-separated).  Suppressed findings are still reported,
separately, so the EXPERIMENTS table can count what was waived and CI
output shows where.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")


@dataclass
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str          # repo-relative path
    line: int          # 1-based
    message: str
    suppressed: bool = False

    def render(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: {self.rule}: {self.message}{tag}"


def allowed_rules(source: str) -> dict[int, set[str]]:
    """Map line number -> rules allowed on that line.

    An ``allow`` comment applies to its own line; when the comment is
    the only thing on the line, it also applies to the next line.
    """
    allowed: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(text)
        if not match:
            continue
        rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
        allowed.setdefault(lineno, set()).update(rules)
        if text.strip().startswith("#"):
            allowed.setdefault(lineno + 1, set()).update(rules)
    return allowed


@dataclass
class AnalysisReport:
    """Findings accumulated across passes, with per-pass statistics."""

    findings: list[Finding] = field(default_factory=list)
    stats: dict[str, dict] = field(default_factory=dict)

    def extend(self, findings) -> None:
        self.findings.extend(findings)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.active:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts

    @property
    def clean(self) -> bool:
        return not self.active

    def summary_lines(self) -> list[str]:
        lines = []
        for name in sorted(self.stats):
            detail = ", ".join(f"{k}={v}" for k, v in self.stats[name].items())
            lines.append(f"{name}: {detail}")
        counts = self.by_rule()
        if counts:
            lines.append("violations by rule: " + ", ".join(
                f"{rule}={n}" for rule, n in sorted(counts.items())))
        lines.append(f"{len(self.active)} violations, "
                     f"{len(self.suppressed)} suppressed")
        return lines


def apply_suppressions(findings: list[Finding], source_by_path: dict) -> None:
    """Mark findings whose location carries a matching allow comment."""
    cache: dict[str, dict[int, set[str]]] = {}
    for finding in findings:
        source = source_by_path.get(finding.path)
        if source is None:
            continue
        if finding.path not in cache:
            cache[finding.path] = allowed_rules(source)
        rules = cache[finding.path].get(finding.line, ())
        if finding.rule in rules:
            finding.suppressed = True


def dead_suppressions(findings: list[Finding],
                      source_by_path: dict) -> list[Finding]:
    """Findings for ``allow`` comments that no longer suppress anything.

    Run *after* :func:`apply_suppressions` over the full finding set: a
    ``# repro: allow(rule)`` comment is *dead* when no (now-suppressed)
    finding of that rule sits on a line the comment covers — the waiver
    outlived the violation it was written for and should be deleted.
    Only meaningful when every pass that could produce the rule actually
    ran, so the caller gates this on an un-skipped run.
    """
    dead: list[Finding] = []
    for path in sorted(source_by_path):
        source = source_by_path[path]
        matched = {(f.rule, f.line) for f in findings
                   if f.path == path and f.suppressed}
        for lineno, comment, own_line in _comment_tokens(source):
            match = _ALLOW_RE.search(comment)
            if not match:
                continue
            covered = {lineno}
            if own_line:
                covered.add(lineno + 1)
            for rule in (r.strip() for r in match.group(1).split(",")):
                if not rule:
                    continue
                if not any((rule, line) in matched for line in covered):
                    dead.append(Finding(
                        rule="suppression.dead", path=path, line=lineno,
                        message=f"'# repro: allow({rule})' suppresses "
                                f"nothing — the finding it waived is "
                                f"gone; delete the comment"))
    return dead


def _comment_tokens(source: str):
    """(line, text, is-own-line) for every real ``#`` comment — via the
    tokenizer, so docstrings *talking about* allow comments don't count."""
    import io
    import tokenize

    out = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                prefix = token.line[:token.start[1]]
                out.append((token.start[0], token.string,
                            not prefix.strip()))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparsable files are the parse-error rule's business
    return out
