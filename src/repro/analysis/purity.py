"""The contract-purity lint.

Verus ``spec fn``s are total mathematical functions: no mutation, no
I/O, no nondeterminism.  Our runtime-checked analogs — ``requires`` /
``ensures`` predicates, spec state-machine transitions, and every
function in a spec-layer module — carry the same obligation, but Python
will happily let a predicate flip a cache field or read the wall clock,
silently turning the specification into a program.  This lint walks
those functions' ASTs and flags:

* ``purity.mutation`` — stores through attributes/subscripts of
  parameters or globals, ``global``/``nonlocal``, and calls of known
  mutating methods (``append``, ``update``, ...) on non-local roots
  whose result is discarded (a consumed result signals a persistent
  API — ``FrozenMap.remove`` returns the new map, ``list.remove``
  returns ``None``);
* ``purity.io`` — ``print``/``input``/``open`` and calls into ``os``,
  ``sys``, ``subprocess``, ``shutil``, ``socket``, ``logging``;
* ``purity.nondeterminism`` — module-level ``random`` use without an
  explicit seed argument, wall-clock reads (``time.*``,
  ``datetime.now``), ``uuid``, ``secrets``.

It also owns ``console.bare-print``: no module under ``src/repro`` may
call ``print()`` except :mod:`repro.obs.console` — the AST replacement
for the lookbehind grep the CI trace job used to run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.analysis.layers import classify_layer

#: Decorators/calls whose functional arguments are contract predicates.
CONTRACT_CALLS = {"requires", "ensures"}
TRANSITION_CALLS = {"Transition"}
MACHINE_CALLS = {"SpecStateMachine"}

MUTATING_METHODS = {
    "append", "extend", "insert", "add", "update", "pop", "popitem",
    "remove", "discard", "clear", "setdefault", "sort", "reverse",
    "write", "writelines", "send", "put",
}
IO_CALL_NAMES = {"print", "input", "open", "exec", "eval", "__import__"}
IO_ROOTS = {"os", "sys", "subprocess", "shutil", "socket", "logging"}
NONDET_ROOTS = {"uuid", "secrets"}
WALLCLOCK_ROOTS = {"time"}
#: Files exempt from console.bare-print (the one sanctioned sink).
PRINT_EXEMPT = ("src/repro/obs/console.py",)


def _root_name(node) -> str | None:
    """Leftmost Name of an attribute/subscript chain, or None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted(node) -> list[str]:
    """['random', 'Random'] for random.Random, [] when not a pure chain."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


class _PredicateChecker(ast.NodeVisitor):
    """Purity analysis of a single predicate function or lambda."""

    def __init__(self, path: str, params: set[str]):
        self.path = path
        self.params = set(params)
        self.locals: set[str] = set()
        self.discarded: set[int] = set()
        self.findings: list[Finding] = []
        # First sweep: every name bound by plain-Name targets is local.

    def collect_locals(self, body) -> None:
        for node in body if isinstance(body, list) else [body]:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Expr) and \
                        isinstance(sub.value, ast.Call):
                    self.discarded.add(id(sub.value))
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.locals.add(sub.name)
                targets = []
                if isinstance(sub, ast.Assign):
                    targets = sub.targets
                elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                    targets = [sub.target]
                elif isinstance(sub, ast.For):
                    targets = [sub.target]
                elif isinstance(sub, ast.NamedExpr):
                    targets = [sub.target]
                elif isinstance(sub, ast.comprehension):
                    targets = [sub.target]
                elif isinstance(sub, ast.withitem) and sub.optional_vars:
                    targets = [sub.optional_vars]
                for target in targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            self.locals.add(leaf.id)

    def _flag(self, node, rule: str, message: str) -> None:
        self.findings.append(Finding(rule=rule, path=self.path,
                                     line=node.lineno, message=message))

    def _is_local_root(self, root: str | None) -> bool:
        return root is not None and root in self.locals \
            and root not in self.params

    # -- mutation ---------------------------------------------------------------

    def _check_store(self, target, node) -> None:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _root_name(target)
            if not self._is_local_root(root):
                where = root or "expression"
                self._flag(node, "purity.mutation",
                           f"contract predicate stores through "
                           f"non-local '{where}' — spec functions must "
                           f"not mutate observable state")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element, node)

    def visit_Assign(self, node):
        for target in node.targets:
            self._check_store(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node):
        self._check_store(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node):
        self._check_store(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node):
        for target in node.targets:
            self._check_store(target, node)
        self.generic_visit(node)

    def visit_Global(self, node):
        self._flag(node, "purity.mutation",
                   "contract predicate declares 'global'")

    def visit_Nonlocal(self, node):
        self._flag(node, "purity.mutation",
                   "contract predicate declares 'nonlocal'")

    # -- calls: mutation via method, I/O, nondeterminism -------------------------

    def visit_Call(self, node):
        func = node.func
        dotted = _dotted(func)
        if isinstance(func, ast.Attribute):
            root = _root_name(func)
            # Only a *discarded* result marks a mutator: list.append and
            # friends return None, so `x.remove(k)` as a statement mutates,
            # while `self.files.remove(fd)` consumed as a value is a
            # persistent-map operation returning the new map.
            if func.attr in MUTATING_METHODS and \
                    id(node) in self.discarded and \
                    not self._is_local_root(root):
                self._flag(node, "purity.mutation",
                           f"call of mutating method "
                           f"'.{func.attr}()' on non-local "
                           f"'{root or 'expression'}'")
        if isinstance(func, ast.Name) and func.id in IO_CALL_NAMES:
            self._flag(node, "purity.io",
                       f"contract predicate calls '{func.id}()'")
        if dotted:
            root = dotted[0]
            if root in IO_ROOTS:
                self._flag(node, "purity.io",
                           f"contract predicate calls "
                           f"'{'.'.join(dotted)}()'")
            elif root == "random":
                seeded = (dotted[-1] == "Random" and
                          (node.args or node.keywords))
                if not seeded:
                    self._flag(node, "purity.nondeterminism",
                               f"'{'.'.join(dotted)}()' without an "
                               f"explicit seed argument")
            elif root in WALLCLOCK_ROOTS:
                self._flag(node, "purity.nondeterminism",
                           f"wall-clock read "
                           f"'{'.'.join(dotted)}()'")
            elif root in NONDET_ROOTS:
                self._flag(node, "purity.nondeterminism",
                           f"nondeterministic source "
                           f"'{'.'.join(dotted)}()'")
            elif root == "datetime" and dotted[-1] in ("now", "utcnow",
                                                       "today"):
                self._flag(node, "purity.nondeterminism",
                           f"wall-clock read '{'.'.join(dotted)}()'")
        self.generic_visit(node)


def _check_predicate(path: str, node) -> list[Finding]:
    """Purity-check one FunctionDef/Lambda."""
    args = node.args
    params = {a.arg for a in args.args + args.posonlyargs + args.kwonlyargs}
    if args.vararg:
        params.add(args.vararg.arg)
    if args.kwarg:
        params.add(args.kwarg.arg)
    checker = _PredicateChecker(path, params)
    body = node.body
    checker.collect_locals(body)
    for stmt in body if isinstance(body, list) else [body]:
        checker.visit(stmt)
    return checker.findings


def _call_name(func) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _module_functions(tree) -> dict[str, ast.FunctionDef]:
    return {node.name: node for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _predicate_targets(tree, is_spec_module: bool):
    """Yield every function/lambda node that carries the purity
    obligation in this module."""
    module_funcs = _module_functions(tree)
    seen: set[int] = set()

    def claim(node):
        if node is not None and id(node) not in seen and \
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
            seen.add(id(node))
            yield node

    def resolve(arg):
        if isinstance(arg, ast.Lambda):
            return arg
        if isinstance(arg, ast.Name):
            return module_funcs.get(arg.id)
        return None

    if is_spec_module:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from claim(node)

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node.func)
        if name in CONTRACT_CALLS and node.args:
            yield from claim(resolve(node.args[0]))
        elif name in TRANSITION_CALLS:
            for arg in node.args[1:3]:
                yield from claim(resolve(arg))
            for kw in node.keywords:
                if kw.arg in ("enabled", "apply"):
                    yield from claim(resolve(kw.value))
        elif name in MACHINE_CALLS:
            for kw in node.keywords:
                if kw.arg == "invariants" and isinstance(kw.value, ast.Dict):
                    for value in kw.value.values:
                        yield from claim(resolve(value))


def check_purity(sources: dict[str, str],
                 layer_map=None) -> tuple[list[Finding], dict]:
    """Lint every contract predicate and spec-layer function; also run
    the bare-print rule over the whole tree."""
    findings: list[Finding] = []
    predicates = 0
    for relpath, text in sorted(sources.items()):
        try:
            tree = ast.parse(text, filename=relpath)
        except SyntaxError as exc:
            findings.append(Finding(rule="parse-error", path=relpath,
                                    line=exc.lineno or 1,
                                    message=f"cannot parse: {exc.msg}"))
            continue

        is_spec = classify_layer(relpath, layer_map) == "spec"
        for target in _predicate_targets(tree, is_spec):
            predicates += 1
            findings.extend(_check_predicate(relpath, target))

        if relpath not in PRINT_EXEMPT:
            for node in ast.walk(tree):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Name) and \
                        node.func.id == "print":
                    findings.append(Finding(
                        rule="console.bare-print", path=relpath,
                        line=node.lineno,
                        message="bare print() — route output through "
                                "repro.obs.console"))

    stats = {"files": len(sources), "predicates": predicates}
    return findings, stats
