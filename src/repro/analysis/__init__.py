"""`repro.analysis` — verification-aware static analysis.

Three passes machine-check the boundaries the paper's argument rests
on, driven by one declarative layer map (:mod:`repro.analysis.layers`)
that also feeds the Section-5 proof-to-code ratio:

* :mod:`repro.analysis.imports` — the layering / ghost-code-erasure
  checker over the AST import graph;
* :mod:`repro.analysis.purity` — the contract-purity lint for
  ``requires``/``ensures`` predicates and spec state machines (plus the
  bare-``print()`` console rule);
* :mod:`repro.analysis.race` — the lockset + vector-clock race
  detector replaying the NR step protocol under the adversarial
  interleaver, with seeded mutants (:mod:`repro.analysis.mutants`) CI
  requires it to flag.

Findings are structured (:mod:`repro.analysis.findings`) with a
``# repro: allow(<rule>)`` suppression syntax; ``python -m repro
analyze`` (:mod:`repro.analysis.cli`) is the entry point and CI gate.
"""

from repro.analysis.findings import AnalysisReport, Finding, allowed_rules
from repro.analysis.imports import ImportEdge, build_import_graph, \
    check_layering, discover_sources
from repro.analysis.layers import LAYER_MAP, classify_layer, \
    loc_classification, loc_kind
from repro.analysis.purity import check_purity
from repro.analysis.race import RaceMonitor, RaceReport, default_scripts, \
    detect_races, instrument, replay

__all__ = [
    "AnalysisReport",
    "Finding",
    "ImportEdge",
    "LAYER_MAP",
    "RaceMonitor",
    "RaceReport",
    "allowed_rules",
    "build_import_graph",
    "check_layering",
    "check_purity",
    "classify_layer",
    "default_scripts",
    "detect_races",
    "discover_sources",
    "instrument",
    "loc_classification",
    "loc_kind",
    "replay",
]
