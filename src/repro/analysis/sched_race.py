"""Race replay for the SMP runqueue protocol.

:mod:`repro.nros.sched.smp` writes the cross-core protocol as step
generators, exactly like :mod:`repro.nr.core` — so the same lockset +
vector-clock monitor (:class:`repro.analysis.race.RaceMonitor`) can
interleave two cores and a load balancer adversarially and check every
runqueue/entity access for a happens-before edge or a common lock.

The happens-before argument the replay validates is *lock-ownership
transfer*: ``locks[c]`` guards ``queues[c]`` and the entities core
``c`` owns, and a tid's owning core only changes inside
``migrate_steps``, which holds **both** locks in core order.  A core
touching a freshly stolen entity is therefore ordered after the
migration through its own lock's release clock.

On the real protocol the report is empty at every seed.  The seeded
mutants break the transfer two ways, and the detector flags both
deterministically:

* ``sched-steal-lock-elision`` — migration takes only the destination
  lock, so its source-queue scan/dequeue races with the source core's
  own picks;
* ``sched-double-enqueue`` — migration holds both locks (lock
  discipline intact!) but forgets to dequeue the source copy, so the
  thread is runnable on two cores at once and both cores' picks write
  the same entity with no common lock and no ordering edge.
"""

from __future__ import annotations

import random

from repro.analysis.race import RaceMonitor, RaceReport
from repro.nros.sched.entity import SchedEntity, SchedPolicy, fair_charge
from repro.nros.sched.runqueue import CoreRunQueue
from repro.nros.sched.smp import Observer, QueueLock, SchedProtocol, drive

#: Worker rounds per core.  Most rounds run *after* the balancer's
#: last migration: the balancer holds both locks, so while it is
#: active its lock chain orders nearly all cross-core accesses — a
#: double-enqueued entity only races once that chain goes quiet.
_ROUNDS = 12
_BALANCE_ROUNDS = 2


class MonitorObserver(Observer):
    """Maps the protocol's access hooks onto the race monitor's data
    locations: ``rq{core}`` for runqueues, ``ent{tid}`` for entities."""

    def __init__(self, monitor: RaceMonitor) -> None:
        self._mon = monitor

    def queue_read(self, core: int) -> None:
        self._mon.data_read(f"rq{core}")

    def queue_write(self, core: int) -> None:
        self._mon.data_write(f"rq{core}")

    def entity_read(self, tid: int) -> None:
        self._mon.data_read(f"ent{tid}")

    def entity_write(self, tid: int) -> None:
        self._mon.data_write(f"ent{tid}")


class TracedQueueLock(QueueLock):
    """QueueLock that reports acquisitions to the monitor (exclusive —
    runqueue locks have no read mode)."""

    def __init__(self, monitor: RaceMonitor, name: str) -> None:
        super().__init__(name)
        self._mon = monitor

    def try_lock(self, who: object) -> bool:
        ok = super().try_lock(who)
        if ok:
            self._mon.acquire(self.name, "write")
        return ok

    def unlock(self, who: object) -> None:
        super().unlock(who)
        self._mon.release(self.name, "write")


# -- seeded mutants -----------------------------------------------------------


class StealLockElisionProtocol(SchedProtocol):
    """Migration takes only the *destination* lock — the classic
    work-stealing bug where the scan of the victim's queue is
    unsynchronized against the victim's own picks."""

    def migrate_steps(self, who: object, src: int, dst: int):
        if src == dst:
            return None
        yield from self._acquire(who, dst)
        tid = self._steal_scan_locked(src)
        yield "SCAN"
        if tid is not None:
            self._unqueue_locked(src, tid)
            yield "DEQ"
            self._renorm_locked(tid, src, dst)
            yield "TOUCH"
            self._enqueue_locked(dst, tid)
            yield "ENQ"
        yield from self._release(who, dst)
        return tid


class DoubleEnqueueProtocol(SchedProtocol):
    """Migration holds both locks but forgets to dequeue the source
    copy: the thread becomes runnable on two cores at once, and both
    cores' subsequent picks write its entity unsynchronized."""

    def migrate_steps(self, who: object, src: int, dst: int):
        if src == dst:
            return None
        first, second = sorted((src, dst))
        yield from self._acquire(who, first)
        yield from self._acquire(who, second)
        tid = self._steal_scan_locked(src)
        yield "SCAN"
        if tid is not None:
            self._renorm_locked(tid, src, dst)
            yield "TOUCH"
            self._enqueue_locked(dst, tid)
            yield "ENQ"
        yield from self._release(who, second)
        yield from self._release(who, first)
        return tid


#: mutant name -> protocol class (the ``--mutant`` registry).
SCHED_MUTANTS = {
    "sched-steal-lock-elision": StealLockElisionProtocol,
    "sched-double-enqueue": DoubleEnqueueProtocol,
}


# -- the replay ---------------------------------------------------------------


def _population() -> dict[int, SchedEntity]:
    """Two cores' worth of mixed entities: three fair + one RT on core
    0 (the steal victim), two fair on core 1."""
    return {
        1: SchedEntity(1, "f1", vruntime=0, nice=-5),
        2: SchedEntity(2, "f2", vruntime=1),
        3: SchedEntity(3, "f3", vruntime=2, nice=5),
        4: SchedEntity(4, "f4", vruntime=0),
        5: SchedEntity(5, "f5", vruntime=1),
        6: SchedEntity(6, "r6", policy=SchedPolicy.FIFO, rt_prio=50),
    }


_HOMES = {1: 0, 2: 0, 3: 0, 6: 0, 4: 1, 5: 1}


def build_protocol(monitor: RaceMonitor,
                   protocol_cls=SchedProtocol) -> SchedProtocol:
    """A fresh two-core protocol instance with traced locks and the
    monitor-wired observer, pre-populated (untraced) with the mixed
    entity set."""
    queues = [CoreRunQueue(core) for core in (0, 1)]
    locks = [TracedQueueLock(monitor, f"rq{core}.lock")
             for core in (0, 1)]
    entities = _population()
    proto = protocol_cls(queues, entities, locks=locks,
                         observer=MonitorObserver(monitor))
    # initial placement: monitor inactive, so nothing is recorded
    for tid, core in _HOMES.items():
        drive(proto.enqueue_steps("init", core, tid))
    return proto


def _core_worker(proto: SchedProtocol, core: int, rounds: int):
    """One core's pick loop: dequeue, run (charge vruntime), re-enqueue.

    The charge is deliberately *lock-free*, exactly like the real
    scheduler's deschedule charge: a running entity is owned by its
    core, so the access is ordered against migrations through the
    enqueue that made the entity stealable in the first place.  The
    double-enqueue mutant breaks precisely this ownership claim — two
    cores charge the same entity with no edge between them."""
    who = ("core", core)
    for i in range(rounds):
        # mostly fair picks (the throttle regime) so the pick loop
        # rotates through the fair entities instead of letting the
        # FIFO thread monopolize the core
        tid = yield from proto.dequeue_steps(who, core,
                                             prefer_rt=i % 4 == 0)
        if tid is not None:
            ent = proto.entities[tid]
            proto.observer.entity_write(tid)
            if ent.policy is SchedPolicy.FAIR:
                ent.vruntime += fair_charge(ent.weight)
            yield "RUN"
            yield from proto.enqueue_steps(who, core, tid)


def _balancer(proto: SchedProtocol, rounds: int):
    """The load balancer: alternately steal 0 -> 1 and 1 -> 0."""
    for i in range(rounds):
        src, dst = (0, 1) if i % 2 == 0 else (1, 0)
        yield from proto.migrate_steps("balancer", src, dst)


def replay_sched(seed: int, protocol_cls=SchedProtocol,
                 monitor: RaceMonitor | None = None,
                 max_steps: int = 10_000) -> RaceMonitor:
    """Interleave two core workers and the balancer under `seed`; every
    shared access reports to the monitor.  A structural crash inside a
    mutant (e.g. a double-enqueue tripping the runqueue's own
    assertion) ends that runner but keeps the replay going — the
    monitor has already seen the racing accesses by then."""
    if monitor is None:
        monitor = RaceMonitor()
    proto = build_protocol(monitor, protocol_cls)
    rng = random.Random(seed)
    runners = [
        {"thread": 0, "who": ("core", 0),
         "gen": _core_worker(proto, 0, _ROUNDS)},
        {"thread": 1, "who": ("core", 1),
         "gen": _core_worker(proto, 1, _ROUNDS)},
        {"thread": 2, "who": "balancer",
         "gen": _balancer(proto, _BALANCE_ROUNDS)},
    ]
    active = list(runners)
    steps = 0
    while active:
        steps += 1
        if steps > max_steps:
            raise RuntimeError(
                f"sched race replay did not finish within {max_steps} "
                f"steps")
        runner = rng.choice(active)
        monitor.step_begin(runner["thread"])
        try:
            label = next(runner["gen"])
        except StopIteration:
            monitor.step_end(None)
            active.remove(runner)
        except AssertionError:
            # drop any locks the crashed runner still holds, or the
            # surviving workers spin forever against a dead owner
            for lock in proto.locks:
                if lock.owner == runner["who"]:
                    lock.unlock(runner["who"])
            monitor.step_end("CRASH")
            active.remove(runner)
        else:
            monitor.step_end(label)
    return monitor


def detect_sched_races(seeds, protocol_cls=SchedProtocol,
                       max_steps: int = 10_000) -> RaceReport:
    """Replay the runqueue protocol once per seed (fresh instance each
    time) and merge the reports — same shape as
    :func:`repro.analysis.race.detect_races`."""
    report = RaceReport(seeds=list(seeds))
    for seed in report.seeds:
        monitor = replay_sched(seed, protocol_cls=protocol_cls,
                               max_steps=max_steps)
        report.races.extend(monitor.races)
        report.steps += monitor.seq
        report.accesses += monitor.accesses
        report.schedules += 1
    return report
