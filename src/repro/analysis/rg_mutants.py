"""Seeded interference mutants for the rely-guarantee checker.

Each mutant is a deterministic AST transform of the *committed*
allocator source — the same CI trick the race pass plays with its
lock-elision mutants, but at the source level: the transformed module
replaces ``nros/pmem.py`` in the analyzed source set, and
``analyze --mutant <name>`` must exit non-zero because the rg pass
flags the now-unguarded mutations.  Being pure source transforms, the
mutants are flagged identically at every seed.

* ``pmem-free-unlocked`` — ``free_block`` drops its lock bracket
  entirely: a concurrent ``alloc_block`` can observe the free lists
  mid-coalesce (the classic lost-merge / double-ownership race).
* ``buddy-split-no-merge-lock`` — ``alloc_block`` releases the lock
  after picking a block but *before* splitting it and publishing the
  allocation, so the split loop's free-list writes race with a
  concurrent free's coalescing.
"""

from __future__ import annotations

import ast

from repro.verif.rgspec import PMEM

#: The module the mutants rewrite (the rg component declaration is the
#: single source of truth for its path).
PMEM_MODULE = PMEM.module


def _method(tree, cls: str, name: str) -> ast.FunctionDef:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == cls:
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and \
                        item.name == name:
                    return item
    raise ValueError(f"{cls}.{name} not found in pmem source")


def _the_with(method: ast.FunctionDef) -> tuple[int, ast.With]:
    for index, node in enumerate(method.body):
        if isinstance(node, ast.With):
            return index, node
    raise ValueError(f"{method.name} has no with-block to mutate")


def _free_unlocked(source: str) -> str:
    """Replace free_block's lock bracket with its bare body."""
    tree = ast.parse(source)
    method = _method(tree, PMEM.cls, "free_block")
    index, with_node = _the_with(method)
    method.body[index:index + 1] = with_node.body
    return ast.unparse(ast.fix_missing_locations(tree))


def _split_no_merge_lock(source: str) -> str:
    """Hoist alloc_block's split loop (and everything after it) out of
    the lock bracket: the block is picked under the lock, but the split
    and the publication to the allocated map run unguarded."""
    tree = ast.parse(source)
    method = _method(tree, PMEM.cls, "alloc_block")
    index, with_node = _the_with(method)
    split_at = next(
        i for i, node in enumerate(with_node.body)
        if isinstance(node, ast.While))
    hoisted = with_node.body[split_at:]
    with_node.body = with_node.body[:split_at]
    method.body[index + 1:index + 1] = hoisted
    return ast.unparse(ast.fix_missing_locations(tree))


#: mutant name -> source transform over the real pmem module text.
RG_MUTANTS = {
    "pmem-free-unlocked": _free_unlocked,
    "buddy-split-no-merge-lock": _split_no_merge_lock,
}


def apply_rg_mutant(sources: dict[str, str], name: str) -> dict[str, str]:
    """A copy of the source set with the mutant transform applied."""
    transform = RG_MUTANTS[name]
    mutated = dict(sources)
    mutated[PMEM_MODULE] = transform(sources[PMEM_MODULE])
    return mutated
