"""The NR step-protocol race detector: lockset + vector clocks.

Zhao & Sanán's rely-guarantee work shows concurrent memory-management
bugs are exactly what slips past layer-local reasoning, and the NR
protocol (:mod:`repro.nr.core`) is where this reproduction relies on
fine-grained interleaving being safe.  This detector *replays* the
protocol's step generators under the same seeded adversarial scheduler
the linearizability checker uses, but instruments every shared-memory
access:

* each protocol step (the code between two ``yield``\\ s) runs with a
  *current thread*, a vector clock, and the set of locks that thread
  holds (with read/write mode);
* the per-replica :class:`~repro.nr.rwlock.RwLock` carries release
  clocks (writer, and accumulated readers) that acquirers join — the
  classic vector-clock lock rule;
* locations the real algorithm protects with atomics — the combiner
  flag, ``ltail``, the per-thread operation/result slots, and the
  shared log (happens-before edges from log appends) — are modelled as
  acquire/release cells: a write releases the writer's clock into the
  cell, a read joins it;
* everything else (the replicated data structure, the combiner's batch
  counters) is *data*: for every pair of conflicting accesses (same
  location, different threads, at least one write) the detector demands
  a happens-before edge or a common lock held in a sufficient mode —
  Eraser's lockset refined by the happens-before relation.

On the real protocol the report is empty; eliding the reader lock
(:mod:`repro.analysis.mutants`) makes the reader's ``READ`` step race
with a concurrent combiner's ``APPLY`` writes, which the detector
reports deterministically at a fixed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.nr.core import NodeReplicated, Replica
from repro.nr.datastructures import KvStore
from repro.nr.log import Log
from repro.nr.rwlock import RwLock

# -- vector clocks ------------------------------------------------------------------


def _join(clock: dict, other: dict) -> None:
    for thread, tick in other.items():
        if tick > clock.get(thread, 0):
            clock[thread] = tick


@dataclass
class Access:
    """One recorded data access (the last one per thread/kind/location)."""

    thread: int
    kind: str                     # "read" | "write"
    clock: dict
    locks: frozenset              # {(lock_name, mode)}
    label: str | None             # protocol step label, filled at step end
    seq: int                      # global step counter


@dataclass
class Race:
    """Two conflicting, unordered, unguarded accesses."""

    location: str
    first: Access
    second: Access

    def render(self) -> str:
        a, b = self.first, self.second
        return (f"{self.location}: {a.kind} by thread {a.thread} at step "
                f"{a.seq} ({a.label or '?'}, locks={sorted(a.locks)}) is "
                f"unordered with {b.kind} by thread {b.thread} at step "
                f"{b.seq} ({b.label or '?'}, locks={sorted(b.locks)})")


class RaceMonitor:
    """Collects accesses and checks the lockset + happens-before rule."""

    def __init__(self) -> None:
        self.clocks: dict[int, dict] = {}
        self.lock_write_release: dict[str, dict] = {}
        self.lock_read_release: dict[str, dict] = {}
        self.held: dict[int, dict[str, str]] = {}   # thread -> lock -> mode
        self.cells: dict[str, dict] = {}            # atomic release clocks
        self.last_write: dict[str, dict[int, Access]] = {}
        self.last_read: dict[str, dict[int, Access]] = {}
        self.races: list[Race] = []
        self._race_keys: set = set()
        self.current: int | None = None
        self.seq = 0
        self.accesses = 0
        self._pending: list[Access] = []

    # -- driver hooks ---------------------------------------------------------------

    def step_begin(self, thread: int) -> None:
        self.current = thread
        self.clocks.setdefault(thread, {thread: 1})
        self._pending = []

    def step_end(self, label: str | None) -> None:
        for access in self._pending:
            access.label = label
        self._pending = []
        thread = self.current
        if thread is not None:
            clock = self.clocks[thread]
            clock[thread] = clock.get(thread, 0) + 1
        self.current = None
        self.seq += 1

    @property
    def active(self) -> bool:
        return self.current is not None

    def _clock(self) -> dict:
        return self.clocks[self.current]

    def _lockset(self) -> frozenset:
        held = self.held.get(self.current, {})
        return frozenset(held.items())

    # -- locks ----------------------------------------------------------------------

    def acquire(self, lock: str, mode: str) -> None:
        if not self.active:
            return
        clock = self._clock()
        _join(clock, self.lock_write_release.get(lock, {}))
        if mode == "write":
            _join(clock, self.lock_read_release.get(lock, {}))
        self.held.setdefault(self.current, {})[lock] = mode

    def release(self, lock: str, mode: str) -> None:
        if not self.active:
            return
        clock = self._clock()
        if mode == "write":
            self.lock_write_release[lock] = dict(clock)
        else:
            _join(self.lock_read_release.setdefault(lock, {}), clock)
        self.held.get(self.current, {}).pop(lock, None)

    # -- atomic cells -----------------------------------------------------------------

    def atomic_read(self, cell: str) -> None:
        if not self.active:
            return
        _join(self._clock(), self.cells.get(cell, {}))

    def atomic_write(self, cell: str) -> None:
        if not self.active:
            return
        _join(self.cells.setdefault(cell, {}), self._clock())

    # -- data accesses ----------------------------------------------------------------

    def data_read(self, location: str) -> None:
        self._data_access(location, "read")

    def data_write(self, location: str) -> None:
        self._data_access(location, "write")

    def _data_access(self, location: str, kind: str) -> None:
        if not self.active:
            return
        self.accesses += 1
        access = Access(thread=self.current, kind=kind,
                        clock=dict(self._clock()), locks=self._lockset(),
                        label=None, seq=self.seq)
        self._pending.append(access)
        writes = self.last_write.setdefault(location, {})
        reads = self.last_read.setdefault(location, {})
        # A write conflicts with previous reads and writes; a read only
        # with previous writes.
        against = [writes] if kind == "read" else [writes, reads]
        for table in against:
            for other_thread, prior in table.items():
                if other_thread == access.thread:
                    continue
                if self._ordered(prior, access):
                    continue
                if self._guarded(prior, access):
                    continue
                key = (location, prior.label, prior.kind, access.kind,
                       frozenset((prior.thread, access.thread)))
                if key in self._race_keys:
                    continue
                self._race_keys.add(key)
                self.races.append(Race(location=location, first=prior,
                                       second=access))
        (reads if kind == "read" else writes)[access.thread] = access

    @staticmethod
    def _ordered(prior: Access, current: Access) -> bool:
        """prior happens-before current (epoch test on the owner's
        component)."""
        return prior.clock.get(prior.thread, 0) <= \
            current.clock.get(prior.thread, 0)

    @staticmethod
    def _guarded(a: Access, b: Access) -> bool:
        """Some common lock is held in a mode that excludes the pair."""
        locks_a = dict(a.locks)
        locks_b = dict(b.locks)
        for lock, mode_a in locks_a.items():
            mode_b = locks_b.get(lock)
            if mode_b is None:
                continue
            if mode_a == "write" or mode_b == "write":
                return True
        return False


# -- instrumented shared state ------------------------------------------------------


class TracedRwLock(RwLock):
    """RwLock that reports acquisitions to the monitor.  The lock's own
    fields are synchronization state, exempt from data-race tracking."""

    def __init__(self, monitor: RaceMonitor, name: str) -> None:
        super().__init__()
        self._mon = monitor
        self._name = name

    def try_acquire_read(self) -> bool:
        ok = super().try_acquire_read()
        if ok:
            self._mon.acquire(self._name, "read")
        return ok

    def release_read(self) -> None:
        super().release_read()
        self._mon.release(self._name, "read")

    def try_acquire_write(self) -> bool:
        ok = super().try_acquire_write()
        if ok:
            self._mon.acquire(self._name, "write")
        return ok

    def release_write(self) -> None:
        super().release_write()
        self._mon.release(self._name, "write")


class TracedDict(dict):
    """Per-key acquire/release cells — the model of NR's per-thread
    operation and result slots, which the real algorithm makes atomic."""

    def __init__(self, monitor: RaceMonitor, prefix: str) -> None:
        super().__init__()
        self._mon = monitor
        self._prefix = prefix

    def _cell(self, key) -> str:
        return f"{self._prefix}[{key}]"

    def __setitem__(self, key, value) -> None:
        self._mon.atomic_write(self._cell(key))
        super().__setitem__(key, value)

    def __getitem__(self, key):
        self._mon.atomic_read(self._cell(key))
        return super().__getitem__(key)

    def __contains__(self, key) -> bool:
        self._mon.atomic_read(self._cell(key))
        return super().__contains__(key)

    def pop(self, key, *default):
        self._mon.atomic_read(self._cell(key))
        self._mon.atomic_write(self._cell(key))
        return super().pop(key, *default)

    def items(self):
        for key in super().keys():
            self._mon.atomic_read(self._cell(key))
        return super().items()

    def clear(self) -> None:
        for key in super().keys():
            self._mon.atomic_write(self._cell(key))
        super().clear()


class TracedDS:
    """Wraps the replicated sequential data structure: the coarse data
    location the reader lock is supposed to protect."""

    def __init__(self, inner, monitor: RaceMonitor, location: str) -> None:
        self._inner = inner
        self._mon = monitor
        self._loc = location

    def apply(self, op):
        self._mon.data_write(self._loc)
        return self._inner.apply(op)

    def query(self, op):
        self._mon.data_read(self._loc)
        return self._inner.query(op)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TracedLog(Log):
    """The shared log as an acquire/release channel: appends release the
    combiner's clock, tail reads and slices join it — the happens-before
    edges Section 4.1's argument rests on."""

    CELL = "log"

    def __init__(self, monitor: RaceMonitor) -> None:
        super().__init__()
        self._mon = monitor

    def append_batch(self, entries):
        self._mon.atomic_write(self.CELL)
        return super().append_batch(entries)

    @property
    def tail(self) -> int:
        self._mon.atomic_read(self.CELL)
        return Log.tail.fget(self)

    def slice_from(self, start, end=None):
        self._mon.atomic_read(self.CELL)
        return super().slice_from(start, end)

    def entry(self, index):
        self._mon.atomic_read(self.CELL)
        return super().entry(index)

    def gc(self, completed_tail):
        self._mon.atomic_write(self.CELL)
        return super().gc(completed_tail)

    def __len__(self) -> int:
        self._mon.atomic_read(self.CELL)
        return super().__len__()


#: Replica attributes the real algorithm reads/writes with atomics.
_ATOMIC_ATTRS = frozenset({"combiner", "ltail"})
#: Replica attributes that are plain data (combiner-only counters).
_DATA_ATTRS = frozenset({"batches", "max_batch"})


class TracedReplica(Replica):
    """A Replica whose attribute traffic is reported to the monitor."""

    def __init__(self, ds, monitor: RaceMonitor, index: int) -> None:
        object.__setattr__(self, "_mon", None)   # mute during base init
        prefix = f"replica{index}"
        super().__init__(ds=TracedDS(ds, monitor, f"{prefix}.ds"))
        self.slots = TracedDict(monitor, f"{prefix}.slots")
        self.results = TracedDict(monitor, f"{prefix}.results")
        self.lock = TracedRwLock(monitor, f"{prefix}.lock")
        object.__setattr__(self, "_prefix", prefix)
        object.__setattr__(self, "_mon", monitor)

    def __getattribute__(self, name):
        value = object.__getattribute__(self, name)
        if name.startswith("_"):
            return value
        monitor = object.__getattribute__(self, "_mon")
        if monitor is not None:
            prefix = object.__getattribute__(self, "_prefix")
            if name in _ATOMIC_ATTRS:
                monitor.atomic_read(f"{prefix}.{name}")
            elif name in _DATA_ATTRS:
                monitor.data_read(f"{prefix}.{name}")
        return value

    def __setattr__(self, name, value):
        monitor = object.__getattribute__(self, "_mon")
        if monitor is not None and not name.startswith("_"):
            prefix = object.__getattribute__(self, "_prefix")
            if name in _ATOMIC_ATTRS:
                monitor.atomic_write(f"{prefix}.{name}")
            elif name in _DATA_ATTRS:
                monitor.data_write(f"{prefix}.{name}")
        object.__setattr__(self, name, value)


def instrument(nr: NodeReplicated, monitor: RaceMonitor) -> NodeReplicated:
    """Replace a fresh NodeReplicated's shared state with traced
    versions (must be called before any operation runs)."""
    if len(nr.log) or nr.log.tail:
        raise ValueError("instrument() needs a fresh NodeReplicated")
    nr.log = TracedLog(monitor)
    nr.replicas = [TracedReplica(replica.ds, monitor, i)
                   for i, replica in enumerate(nr.replicas)]
    return nr


# -- the replay driver --------------------------------------------------------------


@dataclass
class RaceReport:
    """What one replay campaign observed."""

    races: list[Race] = field(default_factory=list)
    steps: int = 0
    accesses: int = 0
    seeds: list[int] = field(default_factory=list)
    schedules: int = 0

    @property
    def clean(self) -> bool:
        return not self.races


def default_scripts(num_threads: int = 4, num_nodes: int = 2,
                    ops_per_thread: int = 6):
    """The mixed put/get/del workload the detector replays (mirrors the
    kvstore linearizability workload)."""
    from repro.nr.interleave import ThreadScript

    keys = ["alpha", "beta", "gamma"]
    scripts = []
    for t in range(num_threads):
        ops = []
        for i in range(ops_per_thread):
            key = keys[(t + i) % len(keys)]
            which = (t * 7 + i) % 3
            if which == 0:
                ops.append((("put", key, f"v{t}.{i}"), False))
            elif which == 1:
                ops.append((("get", key), True))
            else:
                ops.append((("del", key), False))
        scripts.append(ThreadScript(thread=t, node=t % num_nodes, ops=ops))
    return scripts


def replay(scripts, seed: int, nr_factory=None, monitor: RaceMonitor = None,
           max_steps: int = 200_000) -> RaceMonitor:
    """Interleave the scripts' protocol steps under `seed`, reporting
    every access to `monitor`; returns the monitor."""
    if nr_factory is None:
        nr_factory = lambda: NodeReplicated(KvStore, num_nodes=2)  # noqa: E731
    if monitor is None:
        monitor = RaceMonitor()
    nr = instrument(nr_factory(), monitor)

    rng = random.Random(seed)
    runners = []
    for script in scripts:
        runners.append({"script": script, "index": 0, "gen": None})

    def start_next(runner) -> bool:
        script = runner["script"]
        if runner["index"] >= len(script.ops):
            return False
        op, is_read = script.ops[runner["index"]]
        if is_read:
            runner["gen"] = nr.read_steps(op, script.node, script.thread)
        else:
            runner["gen"] = nr.execute_steps(op, script.node, script.thread)
        return True

    for runner in runners:
        start_next(runner)
    active = [r for r in runners if r["gen"] is not None]

    steps = 0
    while active:
        steps += 1
        if steps > max_steps:
            raise RuntimeError(
                f"race replay did not finish within {max_steps} steps")
        runner = rng.choice(active)
        thread = runner["script"].thread
        monitor.step_begin(thread)
        try:
            label = next(runner["gen"])
        except StopIteration:
            monitor.step_end(None)
            runner["index"] += 1
            runner["gen"] = None
            if not start_next(runner):
                active.remove(runner)
        else:
            monitor.step_end(label)
    return monitor


def detect_races(seeds, nr_factory=None, scripts=None,
                 max_steps: int = 200_000) -> RaceReport:
    """Replay the protocol once per seed (fresh instance each time, so
    every schedule starts from the same state) and merge the reports."""
    report = RaceReport(seeds=list(seeds))
    for seed in report.seeds:
        monitor = replay(scripts or default_scripts(), seed=seed,
                         nr_factory=nr_factory, max_steps=max_steps)
        report.races.extend(monitor.races)
        report.steps += monitor.seq
        report.accesses += monitor.accesses
        report.schedules += 1
    return report
