"""``python -m repro analyze`` — run the verification-aware static
analysis passes and gate CI on the result.

Exit status (stable, CI scripts switch on it): 0 when every finding is
suppressed or absent, 1 on any active finding, 2 when the run itself
could not proceed (unknown pass or mutant).  Findings stream through
:mod:`repro.obs` as ``analysis.finding`` events, so ``--trace
out.jsonl`` captures them alongside everything else;
``--format json`` renders one canonical, schema-validated payload
(:mod:`repro.analysis.jsonreport`).
"""

from __future__ import annotations

import json
import os
import pathlib

from repro import obs
from repro.analysis.findings import (AnalysisReport, apply_suppressions,
                                     dead_suppressions)
from repro.analysis.imports import check_layering, discover_sources
from repro.analysis.purity import check_purity
from repro.analysis.race import default_scripts, detect_races
from repro.obs.console import err, out

PASSES = ("layering", "purity", "rg", "lockorder", "deadsupp", "race")

#: Passes whose findings suppression comments can waive.  The dead-
#: suppression lint only runs when all of them did: a waiver for a
#: skipped pass is not dead, just unexercised.
_STATIC_PASSES = ("layering", "purity", "rg", "lockorder")

#: Seeds replayed by the race pass; quick mode keeps CI cheap.
RACE_SEEDS = tuple(range(16))
RACE_SEEDS_QUICK = tuple(range(4))


def repo_root() -> pathlib.Path:
    """The repository this installed package was loaded from."""
    import repro

    return pathlib.Path(repro.__file__).resolve().parents[2]


def _load_layer_map(root: pathlib.Path):
    """A fixture tree carries its own map as layer_map.json:
    ``[[prefix, layer], ...]`` (optionally ``[prefix, layer, loc]``)."""
    path = root / "layer_map.json"
    if not path.exists():
        return None
    entries = json.loads(path.read_text(encoding="utf-8"))
    return [tuple(entry) for entry in entries]


def run_analysis(root=None, skip=(), seeds=None, max_steps: int = 200_000,
                 mutant: str | None = None) -> AnalysisReport:
    """Run the selected passes and return the combined report."""
    report = AnalysisReport()
    quick = os.environ.get("REPRO_BENCH_QUICK") == "1"

    custom_root = root is not None
    root = pathlib.Path(root) if custom_root else repo_root()
    layer_map = _load_layer_map(root) if custom_root else None
    sources = discover_sources(root, None if layer_map else "src/repro")

    rg_mutant = None
    if mutant is not None:
        from repro.analysis.rg_mutants import RG_MUTANTS, apply_rg_mutant

        if mutant in RG_MUTANTS:
            rg_mutant = mutant
            sources = apply_rg_mutant(sources, mutant)

    if "layering" not in skip:
        findings, stats = check_layering(sources, layer_map)
        report.extend(findings)
        report.stats["layering"] = stats

    if "purity" not in skip:
        findings, stats = check_purity(sources, layer_map)
        report.extend(findings)
        report.stats["purity"] = stats

    if "rg" not in skip:
        from repro.analysis.rg import check_interference

        findings, stats = check_interference(sources)
        report.extend(findings)
        if rg_mutant is not None:
            stats["target"] = f"mutant:{rg_mutant}"
        report.stats["rg"] = stats

    if "lockorder" not in skip:
        from repro.analysis.lockorder import check_lock_order

        findings, stats = check_lock_order(sources)
        report.extend(findings)
        report.stats["lockorder"] = stats

    apply_suppressions(report.findings, sources)

    if "deadsupp" not in skip and not set(_STATIC_PASSES) & set(skip) \
            and rg_mutant is None:
        findings = dead_suppressions(report.findings, sources)
        report.extend(findings)
        report.stats["deadsupp"] = {"dead": len(findings)}

    if "race" not in skip:
        from repro.analysis.sched_race import (SCHED_MUTANTS,
                                               detect_sched_races)

        if seeds is None:
            seeds = RACE_SEEDS_QUICK if quick else RACE_SEEDS
        nr_factory = None
        sched_protocol = None
        run_nr = run_sched = mutant is None
        if mutant is not None and rg_mutant is None:
            from repro.analysis.mutants import MUTANTS
            from repro.analysis.rg_mutants import RG_MUTANTS
            from repro.nr.datastructures import KvStore

            if mutant in MUTANTS:
                cls = MUTANTS[mutant]
                nr_factory = lambda: cls(KvStore, num_nodes=2)  # noqa: E731
                run_nr = True
            elif mutant in SCHED_MUTANTS:
                sched_protocol = SCHED_MUTANTS[mutant]
                run_sched = True
            else:
                raise SystemExit(
                    f"unknown --mutant {mutant!r}; choose from "
                    f"{sorted(MUTANTS) + sorted(SCHED_MUTANTS) + sorted(RG_MUTANTS)}")
        if run_nr:
            race_report = detect_races(seeds, nr_factory=nr_factory,
                                       scripts=default_scripts(),
                                       max_steps=max_steps)
            for race in race_report.races:
                report.findings.append(_race_finding(race, mutant))
            report.stats["race"] = {
                "schedules": race_report.schedules,
                "steps": race_report.steps,
                "accesses": race_report.accesses,
                "races": len(race_report.races),
                "target": mutant or "nr-protocol",
            }
        if run_sched:
            kwargs = ({"protocol_cls": sched_protocol}
                      if sched_protocol is not None else {})
            sched_report = detect_sched_races(seeds, **kwargs)
            for race in sched_report.races:
                report.findings.append(_sched_race_finding(race, mutant))
            report.stats["race_sched"] = {
                "schedules": sched_report.schedules,
                "steps": sched_report.steps,
                "accesses": sched_report.accesses,
                "races": len(sched_report.races),
                "target": mutant or "sched-protocol",
            }
    return report


def _race_finding(race, mutant):
    from repro.analysis.findings import Finding

    source = f"mutant:{mutant}" if mutant else "repro.nr protocol"
    return Finding(rule="race.unordered-access",
                   path="src/repro/nr/core.py" if not mutant
                        else "src/repro/analysis/mutants.py",
                   line=1,
                   message=f"[{source}] {race.render()}")


def _sched_race_finding(race, mutant):
    from repro.analysis.findings import Finding

    source = f"mutant:{mutant}" if mutant else "repro.nros.sched protocol"
    return Finding(rule="race.unordered-access",
                   path="src/repro/nros/sched/smp.py" if not mutant
                        else "src/repro/analysis/sched_race.py",
                   line=1,
                   message=f"[{source}] {race.render()}")


def _emit_events(report: AnalysisReport) -> None:
    bus = obs.bus()
    for finding in report.findings:
        bus.emit("analysis.finding", rule=finding.rule, file=finding.path,
                 line=finding.line, message=finding.message,
                 suppressed=finding.suppressed)
    for name, stats in report.stats.items():
        bus.emit("analysis.pass", stage=name, **{
            k: v for k, v in stats.items()
            if isinstance(v, (str, int, float, bool))})
    bus.emit("analysis.summary", violations=len(report.active),
             suppressed=len(report.suppressed))


def main(args) -> int:
    from repro.analysis.jsonreport import (EXIT_CLEAN, EXIT_ERROR,
                                           EXIT_FINDINGS, render_json)

    as_json = getattr(args, "format", "text") == "json"
    if args.list_rules:
        out("analysis rules:")
        for rule, text in sorted(RULES.items()):
            out(f"  {rule:<28} {text}")
        return 0

    skip = {name for name in (args.skip or "").split(",") if name}
    unknown = skip - set(PASSES)
    if unknown:
        err(f"unknown --skip {sorted(unknown)}; choose from "
            f"{sorted(PASSES)}")
        return EXIT_ERROR

    seeds = None
    if args.seed is not None:
        seeds = [args.seed]

    try:
        report = run_analysis(root=args.root, skip=skip, seeds=seeds,
                              max_steps=args.max_steps, mutant=args.mutant)
    except SystemExit as exc:          # unknown mutant and friends
        err(str(exc))
        return EXIT_ERROR
    _emit_events(report)

    if as_json:
        out(render_json(report))
        return EXIT_CLEAN if report.clean else EXIT_FINDINGS

    for finding in report.findings:
        (out if finding.suppressed else err)("  " + finding.render())
    for line in report.summary_lines():
        out("analyze: " + line)

    return EXIT_CLEAN if report.clean else EXIT_FINDINGS


#: rule id -> one-line description (for --list-rules and the README).
RULES = {
    "layering.spec-imports-exec":
        "a spec module imports the implementation it specifies",
    "layering.exec-imports-proof":
        "an exec module imports spec/proof at module level "
        "(breaks ghost-code erasure)",
    "layering.forbidden-import":
        "an import the layer map's allowed-imports matrix forbids",
    "ghost-import":
        "deferred spec/proof import from exec code without an explicit "
        "'# repro: allow(ghost-import)' marker",
    "erasure.exec-reaches-proof":
        "an exec module reaches the proof layer transitively at import "
        "time",
    "erasure.spec-reaches-exec":
        "a spec module reaches the implementation transitively at "
        "import time",
    "layers.unmapped":
        "a file the layer map does not classify",
    "purity.mutation":
        "a contract predicate or spec function mutates observable state",
    "purity.io":
        "a contract predicate or spec function performs I/O",
    "purity.nondeterminism":
        "a contract predicate or spec function reads a nondeterministic "
        "source (unseeded random, wall clock)",
    "console.bare-print":
        "bare print() outside repro.obs.console",
    "race.unordered-access":
        "two conflicting protocol step accesses (NR or SMP runqueue) "
        "with no happens-before edge and no common lock",
    "rg.unguarded-write":
        "a lock-guarded atomic action writes shared state outside its "
        "'with self.<lock>:' bracket",
    "rg.unguarded-read":
        "a lock-guarded atomic action reads shared state outside its "
        "lock bracket",
    "rg.undeclared-write":
        "an action writes shared state its declared guarantee does not "
        "cover",
    "rg.undeclared-read":
        "an action reads shared state outside its declared footprint",
    "rg.unspecified-action":
        "an undeclared method mutates shared state (interference the "
        "rely never admitted)",
    "rg.missing-action":
        "a declared atomic action has no matching method (the rg spec "
        "rotted)",
    "rg.nr-bypass":
        "code reaches through .replicas around the NR log outside the "
        "sanctioned accessors",
    "lockorder.cycle":
        "the static lock acquisition graph has a cycle (a deadlock-"
        "capable lock order)",
    "lockorder.unordered-same-class":
        "two locks of the same class nested without a sanctioned "
        "ordering (sorted acquisition)",
    "suppression.dead":
        "a '# repro: allow(rule)' comment that no longer suppresses "
        "any finding",
    "parse-error":
        "a source file failed to parse",
}
