"""``analyze --format json`` — machine-readable findings.

The payload reuses the :mod:`repro.obs` event machinery rather than
inventing a parallel schema: every finding is an ``analysis.finding``
event record (validated by :func:`repro.obs.events.validate_record`,
the same schema the CI trace job enforces), each pass contributes an
``analysis.pass`` record, and one ``analysis.summary`` record closes
the report.  Timestamps are pinned to ``t=0`` on the logical clock so
the rendering is a pure function of the findings — the determinism
test diffs two runs byte-for-byte.

Exit codes are part of the contract (CI scripts switch on them):

* ``0`` — clean: no active finding;
* ``1`` — at least one active (unsuppressed) finding;
* ``2`` — the analysis itself could not run (unknown pass, unknown
  mutant, unreadable tree).
"""

from __future__ import annotations

import json

from repro.analysis.findings import AnalysisReport
from repro.obs.events import make_event, validate_record

#: Identifies the payload shape for downstream consumers.
SCHEMA = "repro.analysis/v1"

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def _record(name: str, **fields) -> dict:
    record = make_event(name, t=0, clock="wall", **fields).to_dict()
    problems = validate_record(record)
    if problems:  # a bug in this module, not in the analyzed tree
        raise ValueError(f"invalid {name} record: {problems}")
    return record


def report_records(report: AnalysisReport) -> list[dict]:
    """The report as validated event records, deterministically ordered:
    findings sorted by location, pass stats by pass name."""
    records = []
    for finding in sorted(report.findings,
                          key=lambda f: (f.path, f.line, f.rule,
                                         f.message)):
        records.append(_record(
            "analysis.finding", rule=finding.rule, file=finding.path,
            line=finding.line, message=finding.message,
            suppressed=finding.suppressed))
    for name in sorted(report.stats):
        scalars = {k: v for k, v in report.stats[name].items()
                   if isinstance(v, (str, int, float, bool))}
        records.append(_record("analysis.pass", stage=name, **scalars))
    records.append(_record("analysis.summary",
                           violations=len(report.active),
                           suppressed=len(report.suppressed)))
    return records


def render_json(report: AnalysisReport) -> str:
    """Canonical (sorted-keys, tight-separator) JSON for the report.
    Byte-identical across runs with identical findings."""
    payload = {
        "schema": SCHEMA,
        "clean": report.clean,
        "records": report_records(report),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
