"""The layering / erasure checker — ghost-code erasure, statically.

Verus erases ghost code at compile time: the executable kernel links
with the specification and proof absent.  The Python analog enforced
here is an import discipline over the declarative layer map
(:mod:`repro.analysis.layers`):

* ``layering.spec-imports-exec`` — a spec module imports the
  implementation (the specification must not depend on what it
  specifies);
* ``layering.exec-imports-proof`` — an exec module imports a proof or
  spec module at module level, so the runtime path cannot load with the
  proof layer deleted;
* ``ghost-import`` — an exec module imports proof/spec *inside a
  function*.  That is the Python spelling of a ghost function (the
  import is only paid when a verification entry point runs), but it
  must be explicit: the line needs ``# repro: allow(ghost-import)``;
* ``erasure.exec-reaches-proof`` / ``erasure.spec-reaches-exec`` —
  transitive versions closing the loophole of reaching a forbidden
  layer through an intermediate ``other`` module;
* ``layers.unmapped`` — a file the layer map does not classify (the
  drift that silently distorts the Section-5 ratio).
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.analysis.layers import ALLOWED_IMPORTS, classify_layer


@dataclass(frozen=True)
class ImportEdge:
    """One resolved intra-tree import."""

    src: str            # repo-relative importing file
    dst: str            # repo-relative imported file
    line: int
    module_level: bool
    name: str           # the dotted module name as written


def discover_sources(root: pathlib.Path,
                     subdir: str | None = "src/repro") -> dict[str, str]:
    """Repo-relative path -> source text for every analyzed module."""
    root = pathlib.Path(root)
    base = root / subdir if subdir else root
    sources = {}
    for path in sorted(base.rglob("*.py")):
        if any(part.startswith(".") for part in path.parts):
            continue
        sources[path.relative_to(root).as_posix()] = path.read_text(
            encoding="utf-8")
    return sources


def _resolve(name: str, sources: dict[str, str]) -> str | None:
    """Resolve a dotted module name to an analyzed file, trying the repo
    layouts we know about (``src/`` package roots and flat fixture
    trees)."""
    rel = name.replace(".", "/")
    for candidate in (f"src/{rel}.py", f"src/{rel}/__init__.py",
                      f"{rel}.py", f"{rel}/__init__.py"):
        if candidate in sources:
            return candidate
    return None


def _package_of(relpath: str) -> str:
    """Dotted package containing `relpath` (for relative imports)."""
    parts = relpath.split("/")
    if parts[0] == "src":
        parts = parts[1:]
    parts = parts[:-1]  # drop the file
    return ".".join(parts)


def build_import_graph(sources: dict[str, str]) -> list[ImportEdge]:
    """Every intra-tree import edge, with source position and whether it
    executes at module import time."""
    edges = []
    for relpath, text in sources.items():
        try:
            tree = ast.parse(text, filename=relpath)
        except SyntaxError:
            continue
        # Mark nodes nested under a function/class body as deferred.
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                child._parent = node  # type: ignore[attr-defined]

        def is_module_level(node) -> bool:
            seen = node
            while True:
                parent = getattr(seen, "_parent", None)
                if parent is None:
                    return True
                if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef,
                                       ast.Lambda)):
                    return False
                seen = parent

        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                names = [(alias.name, alias.name) for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    pkg = _package_of(relpath).split(".")
                    pkg = pkg[: len(pkg) - (node.level - 1)]
                    base = ".".join(pkg + ([base] if base else []))
                # `from X import name` may import the submodule X.name
                # or an attribute of X; try the submodule first.
                names = [(f"{base}.{alias.name}" if base else alias.name,
                          base or alias.name) for alias in node.names]
            else:
                continue
            level = is_module_level(node)
            for submodule, fallback in names:
                dst = _resolve(submodule, sources)
                if dst is None and fallback != submodule:
                    dst = _resolve(fallback, sources)
                if dst is None or dst == relpath:
                    continue
                edges.append(ImportEdge(src=relpath, dst=dst,
                                        line=node.lineno,
                                        module_level=level,
                                        name=submodule))
    return edges


def _transitive_hits(start: str, graph: dict[str, list[ImportEdge]],
                     layers: dict[str, str], through: set[str],
                     forbidden: set[str]) -> list[list[ImportEdge]]:
    """Shortest module-level chains from `start` through layers in
    `through` ending on a layer in `forbidden` (chains of length >= 2;
    direct edges are covered by the edge rules)."""
    hits = []
    seen = {start}
    frontier: list[list[ImportEdge]] = [[edge] for edge in graph.get(start, ())]
    while frontier:
        next_frontier = []
        for chain in frontier:
            node = chain[-1].dst
            if node in seen:
                continue
            seen.add(node)
            layer = layers.get(node)
            if layer in forbidden:
                if len(chain) >= 2:
                    hits.append(chain)
                continue
            if layer in through:
                for edge in graph.get(node, ()):
                    next_frontier.append(chain + [edge])
        frontier = next_frontier
    return hits


def check_layering(sources: dict[str, str],
                   layer_map=None) -> tuple[list[Finding], dict]:
    """Run every layering/erasure rule; returns (findings, stats)."""
    findings: list[Finding] = []
    layers: dict[str, str] = {}
    for relpath in sources:
        layer = classify_layer(relpath, layer_map)
        if layer is None:
            findings.append(Finding(
                rule="layers.unmapped", path=relpath, line=1,
                message="file is not classified by the layer map "
                        "(spec/proof/exec/other); add an entry so the "
                        "proof-to-code ratio cannot silently drift"))
            layer = "other"
        layers[relpath] = layer

    edges = build_import_graph(sources)
    module_graph: dict[str, list[ImportEdge]] = {}
    for edge in edges:
        if edge.module_level:
            module_graph.setdefault(edge.src, []).append(edge)

    for edge in edges:
        src_layer, dst_layer = layers[edge.src], layers[edge.dst]
        if src_layer == "spec" and dst_layer == "exec":
            findings.append(Finding(
                rule="layering.spec-imports-exec", path=edge.src,
                line=edge.line,
                message=f"spec module imports implementation module "
                        f"{edge.name} ({edge.dst}); the specification "
                        f"must not depend on the code it specifies"))
        elif src_layer == "exec" and dst_layer in ("proof", "spec"):
            if edge.module_level:
                findings.append(Finding(
                    rule="layering.exec-imports-proof", path=edge.src,
                    line=edge.line,
                    message=f"exec module imports {dst_layer} module "
                            f"{edge.name} ({edge.dst}) at module level; "
                            f"the runtime path must be loadable with the "
                            f"proof layer erased"))
            else:
                findings.append(Finding(
                    rule="ghost-import", path=edge.src, line=edge.line,
                    message=f"deferred import of {dst_layer} module "
                            f"{edge.name} from exec code; ghost imports "
                            f"must be explicit — annotate with "
                            f"'# repro: allow(ghost-import)'"))
        elif dst_layer not in ALLOWED_IMPORTS[src_layer]:
            findings.append(Finding(
                rule="layering.forbidden-import", path=edge.src,
                line=edge.line,
                message=f"{src_layer} module may not import {dst_layer} "
                        f"module {edge.name} ({edge.dst})"))

    for start, layer in sorted(layers.items()):
        if layer == "exec":
            chains = _transitive_hits(start, module_graph, layers,
                                      through={"exec", "other"},
                                      forbidden={"proof", "spec"})
            rule = "erasure.exec-reaches-proof"
            what = "proof layer"
        elif layer == "spec":
            chains = _transitive_hits(start, module_graph, layers,
                                      through={"spec", "other"},
                                      forbidden={"exec"})
            rule = "erasure.spec-reaches-exec"
            what = "implementation"
        else:
            continue
        for chain in chains[:1]:  # one shortest chain per module is enough
            path_str = " -> ".join([chain[0].src] + [e.dst for e in chain])
            findings.append(Finding(
                rule=rule, path=start, line=chain[0].line,
                message=f"reaches the {what} transitively at module "
                        f"import time: {path_str}"))

    stats = {
        "files": len(sources),
        "edges": len(edges),
        "module_level_edges": sum(1 for e in edges if e.module_level),
    }
    return findings, stats
