"""The declarative layer map — the single source of truth for the
spec / proof / exec / other boundary.

The paper's argument (and Section 5's 10:1 proof-to-code ratio) depends
on Verus *erasing* ghost code at compile time: the executable kernel can
be built with the specification and proof absent.  This module declares,
per module path, which side of that boundary every file in the tree is
on; two consumers derive from it so they cannot drift apart:

* the layering / erasure checker (:mod:`repro.analysis.imports`)
  enforces the import discipline the map implies, and
* :data:`repro.metrics.loc.CLASSIFICATION` — the Section-5 ratio — is
  rederived from the same entries via :func:`loc_classification`.

Layers:

``spec``
    Mathematical specification: state machines, transition relations,
    syscall predicates.  May import the verification framework and
    universal definitions, never the implementation.
``proof``
    Everything that *relates* spec to implementation — refinement
    lemmas, interpretation functions, the verification framework, the
    SMT stack, the prover tooling.  Proof may import anything.
``exec``
    The executable system: page tables, hardware models, the kernel,
    NR, ulib, applications.  The erasure discipline: an exec module
    must be importable with every spec and proof module deleted, so
    module-level imports of spec/proof are violations, and deferred
    (function-local) ones must carry an explicit
    ``# repro: allow(ghost-import)`` marker.
``other``
    Universal definitions (word arithmetic, immutable containers,
    shared constants) and tooling outside the theorem (observability,
    fault campaign, metrics, this analysis package).

Each entry is ``(path_prefix, layer, loc_kind)`` with first match wins;
``loc_kind`` overrides the default layer→loc mapping used by the
proof-to-code ratio (``spec``/``proof`` count as proof lines, ``exec``
as code, ``other`` as other).
"""

from __future__ import annotations

LAYERS = ("spec", "proof", "exec", "other")

#: Default loc kind (proof/code/other) for each layer.
DEFAULT_LOC_KIND = {
    "spec": "proof",
    "proof": "proof",
    "exec": "code",
    "other": "other",
}

#: (path prefix relative to the repo root, layer, loc-kind override or None);
#: first match wins, so file-specific entries precede their directory.
LAYER_MAP = [
    # -- the page-table artifact ------------------------------------------------
    # hardware.py states what walker+bits must guarantee to the abstract
    # map — a refinement predicate, hence proof, not spec.
    ("src/repro/core/spec/hardware.py", "proof", None),
    ("src/repro/core/spec", "spec", None),
    ("src/repro/core/contract/proof.py", "proof", None),
    # view.py is the runtime-checked Sys bridging spec and impl.
    ("src/repro/core/contract/view.py", "proof", None),
    ("src/repro/core/contract", "spec", None),
    ("src/repro/core/refine", "proof", None),
    # pt/defs.py is shared bit-layout definitions quantified over by the
    # spec; universal, but its lines are implementation for the ratio.
    ("src/repro/core/pt/defs.py", "other", "code"),
    ("src/repro/core/pt", "exec", None),
    ("src/repro/core/__init__.py", "other", None),
    # -- verification framework -------------------------------------------------
    # linear.py is the *dynamic* ownership checker the kernel runs in
    # debug builds: exec-support at runtime, proof lines for the ratio.
    ("src/repro/verif/linear.py", "exec", "proof"),
    # the scheduler spec is a first-class spec module (pure state
    # machine + invariants); its proof module stays in the proof layer
    ("src/repro/verif/schedspec.py", "spec", None),
    ("src/repro/verif/schedproof.py", "proof", None),
    # the rely-guarantee interference spec (declarations + pure finite
    # models) is spec; its stability-VC module stays in the proof layer
    ("src/repro/verif/rgspec.py", "spec", None),
    ("src/repro/verif/rgproof.py", "proof", None),
    ("src/repro/verif", "proof", None),
    ("src/repro/smt", "proof", None),
    # prover is tooling around the proof (scheduler, cache): its lines
    # are neither side of the theorem.
    ("src/repro/prover", "proof", "other"),
    # -- node replication -------------------------------------------------------
    ("src/repro/nr/linearizability.py", "proof", None),
    ("src/repro/nr/proof.py", "proof", None),
    ("src/repro/nr/interleave.py", "proof", None),
    ("src/repro/nr", "exec", None),
    # -- the executable system --------------------------------------------------
    ("src/repro/hw", "exec", None),
    # the multi-class scheduler (runqueues, SMP protocol) is kernel
    # code; listed explicitly because the sched CI job audits it by name
    ("src/repro/nros/sched", "exec", None),
    # the submission/completion ring (batched syscall dispatch) is
    # kernel code; listed explicitly because the ring CI job audits it
    ("src/repro/nros/syscall/ring.py", "exec", None),
    ("src/repro/nros", "exec", None),
    ("src/repro/ulib", "exec", None),
    ("src/repro/apps", "exec", None),
    # the WAL rides the verified FS through the file API — exec layer,
    # listed explicitly because the crash matrix audits it by name
    ("src/repro/cluster/wal.py", "exec", None),
    ("src/repro/cluster", "exec", None),
    ("src/repro/sim", "exec", None),
    # -- universal definitions --------------------------------------------------
    ("src/repro/wordlib.py", "other", "code"),
    ("src/repro/immutable.py", "other", "code"),
    # -- tooling outside the theorem --------------------------------------------
    ("src/repro/obs", "other", None),
    ("src/repro/faults", "other", None),
    ("src/repro/metrics", "other", None),
    ("src/repro/related", "other", None),
    ("src/repro/analysis", "other", None),
    ("src/repro/__init__.py", "other", None),
    ("src/repro/__main__.py", "other", None),
    # -- outside src/repro (loc classification only) ----------------------------
    ("tests", "proof", None),
    ("benchmarks", "other", None),
    ("examples", "other", None),
]

#: What each layer may import at module level.  Proof and other are
#: unconstrained: proof must mention both sides to relate them, and
#: other is either universal (imports nothing upward) or tooling that
#: drives the whole stack.  The transitive erasure check in
#: :mod:`repro.analysis.imports` closes the spec→other→exec loophole.
ALLOWED_IMPORTS = {
    "spec": {"spec", "proof", "other"},
    "proof": {"spec", "proof", "exec", "other"},
    "exec": {"exec", "other"},
    "other": {"spec", "proof", "exec", "other"},
}


def _matches(relative: str, prefix: str) -> bool:
    """Path-component-aware prefix match (``src/repro/nr`` must not
    claim ``src/repro/nros``)."""
    return relative == prefix or relative.startswith(prefix + "/")


def classify_layer(relative: str, layer_map=None) -> str | None:
    """Layer of a repo-relative path, or None when unmapped."""
    for entry in layer_map if layer_map is not None else LAYER_MAP:
        if _matches(relative, entry[0]):
            return entry[1]
    return None


def loc_kind(relative: str, layer_map=None) -> str:
    """proof/code/other classification for the Section-5 ratio."""
    for entry in layer_map if layer_map is not None else LAYER_MAP:
        if _matches(relative, entry[0]):
            override = entry[2] if len(entry) > 2 else None
            return override or DEFAULT_LOC_KIND[entry[1]]
    return "other"


def loc_classification() -> list[tuple[str, str]]:
    """The ``(kind, prefix)`` list :data:`repro.metrics.loc.CLASSIFICATION`
    is derived from, preserving the map's first-match-wins order."""
    out = []
    for entry in LAYER_MAP:
        prefix, layer = entry[0], entry[1]
        override = entry[2] if len(entry) > 2 else None
        out.append((override or DEFAULT_LOC_KIND[layer], prefix))
    return out


def spec_modules(layer_map=None) -> list[str]:
    """Path prefixes mapped to the spec layer (purity-lint scope)."""
    entries = layer_map if layer_map is not None else LAYER_MAP
    return [e[0] for e in entries if e[1] == "spec"]
