"""The rely-guarantee interference checker (the ``rg.*`` rules).

The stability proofs in :mod:`repro.verif.rgproof` assume the
implementation's shared-state mutations happen only inside the atomic
actions :mod:`repro.verif.rgspec` declares — a lock bracket, the NR
combiner, or an ambient ownership discipline.  This pass discharges
that hypothesis statically: for every declared component class it
extracts each method's *shared-state footprint* from the AST (which
declared attributes it reads and writes, and whether each access sits
inside the guard) and diffs it against the declaration.

Rules:

* ``rg.unguarded-write`` / ``rg.unguarded-read`` — a lock-guarded
  action touches shared state outside its ``with self.<lock>:``
  bracket (the seeded interference mutants trip exactly this);
* ``rg.undeclared-write`` / ``rg.undeclared-read`` — an action's real
  footprint exceeds its declared guarantee;
* ``rg.unspecified-action`` — an undeclared method mutates shared
  state (interference the rely never admitted);
* ``rg.missing-action`` — a declared action has no matching method
  (the spec rotted);
* ``rg.nr-bypass`` — code reaches through ``.replicas`` around the NR
  log outside the sanctioned accessors.

Footprint extraction is deliberately write-biased: *every* method call
on a shared root counts as a write unless the method is declared
read-only (``dict.pop`` mutates even when its result is consumed, so
the purity lint's discarded-result heuristic would be unsound here),
and aliases of shared state (``tlb = self._tlbs[core]``, loop targets
over ``self._tlbs.values()``) carry the taint.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.verif.rgspec import COMPONENTS, LOCK, NR, READONLY_METHODS


def _self_attr_base(node):
    """The bottom ``self.<attr>`` Attribute of a chain like
    ``self._free[k].discard`` or ``self.nr.replicas[n].ds``, else None."""
    while True:
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return None


def _chain_root_name(node) -> str | None:
    """Leftmost Name of an attribute/subscript/call chain, or None."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _annotate_parents(node) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for parent in ast.walk(node):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent
    return parents


def _inside_lock(node, lock_attr: str, parents) -> bool:
    """Is the node lexically inside ``with self.<lock_attr>:``?"""
    current = node
    while id(current) in parents:
        current = parents[id(current)]
        if isinstance(current, ast.With):
            for item in current.items:
                expr = item.context_expr
                if (isinstance(expr, ast.Attribute)
                        and isinstance(expr.value, ast.Name)
                        and expr.value.id == "self"
                        and expr.attr == lock_attr):
                    return True
    return False


class _Footprint:
    """Shared accesses of one method: (attr, kind, node) triples plus
    the sanctioned/bypass ``.replicas`` reaches."""

    def __init__(self) -> None:
        self.accesses: list[tuple[str, str, ast.AST]] = []
        self.replica_reaches: list[ast.AST] = []


def _collect_aliases(method, shared: set[str]) -> dict[str, str]:
    """Names bound to values chaining from a shared attribute (or from
    an existing alias) — a conservative one-level taint."""
    aliases: dict[str, str] = {}
    # Two sweeps so an alias-of-alias in later code still resolves.
    for _ in range(2):
        for node in ast.walk(method):
            value = None
            targets: list = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, (ast.For, ast.comprehension)):
                value = node.iter
                targets = [node.target]
            elif isinstance(node, ast.NamedExpr):
                value, targets = node.value, [node.target]
            if value is None:
                continue
            base = _self_attr_base(value)
            attr = None
            if base is not None and base.attr in shared:
                attr = base.attr
            else:
                root = _chain_root_name(value)
                if root in aliases:
                    attr = aliases[root]
            if attr is None:
                continue
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        aliases[leaf.id] = attr
    return aliases


def _extract_footprint(method, shared: set[str],
                       readonly: set[str]) -> _Footprint:
    fp = _Footprint()
    aliases = _collect_aliases(method, shared)
    claimed: set[int] = set()

    def record(attr, kind, node, base=None):
        if base is not None:
            claimed.add(id(base))
        fp.accesses.append((attr, kind, node))

    def classify_target(target, node):
        base = _self_attr_base(target)
        if base is not None and base.attr in shared:
            record(base.attr, "write", node, base)
            return
        root = _chain_root_name(target)
        if isinstance(target, (ast.Attribute, ast.Subscript)) and \
                root in aliases:
            record(aliases[root], "write", node)
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                classify_target(element, node)

    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                classify_target(target, node)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            classify_target(node.target, node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                classify_target(target, node)
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute):
            called = node.func.attr
            receiver = node.func.value
            base = _self_attr_base(receiver)
            kind = "read" if called in readonly else "write"
            if base is not None and base.attr in shared:
                record(base.attr, kind, node, base)
            else:
                root = _chain_root_name(receiver)
                if isinstance(receiver, (ast.Name, ast.Attribute,
                                         ast.Subscript)) and \
                        root in aliases and root != "self":
                    record(aliases[root], kind, node)

    # Everything left over rooted at self.<shared> is a plain read.
    for node in ast.walk(method):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in shared
                and id(node) not in claimed
                and isinstance(node.ctx, ast.Load)):
            record(node.attr, "read", node)
        if isinstance(node, ast.Attribute) and node.attr == "replicas":
            base = _self_attr_base(node)
            if base is not None and base.attr in shared:
                fp.replica_reaches.append(node)
    return fp


def _class_node(tree, cls: str):
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == cls:
            return node
    return None


def _check_component(component, path: str, tree,
                     findings: list[Finding], stats: dict) -> None:
    shared_map = component.shared_map()
    shared = set(shared_map)
    readonly = set(READONLY_METHODS) | set(component.readonly_methods)
    cls = _class_node(tree, component.cls)
    if cls is None:
        findings.append(Finding(
            rule="rg.missing-action", path=path, line=1,
            message=f"declared component class {component.cls} not "
                    f"found — the rg spec in repro.verif.rgspec rotted"))
        return
    parents = _annotate_parents(cls)
    methods = {node.name: node for node in cls.body
               if isinstance(node, ast.FunctionDef)}

    for action in component.actions:
        if action.name not in methods:
            findings.append(Finding(
                rule="rg.missing-action", path=path, line=cls.lineno,
                message=f"declared action {component.cls}.{action.name} "
                        f"has no matching method"))

    for name, method in methods.items():
        if name in component.init_methods:
            continue
        fp = _extract_footprint(method, shared, readonly)
        action = component.action_by_name(name)
        stats["accesses"] += len(fp.accesses)
        seen: set[tuple] = set()
        for attr, kind, node in fp.accesses:
            key = (attr, kind, node.lineno)
            if key in seen:
                continue
            seen.add(key)
            if action is None:
                if kind == "write":
                    findings.append(Finding(
                        rule="rg.unspecified-action", path=path,
                        line=node.lineno,
                        message=f"{component.cls}.{name} mutates shared "
                                f"'{attr}' but is not a declared atomic "
                                f"action of component "
                                f"'{component.name}'"))
                continue
            guard = component.guard_by_name(action.guard)
            if guard.kind == LOCK and \
                    not _inside_lock(node, guard.attr, parents):
                findings.append(Finding(
                    rule=f"rg.unguarded-{kind}", path=path,
                    line=node.lineno,
                    message=f"{component.cls}.{name} {kind}s shared "
                            f"'{attr}' outside the 'with "
                            f"self.{guard.attr}:' bracket of guard "
                            f"'{guard.name}'"))
            if kind == "write" and attr not in action.writes:
                findings.append(Finding(
                    rule="rg.undeclared-write", path=path,
                    line=node.lineno,
                    message=f"action {component.cls}.{name} writes "
                            f"'{attr}' outside its declared guarantee "
                            f"{action.writes}"))
            elif kind == "read" and attr not in action.reads \
                    and attr not in action.writes:
                findings.append(Finding(
                    rule="rg.undeclared-read", path=path,
                    line=node.lineno,
                    message=f"action {component.cls}.{name} reads "
                            f"'{attr}' outside its declared footprint"))
        for node in fp.replica_reaches:
            base = _self_attr_base(node)
            guard = component.guard_by_name(shared_map[base.attr])
            if guard.kind == NR and \
                    name not in component.replica_access:
                findings.append(Finding(
                    rule="rg.nr-bypass", path=path, line=node.lineno,
                    message=f"{component.cls}.{name} reaches through "
                            f".replicas around the NR log (only "
                            f"{component.replica_access or '()'} may)"))
        stats["methods"] += 1


def check_interference(sources: dict[str, str],
                       components=COMPONENTS) -> tuple[list[Finding],
                                                       dict]:
    """Check every declared component against its source module."""
    findings: list[Finding] = []
    stats = {"components": 0, "methods": 0, "accesses": 0, "actions": 0}
    trees: dict[str, ast.AST] = {}
    for component in components:
        path = component.module
        text = sources.get(path)
        if text is None:
            continue
        if path not in trees:
            try:
                trees[path] = ast.parse(text, filename=path)
            except SyntaxError as exc:
                findings.append(Finding(
                    rule="parse-error", path=path, line=exc.lineno or 1,
                    message=f"cannot parse: {exc.msg}"))
                continue
        stats["components"] += 1
        stats["actions"] += len(component.actions)
        _check_component(component, path, trees[path], findings, stats)
    return findings, stats
