"""Package."""
