"""Structured data behind Tables 1 and 2 of the paper.

Table 1 compares OS verification projects on five properties; Table 2 on
which OS components each verified.  The data is transcribed from the paper;
an extra column describes *this* reproduction so the tables can be printed
with the proposed system alongside, the way the paper's Section 1 list
frames the goal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

YES = "yes"
NO = "no"
PARTIAL = "partial"


@dataclass(frozen=True)
class Project:
    """One verified-OS project and what it achieved."""

    name: str
    properties: dict = field(default_factory=dict)
    components: dict = field(default_factory=dict)


# Rows of Table 1, in the paper's order.
TABLE1_ROWS = (
    "Kernel memory safety",
    "Specification refinement",
    "Security properties",
    "Multi-processor support",
    "Process-centric spec",
)

# Rows of Table 2, in the paper's order.
TABLE2_ROWS = (
    "Scheduler",
    "Memory management",
    "Filesystem",
    "Complex drivers",
    "Process management",
    "Threads and synchronization",
    "Network stack",
    "System libraries",
)


def _project(name, table1, table2) -> Project:
    return Project(
        name=name,
        properties=dict(zip(TABLE1_ROWS, table1)),
        components=dict(zip(TABLE2_ROWS, table2)),
    )


# Transcribed from the paper's Tables 1 and 2.
PROJECTS = (
    _project(
        "seL4",
        (YES, YES, YES, NO, NO),
        (YES, YES, NO, NO, YES, NO, NO, NO),
    ),
    _project(
        "Verve",
        (YES, YES, NO, NO, NO),
        (YES, YES, NO, YES, NO, YES, NO, NO),
    ),
    _project(
        "Hyperkernel",
        (YES, YES, YES, NO, NO),
        (YES, YES, PARTIAL, NO, YES, NO, NO, NO),
    ),
    _project(
        "CertiKOS",
        (YES, YES, PARTIAL, YES, NO),
        (YES, YES, NO, NO, YES, YES, NO, NO),
    ),
    _project(
        "SeKVM+VRM",
        (YES, YES, YES, YES, NO),
        (YES, YES, NO, YES, YES, NO, NO, NO),
    ),
)

# The column for this reproduction: which properties / components the
# repository actually demonstrates (dynamically checked rather than
# foundationally proven — see DESIGN.md).
THIS_WORK = _project(
    "this repro",
    (YES, YES, NO, YES, YES),
    (YES, YES, YES, YES, YES, YES, YES, YES),
)

# Proof-to-code ratios reported in Section 5.
REPORTED_RATIOS = {
    "seL4": 19.0,
    "CertiKOS": 20.0,
    "SeKVM (weak memory)": 10.0,
    "Verve": 3.0,
    "page table prototype (paper)": 10.0,
}

MARKS = {YES: "v", NO: "x", PARTIAL: "(v)"}
