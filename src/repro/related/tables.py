"""Renderers for Tables 1 and 2."""

from __future__ import annotations

from repro.related.projects import (
    MARKS,
    PROJECTS,
    TABLE1_ROWS,
    TABLE2_ROWS,
    THIS_WORK,
    Project,
)


def _render(rows, attribute: str, include_this_work: bool) -> list[str]:
    projects = list(PROJECTS) + ([THIS_WORK] if include_this_work else [])
    names = [p.name for p in projects]
    label_width = max(len(r) for r in rows) + 2
    col_widths = [max(len(n), 3) + 2 for n in names]
    header = " " * label_width + "".join(
        n.rjust(w) for n, w in zip(names, col_widths)
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = []
        for project, width in zip(projects, col_widths):
            value = getattr(project, attribute)[row]
            cells.append(MARKS[value].rjust(width))
        lines.append(row.ljust(label_width) + "".join(cells))
    return lines


def table1(include_this_work: bool = True) -> list[str]:
    """Table 1: comparison of OS verification projects."""
    return _render(TABLE1_ROWS, "properties", include_this_work)


def table2(include_this_work: bool = True) -> list[str]:
    """Table 2: verified OS components."""
    return _render(TABLE2_ROWS, "components", include_this_work)


def project_by_name(name: str) -> Project:
    for project in list(PROJECTS) + [THIS_WORK]:
        if project.name == name:
            return project
    raise KeyError(name)
