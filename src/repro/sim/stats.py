"""Latency statistics for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LatencyRecorder:
    """Collects per-operation latencies (ns) and summarises them."""

    samples: list[int] = field(default_factory=list)

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        self.samples.append(latency_ns)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean_ns(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1000.0

    def percentile_ns(self, p: float) -> int:
        """Nearest-rank percentile, p in [0, 100]."""
        if not self.samples:
            return 0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of range")
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, int(round(p / 100 * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def p50_us(self) -> float:
        return self.percentile_ns(50) / 1000.0

    @property
    def p99_us(self) -> float:
        return self.percentile_ns(99) / 1000.0

    @property
    def max_us(self) -> float:
        return max(self.samples, default=0) / 1000.0

    def merge(self, other: "LatencyRecorder") -> None:
        self.samples.extend(other.samples)
