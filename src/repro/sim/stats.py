"""Latency statistics for the benchmark harness.

:class:`LatencyRecorder` is a thin nanosecond-flavoured view over
:class:`repro.obs.instruments.Histogram` — the same type that backs the
Figure 1a verification-time CDF — so the per-operation populations of
Figures 1b/1c and the per-VC population of Figure 1a share one
implementation of the distribution math (percentiles, CDF, merge).
"""

from __future__ import annotations

from repro.obs.instruments import Histogram


class LatencyRecorder(Histogram):
    """Collects per-operation latencies (ns) and summarises them."""

    def __init__(self, samples: list[int] | None = None) -> None:
        super().__init__(name="latency_ns",
                         samples=samples if samples is not None else [])

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        super().record(latency_ns)

    @property
    def mean_ns(self) -> float:
        return self.mean

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1000.0

    def percentile_ns(self, p: float) -> int:
        """Nearest-rank percentile, p in [0, 100] (the shared
        :meth:`Histogram.percentile` implementation)."""
        return self.percentile(p)

    @property
    def p50_us(self) -> float:
        return self.percentile_ns(50) / 1000.0

    @property
    def p99_us(self) -> float:
        return self.percentile_ns(99) / 1000.0

    @property
    def max_us(self) -> float:
        return self.max / 1000.0
