"""Simulated shared resources: FIFO locks and coherence-tracked cache lines.

A :class:`SimLock` is the mutual-exclusion primitive simulated processes
acquire via ``yield Acquire(lock)``.  A :class:`CacheLine` is not a blocking
resource — it is a cost oracle: each access returns the latency implied by
MESI-style ownership movement, which the accessing process then pays with a
``Delay``.  Contended lines (the NR log tail, the combiner lock word) are
what make latency grow with core count in Figures 1b/1c.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.sim.kernel import SimulationError, Simulator, _Process
from repro.sim.topology import Topology


class SimLock:
    """FIFO mutual exclusion for simulated processes."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._holder: _Process | None = None
        self._waiters: deque[_Process] = deque()
        self.acquisitions = 0
        self.contended_acquisitions = 0

    @property
    def held(self) -> bool:
        return self._holder is not None

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def _acquire(self, sim: Simulator, process: _Process) -> None:
        if self._holder is None:
            self._holder = process
            self.acquisitions += 1
            sim._schedule(sim.now, process, True)
        else:
            self.contended_acquisitions += 1
            self._waiters.append(process)

    def _release(self, sim: Simulator, process: _Process) -> None:
        if self._holder is not process:
            raise SimulationError(
                f"process {process.name} released lock {self.name!r} it "
                f"does not hold"
            )
        if self._waiters:
            self._holder = self._waiters.popleft()
            self.acquisitions += 1
            sim._schedule(sim.now, self._holder, True)
        else:
            self._holder = None
        sim._schedule(sim.now, process, None)


@dataclass
class CacheLine:
    """One cache line with MESI-flavoured ownership tracking.

    `read(core)` / `write(core)` return the access cost in ns and update
    ownership: a write makes `core` the exclusive owner; a read adds `core`
    to the sharers (paying a transfer if it was not one already).
    """

    topology: Topology
    owner: int | None = None       # last writer (exclusive owner), if any
    sharers: set[int] = field(default_factory=set)
    transfers: int = 0

    def read(self, core: int) -> int:
        if core in self.sharers or core == self.owner:
            return self.topology.costs.l1_hit
        self.transfers += 1
        source = self.owner if self.owner is not None else core
        cost = (
            self.topology.transfer_cost(source, core)
            if source != core
            else self.topology.costs.local_dram
        )
        self.sharers.add(core)
        return cost

    def write(self, core: int) -> int:
        if self.owner == core and not (self.sharers - {core}):
            return self.topology.costs.l1_hit
        self.transfers += 1
        if self.owner is not None and self.owner != core:
            cost = self.topology.transfer_cost(self.owner, core)
        elif self.sharers - {core}:
            # invalidate the other sharers; pay the farthest one
            cost = max(
                self.topology.transfer_cost(s, core)
                for s in self.sharers
                if s != core
            )
        else:
            cost = self.topology.costs.local_dram
        self.owner = core
        self.sharers = {core}
        return cost

    def atomic_rmw(self, core: int) -> int:
        """A LOCK-prefixed read-modify-write: a write plus atomic overhead."""
        return self.write(core) + self.topology.costs.atomic_op
