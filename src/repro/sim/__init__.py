"""Discrete-event simulation of a NUMA multicore machine.

The paper's latency figures (1b/1c) come from a 28-core NUMA machine; this
package provides the simulated equivalent: an event loop
(:mod:`repro.sim.kernel`), simulated locks and cache lines with a coherence
cost model (:mod:`repro.sim.resources`), the NUMA topology and its transfer
costs (:mod:`repro.sim.topology`), and latency statistics
(:mod:`repro.sim.stats`).
"""

from repro.sim.kernel import Simulator, Delay, Acquire, Release, Wait, Fire, Event
from repro.sim.topology import Topology, CostModel
from repro.sim.resources import SimLock, CacheLine
from repro.sim.stats import LatencyRecorder

__all__ = [
    "Simulator",
    "Delay",
    "Acquire",
    "Release",
    "Wait",
    "Fire",
    "Event",
    "Topology",
    "CostModel",
    "SimLock",
    "CacheLine",
    "LatencyRecorder",
]
