"""The discrete-event simulation kernel.

Simulated processes are Python generators that yield *commands*:

* ``Delay(ns)`` — advance this process's local time,
* ``Acquire(lock)`` / ``Release(lock)`` — FIFO mutual exclusion,
* ``Wait(event)`` — block until the event fires,
* ``Fire(event, value)`` — wake all waiters, delivering `value`.

Time is in integer nanoseconds.  The kernel is deterministic: ties are
broken by spawn order, which keeps every benchmark reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Generator


@dataclass(frozen=True)
class Delay:
    ns: int


@dataclass(frozen=True)
class Acquire:
    lock: "object"


@dataclass(frozen=True)
class Release:
    lock: "object"


@dataclass(frozen=True)
class Wait:
    event: "Event"


@dataclass(frozen=True)
class Fire:
    event: "Event"
    value: object = None


@dataclass
class Event:
    """A broadcast event processes can wait on."""

    name: str = ""
    waiters: list = field(default_factory=list)


class _Process:
    __slots__ = ("gen", "pid", "name")

    def __init__(self, gen: Generator, pid: int, name: str) -> None:
        self.gen = gen
        self.pid = pid
        self.name = name


class SimulationError(Exception):
    """A process yielded an unknown command or misused a resource."""


class Simulator:
    """The event loop."""

    def __init__(self) -> None:
        self.now = 0
        self._queue: list[tuple[int, int, _Process, object]] = []
        self._seq = 0
        self._next_pid = 0
        self.completed = 0

    def spawn(self, gen: Generator, name: str = "", at: int | None = None):
        """Schedule a new process; returns its pid."""
        process = _Process(gen, self._next_pid, name or f"proc{self._next_pid}")
        self._next_pid += 1
        self._schedule(at if at is not None else self.now, process, None)
        return process.pid

    def _schedule(self, when: int, process: _Process, value) -> None:
        heapq.heappush(self._queue, (when, self._seq, process, value))
        self._seq += 1

    def run(self, until: int | None = None) -> None:
        """Run until the queue drains (or simulated time passes `until`)."""
        while self._queue:
            when, _, process, value = self._queue[0]
            if until is not None and when > until:
                return
            heapq.heappop(self._queue)
            self.now = when
            self._step(process, value)

    def _step(self, process: _Process, value) -> None:
        try:
            command = process.gen.send(value)
        except StopIteration:
            self.completed += 1
            return
        if isinstance(command, Delay):
            if command.ns < 0:
                raise SimulationError(f"negative delay {command.ns}")
            self._schedule(self.now + command.ns, process, None)
        elif isinstance(command, Acquire):
            command.lock._acquire(self, process)
        elif isinstance(command, Release):
            command.lock._release(self, process)
        elif isinstance(command, Wait):
            command.event.waiters.append(process)
        elif isinstance(command, Fire):
            waiters = command.event.waiters
            command.event.waiters = []
            for waiter in waiters:
                self._schedule(self.now, waiter, command.value)
            self._schedule(self.now, process, None)
        else:
            raise SimulationError(f"unknown command {command!r}")
