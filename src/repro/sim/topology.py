"""NUMA topology and the cache-coherence cost model.

Costs are in nanoseconds and calibrated to the usual orders of magnitude for
a two-socket x86 server (the class of machine NrOS was evaluated on): L1
hits a few ns, on-socket cache-line transfers tens of ns, cross-socket
transfers 100+ ns, DRAM ~100 ns local / ~150 ns remote.

The absolute values do not matter for reproducing the *shape* of Figures
1b/1c — what matters is that remote transfers cost several times local ones
and that contended lines bounce between writers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Latency constants (ns) used by the simulated machine."""

    l1_hit: int = 2
    local_transfer: int = 40      # cache line from a core on the same node
    remote_transfer: int = 130    # cache line from a core on another node
    local_dram: int = 90
    remote_dram: int = 150
    atomic_op: int = 20           # uncontended LOCK-prefixed RMW overhead
    syscall_entry: int = 500      # user->kernel crossing
    syscall_exit: int = 300
    ipi: int = 1200               # inter-processor interrupt round trip
    tlb_invlpg: int = 150


@dataclass(frozen=True)
class Topology:
    """A machine with `num_cores` cores spread over NUMA nodes."""

    num_cores: int
    cores_per_node: int = 14  # two 14-core sockets at 28 cores, like the paper
    costs: CostModel = CostModel()

    def __post_init__(self):
        if self.num_cores <= 0 or self.cores_per_node <= 0:
            raise ValueError("cores and cores_per_node must be positive")

    @property
    def num_nodes(self) -> int:
        return (self.num_cores + self.cores_per_node - 1) // self.cores_per_node

    def node_of(self, core: int) -> int:
        self._check_core(core)
        return core // self.cores_per_node

    def cores_on_node(self, node: int) -> list[int]:
        return [
            core
            for core in range(self.num_cores)
            if self.node_of(core) == node
        ]

    def transfer_cost(self, from_core: int, to_core: int) -> int:
        """Cost for `to_core` to obtain a cache line last owned by
        `from_core`."""
        self._check_core(to_core)
        if from_core == to_core:
            return self.costs.l1_hit
        if self.node_of(from_core) == self.node_of(to_core):
            return self.costs.local_transfer
        return self.costs.remote_transfer

    def dram_cost(self, core: int, home_node: int) -> int:
        if self.node_of(core) == home_node:
            return self.costs.local_dram
        return self.costs.remote_dram

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range")
