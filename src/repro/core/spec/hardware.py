"""The hardware specification (Figure 2, box 1), as a checkable interface.

The executable walker lives in :mod:`repro.hw.mmu`; this module states what
the *combination* of page-table bits and walker must guarantee to the
high-level spec, as predicates the refinement VCs quantify over:

* `walk_agrees_with_abstract` — for every probe address, the MMU's walk of
  the bits in memory returns exactly what the abstract map says (same
  physical address, same permission bits), and faults exactly on unmapped
  addresses.
* `tlb_consistent` — a TLB that is invalidated according to the kernel's
  shootdown protocol never returns a translation that disagrees with a
  fresh walk.
"""

from __future__ import annotations

from repro.core.pt import defs
from repro.core.spec.highlevel import AbstractState
from repro.hw.mem import PhysicalMemory
from repro.hw.mmu import Mmu, TranslationFault
from repro.hw.tlb import Tlb


def walk_agrees_with_abstract(
    memory: PhysicalMemory,
    root_paddr: int,
    abstract: AbstractState,
    probe_vaddrs,
) -> tuple | None:
    """Check MMU-walk / abstract-map agreement on every probe address.

    Returns None on agreement or a counterexample tuple."""
    mmu = Mmu(memory)
    for vaddr in probe_vaddrs:
        expected = abstract.translate(vaddr)
        hit = abstract.lookup(vaddr)
        try:
            translation = mmu.walk(root_paddr, vaddr)
        except TranslationFault:
            if expected is not None:
                return ("walk faulted on mapped address", vaddr, expected)
            continue
        if expected is None:
            return ("walk succeeded on unmapped address", vaddr,
                    translation.paddr)
        if translation.paddr != expected:
            return ("walk paddr mismatch", vaddr, translation.paddr, expected)
        _, pte = hit
        if translation.flags != pte.flags:
            return ("walk flags mismatch", vaddr, translation.flags, pte.flags)
        if translation.page_size != pte.size:
            return ("walk size mismatch", vaddr, translation.page_size, pte.size)
    return None


def tlb_consistent(
    memory: PhysicalMemory,
    root_paddr: int,
    tlb: Tlb,
    probe_vaddrs,
) -> tuple | None:
    """Check that every TLB hit agrees with a fresh walk of the current
    bits.  Holds only when the invalidation protocol has been followed —
    which is exactly what the kernel's shootdown path must ensure."""
    mmu = Mmu(memory)
    for vaddr in probe_vaddrs:
        cached = tlb.lookup(vaddr)
        if cached is None:
            continue
        try:
            fresh = mmu.walk(root_paddr, vaddr)
        except TranslationFault:
            return ("stale TLB entry for unmapped address", vaddr,
                    cached.paddr)
        # A cached translation carries the paddr of the address that filled
        # it; consistency is at page granularity, so compare frames.
        if (fresh.frame_paddr, fresh.flags, fresh.page_size) != (
            cached.frame_paddr, cached.flags, cached.page_size,
        ):
            return ("TLB entry disagrees with walk", vaddr, cached, fresh)
    return None


def probe_addresses_for(abstract: AbstractState, extra=()) -> list[int]:
    """Interesting probe addresses: page bases, interior points, last valid
    word, boundary neighbours, plus caller-provided extras."""
    probes: set[int] = set(extra)
    for base, pte in abstract.mappings.items():
        size = int(pte.size)
        probes.update((base, base + 8, base + size // 2, base + size - 8))
        if base >= defs.PAGE_SIZE:
            probes.add(base - 8)
        if base + size < defs.MAX_VADDR:
            probes.add(base + size)
    probes.add(0)
    probes.add(defs.MAX_VADDR - 8)
    return sorted(probes)
