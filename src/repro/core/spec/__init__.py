"""Package."""
