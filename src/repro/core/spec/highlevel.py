"""The high-level specification (Figure 2, box 2).

"The spec describes the page table as a mathematical map from virtual
addresses to page table entries storing the physical address and permission
bits" — and has transitions for map, unmap, resolve, and memory reads and
writes.  This is the spec a *client application* programs against: no trees,
no bits, no TLBs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pt.defs import Flags, PageSize, is_canonical, vaddr_base, vaddr_offset
from repro.immutable import EMPTY_MAP, FrozenMap
from repro.verif.statemachine import SpecStateMachine, Transition


@dataclass(frozen=True)
class AbstractPte:
    """An entry of the abstract map: frame base, page size, permissions."""

    frame: int
    size: PageSize
    flags: Flags


@dataclass(frozen=True)
class AbstractState:
    """The client-visible machine state.

    `mappings` is the mathematical map (page base vaddr -> AbstractPte);
    `mem` is the abstract word store keyed by physical word address — two
    virtual pages mapping the same frame alias, exactly as on hardware.
    """

    mappings: FrozenMap = EMPTY_MAP
    mem: FrozenMap = EMPTY_MAP

    # -- queries ----------------------------------------------------------------

    def lookup(self, vaddr: int) -> tuple[int, AbstractPte] | None:
        """The (page base, pte) covering `vaddr`, or None."""
        for size in PageSize:
            base = vaddr_base(vaddr, size)
            pte = self.mappings.get(base)
            if pte is not None and pte.size == size:
                return base, pte
        return None

    def translate(self, vaddr: int) -> int | None:
        """The physical address `vaddr` maps to, or None."""
        hit = self.lookup(vaddr)
        if hit is None:
            return None
        _, pte = hit
        return pte.frame + vaddr_offset(vaddr, pte.size)

    def overlaps(self, vaddr: int, size: PageSize) -> bool:
        """Would a new page of `size` at `vaddr` overlap existing mappings?"""
        start, end = vaddr, vaddr + int(size)
        for base, pte in self.mappings.items():
            if base < end and start < base + int(pte.size):
                return True
        return False

    # -- spec operations (pure) ----------------------------------------------------

    def map_page(
        self, vaddr: int, frame: int, size: PageSize, flags: Flags
    ) -> "AbstractState":
        return AbstractState(
            mappings=self.mappings.set(vaddr, AbstractPte(frame, size, flags)),
            mem=self.mem,
        )

    def unmap_page(self, vaddr: int) -> "AbstractState":
        base, _ = self.lookup(vaddr)
        return AbstractState(mappings=self.mappings.remove(base), mem=self.mem)

    def write_word(self, vaddr: int, value: int) -> "AbstractState":
        paddr = self.translate(vaddr)
        if paddr is None:
            raise ValueError(f"write to unmapped address {vaddr:#x}")
        return AbstractState(
            mappings=self.mappings, mem=self.mem.set(paddr, value)
        )

    def read_word(self, vaddr: int) -> int:
        paddr = self.translate(vaddr)
        if paddr is None:
            raise ValueError(f"read of unmapped address {vaddr:#x}")
        return self.mem.get(paddr, 0)


def map_enabled(state: AbstractState, args) -> bool:
    """Enabling condition of the abstract `map` transition."""
    vaddr, frame, size, flags = args
    del flags
    return (
        is_canonical(vaddr)
        and vaddr % int(size) == 0
        and frame % int(size) == 0
        and not state.overlaps(vaddr, size)
    )


def unmap_enabled(state: AbstractState, args) -> bool:
    (vaddr,) = args
    return is_canonical(vaddr) and state.lookup(vaddr) is not None


def write_enabled(state: AbstractState, args) -> bool:
    vaddr, value = args
    del value
    hit = state.lookup(vaddr)
    return hit is not None and hit[1].flags.writable


def highlevel_machine(
    vaddrs=(),
    frames=(),
    sizes=(PageSize.SIZE_4K,),
    flag_choices=(Flags.user_rw(),),
    values=(0, 1),
) -> SpecStateMachine:
    """Build the high-level spec machine over a bounded vocabulary.

    The vocabularies keep bounded exploration tractable while covering the
    interesting interleavings (overlap, remap, aliasing).
    """

    def map_args(state):
        del state
        for vaddr in vaddrs:
            for frame in frames:
                for size in sizes:
                    for flags in flag_choices:
                        yield (vaddr, frame, size, flags)

    def unmap_args(state):
        del state
        for vaddr in vaddrs:
            yield (vaddr,)

    def write_args(state):
        del state
        for vaddr in vaddrs:
            for value in values:
                yield (vaddr, value)

    return SpecStateMachine(
        name="highlevel",
        init_states=[AbstractState()],
        transitions=[
            Transition(
                name="map",
                enabled=map_enabled,
                apply=lambda s, a: s.map_page(*a),
                args=map_args,
            ),
            Transition(
                name="unmap",
                enabled=unmap_enabled,
                apply=lambda s, a: s.unmap_page(a[0]),
                args=unmap_args,
            ),
            Transition(
                name="write",
                enabled=write_enabled,
                apply=lambda s, a: s.write_word(*a),
                args=write_args,
            ),
        ],
        invariants={
            "no_overlap": _no_overlap_invariant,
            "aligned": _aligned_invariant,
            "canonical": _canonical_invariant,
        },
    )


def _no_overlap_invariant(state: AbstractState) -> bool:
    spans = sorted(
        (base, base + int(pte.size)) for base, pte in state.mappings.items()
    )
    for (_, end), (start, _) in zip(spans, spans[1:]):
        if start < end:
            return False
    return True


def _aligned_invariant(state: AbstractState) -> bool:
    return all(
        base % int(pte.size) == 0 and pte.frame % int(pte.size) == 0
        for base, pte in state.mappings.items()
    )


def _canonical_invariant(state: AbstractState) -> bool:
    return all(is_canonical(base) for base in state.mappings.keys())
