"""Package."""
