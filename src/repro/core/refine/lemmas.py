"""Bit-level lemmas of the page-table proof, discharged by the SMT solver.

These correspond to the part of the paper's proof that "map[s] from a
multi-level tree structure encoded as bits to a flat abstract data type":
every fact about entry encodings and address arithmetic that the simulation
argument relies on is stated here as a 64-bit QF_BV goal and proved by
:func:`repro.smt.solver.prove`.

Each lemma is one verification condition; together with the exhaustive
obligations in :mod:`repro.core.refine.proof` they form the ~220-VC
population whose timing distribution reproduces Figure 1a.
"""

from __future__ import annotations

from repro import wordlib
from repro.core.pt import defs
from repro.smt import ast
from repro.verif.vc import VC, smt_vc

U64 = 64


def c64(value: int) -> ast.Term:
    return ast.bv_const(value, U64)


def _bit_term(raw: ast.Term, bit: int) -> ast.Term:
    """The 1-bit extraction of `raw` at `bit`."""
    return ast.extract(raw, bit, bit)


def _flag_bit(flag: ast.Term, bit: int) -> ast.Term:
    """A 64-bit value with `bit` set iff the Bool `flag` holds."""
    return ast.ite(flag, c64(1 << bit), c64(0))


FLAG_BITS = {
    "writable": defs.BIT_WRITABLE,
    "user": defs.BIT_USER,
    "write_through": defs.BIT_WRITE_THROUGH,
    "cache_disable": defs.BIT_CACHE_DISABLE,
    "global_": defs.BIT_GLOBAL,
}


def sym_flags() -> dict[str, ast.Term]:
    """Symbolic Bool variables for every flag (executable as NX)."""
    flags = {name: ast.bool_var(f"flag_{name}") for name in FLAG_BITS}
    flags["nx"] = ast.bool_var("flag_nx")
    return flags


def sym_encode_page(frame: ast.Term, flags: dict[str, ast.Term], level: int) -> ast.Term:
    """Symbolic mirror of :func:`repro.core.pt.entry.encode_page`."""
    raw = ast.bvand(frame, c64(defs.ADDR_MASK))
    raw = ast.bvor(raw, c64(1 << defs.BIT_PRESENT))
    for name, bit in FLAG_BITS.items():
        raw = ast.bvor(raw, _flag_bit(flags[name], bit))
    raw = ast.bvor(raw, _flag_bit(flags["nx"], defs.BIT_NX))
    if level in (1, 2):
        raw = ast.bvor(raw, c64(1 << defs.BIT_HUGE))
    return raw


def sym_encode_table(next_paddr: ast.Term) -> ast.Term:
    """Symbolic mirror of :func:`repro.core.pt.entry.encode_table`."""
    raw = ast.bvand(next_paddr, c64(defs.ADDR_MASK))
    raw = ast.bvor(raw, c64(1 << defs.BIT_PRESENT))
    raw = ast.bvor(raw, c64(1 << defs.BIT_WRITABLE))
    raw = ast.bvor(raw, c64(1 << defs.BIT_USER))
    return raw


def _frame_guards(frame: ast.Term, size: defs.PageSize) -> ast.Term:
    """frame is size-aligned and inside the 52-bit physical range."""
    aligned = ast.eq(ast.bvand(frame, c64(int(size) - 1)), c64(0))
    in_range = ast.eq(ast.bvand(frame, c64(~defs.ADDR_MASK)), c64(0))
    return ast.and_(aligned, in_range)


def entry_lemmas() -> list[VC]:
    """Encode/decode roundtrips, per level and field."""
    vcs: list[VC] = []
    for level in (1, 2, 3):
        size = defs.PageSize.for_level(level)
        level_name = defs.LEVEL_NAMES[level]

        def make(goal_fn, label, level=level, size=size):
            vcs.append(
                smt_vc(
                    name=f"entry_{defs.LEVEL_NAMES[level].lower()}_{label}",
                    category="entry-lemmas",
                    goal_builder=lambda goal_fn=goal_fn, level=level, size=size: goal_fn(level, size),
                )
            )

        def paddr_roundtrip(level, size):
            frame = ast.bv_var("frame", U64)
            flags = sym_flags()
            raw = sym_encode_page(frame, flags, level)
            decoded = ast.bvand(
                ast.bvand(raw, c64(defs.ADDR_MASK)), c64(~(int(size) - 1))
            )
            return ast.implies(_frame_guards(frame, size), ast.eq(decoded, frame))

        make(paddr_roundtrip, "paddr_roundtrip")

        def present_set(level, size):
            frame = ast.bv_var("frame", U64)
            raw = sym_encode_page(frame, sym_flags(), level)
            return ast.eq(_bit_term(raw, defs.BIT_PRESENT), ast.bv_const(1, 1))

        make(present_set, "present_set")

        def huge_bit(level, size):
            frame = ast.bv_var("frame", U64)
            raw = sym_encode_page(frame, sym_flags(), level)
            expected = ast.bv_const(1 if level in (1, 2) else 0, 1)
            return ast.implies(
                _frame_guards(frame, size),
                ast.eq(_bit_term(raw, defs.BIT_HUGE), expected),
            )

        make(huge_bit, "huge_bit")

        for flag_name, bit in FLAG_BITS.items():
            def flag_roundtrip(level, size, flag_name=flag_name, bit=bit):
                frame = ast.bv_var("frame", U64)
                flags = sym_flags()
                raw = sym_encode_page(frame, flags, level)
                got = ast.eq(_bit_term(raw, bit), ast.bv_const(1, 1))
                return ast.implies(
                    _frame_guards(frame, size),
                    ast.eq(got, flags[flag_name]),
                )

            make(flag_roundtrip, f"{flag_name.rstrip('_')}_roundtrip")

        def nx_roundtrip(level, size):
            frame = ast.bv_var("frame", U64)
            flags = sym_flags()
            raw = sym_encode_page(frame, flags, level)
            got = ast.eq(_bit_term(raw, defs.BIT_NX), ast.bv_const(1, 1))
            return ast.implies(_frame_guards(frame, size), ast.eq(got, flags["nx"]))

        make(nx_roundtrip, "nx_roundtrip")

        def reserved_zero(level, size):
            frame = ast.bv_var("frame", U64)
            raw = sym_encode_page(frame, sym_flags(), level)
            low_reserved = ast.eq(
                ast.extract(raw, 11, 9), ast.bv_const(0, 3)
            )
            high_reserved = ast.eq(
                ast.extract(raw, 62, 52), ast.bv_const(0, 11)
            )
            return ast.implies(
                _frame_guards(frame, size), ast.and_(low_reserved, high_reserved)
            )

        make(reserved_zero, "reserved_bits_zero")

    # Table-entry lemmas (levels 0-2 share one encoding).
    def table_paddr_roundtrip():
        next_paddr = ast.bv_var("next", U64)
        raw = sym_encode_table(next_paddr)
        decoded = ast.bvand(raw, c64(defs.ADDR_MASK))
        return ast.implies(
            _frame_guards(next_paddr, defs.PageSize.SIZE_4K),
            ast.eq(decoded, next_paddr),
        )

    vcs.append(smt_vc("entry_table_paddr_roundtrip", "entry-lemmas",
                      table_paddr_roundtrip))

    def table_present_rw_user():
        next_paddr = ast.bv_var("next", U64)
        raw = sym_encode_table(next_paddr)
        return ast.and_(
            ast.eq(_bit_term(raw, defs.BIT_PRESENT), ast.bv_const(1, 1)),
            ast.eq(_bit_term(raw, defs.BIT_WRITABLE), ast.bv_const(1, 1)),
            ast.eq(_bit_term(raw, defs.BIT_USER), ast.bv_const(1, 1)),
        )

    vcs.append(smt_vc("entry_table_permissive", "entry-lemmas",
                      table_present_rw_user))

    def table_not_huge():
        next_paddr = ast.bv_var("next", U64)
        raw = sym_encode_table(next_paddr)
        return ast.eq(_bit_term(raw, defs.BIT_HUGE), ast.bv_const(0, 1))

    vcs.append(smt_vc("entry_table_not_huge", "entry-lemmas", table_not_huge))

    def table_nx_clear():
        next_paddr = ast.bv_var("next", U64)
        raw = sym_encode_table(next_paddr)
        return ast.eq(_bit_term(raw, defs.BIT_NX), ast.bv_const(0, 1))

    vcs.append(smt_vc("entry_table_nx_clear", "entry-lemmas", table_nx_clear))
    return vcs


def address_lemmas() -> list[VC]:
    """Address-arithmetic lemmas over 64-bit virtual addresses."""
    vcs: list[VC] = []
    canonical = lambda va: ast.ult(va, c64(defs.MAX_VADDR))

    # Index extraction: shift+mask equals the bit-field extraction.
    for level, shift in enumerate(defs.LEVEL_SHIFTS):
        def index_is_extract(shift=shift):
            va = ast.bv_var("va", U64)
            lhs = ast.bvand(
                ast.bvlshr(va, c64(shift)), c64(wordlib.mask(defs.INDEX_BITS))
            )
            rhs = ast.zext(ast.extract(va, shift + defs.INDEX_BITS - 1, shift), U64)
            return ast.eq(lhs, rhs)

        vcs.append(smt_vc(
            f"addr_index_extract_{defs.LEVEL_NAMES[level].lower()}",
            "address-lemmas", index_is_extract,
        ))

        def index_bounded(shift=shift):
            va = ast.bv_var("va", U64)
            index = ast.bvand(
                ast.bvlshr(va, c64(shift)), c64(wordlib.mask(defs.INDEX_BITS))
            )
            return ast.ult(index, c64(defs.ENTRIES_PER_TABLE))

        vcs.append(smt_vc(
            f"addr_index_bounded_{defs.LEVEL_NAMES[level].lower()}",
            "address-lemmas", index_bounded,
        ))

    # Base/offset decomposition per page size.
    for size in defs.PageSize:
        mask_val = int(size) - 1

        def base_plus_offset(mask_val=mask_val):
            va = ast.bv_var("va", U64)
            base = ast.bvand(va, c64(~mask_val))
            off = ast.bvand(va, c64(mask_val))
            return ast.eq(ast.bvor(base, off), va)

        vcs.append(smt_vc(f"addr_base_or_offset_{size.name}",
                          "address-lemmas", base_plus_offset))

        def base_aligned(mask_val=mask_val):
            va = ast.bv_var("va", U64)
            base = ast.bvand(va, c64(~mask_val))
            return ast.eq(ast.bvand(base, c64(mask_val)), c64(0))

        vcs.append(smt_vc(f"addr_base_aligned_{size.name}",
                          "address-lemmas", base_aligned))

        def offset_bounded(mask_val=mask_val, size=size):
            va = ast.bv_var("va", U64)
            off = ast.bvand(va, c64(mask_val))
            return ast.ult(off, c64(int(size)))

        vcs.append(smt_vc(f"addr_offset_bounded_{size.name}",
                          "address-lemmas", offset_bounded))

        # frame + offset stays inside the frame (the mapping obligation's
        # arithmetic core): needs a real adder, so exercises the SAT tail.
        def no_carry_into_frame(mask_val=mask_val, size=size):
            frame = ast.bv_var("frame", U64)
            off = ast.bv_var("off", U64)
            guards = ast.and_(
                ast.eq(ast.bvand(frame, c64(mask_val)), c64(0)),
                ast.ult(off, c64(int(size))),
            )
            total = ast.bvadd(frame, off)
            return ast.implies(
                guards, ast.eq(ast.bvand(total, c64(~mask_val)), frame)
            )

        vcs.append(smt_vc(f"addr_no_carry_into_frame_{size.name}",
                          "address-lemmas", no_carry_into_frame))

        def offset_recovered(mask_val=mask_val, size=size):
            frame = ast.bv_var("frame", U64)
            off = ast.bv_var("off", U64)
            guards = ast.and_(
                ast.eq(ast.bvand(frame, c64(mask_val)), c64(0)),
                ast.ult(off, c64(int(size))),
            )
            total = ast.bvadd(frame, off)
            return ast.implies(
                guards, ast.eq(ast.bvand(total, c64(mask_val)), off)
            )

        vcs.append(smt_vc(f"addr_offset_recovered_{size.name}",
                          "address-lemmas", offset_recovered))

    # Alignment is downward-closed across sizes.
    def align_1g_implies_2m():
        va = ast.bv_var("va", U64)
        a1g = ast.eq(ast.bvand(va, c64((1 << 30) - 1)), c64(0))
        a2m = ast.eq(ast.bvand(va, c64((1 << 21) - 1)), c64(0))
        return ast.implies(a1g, a2m)

    vcs.append(smt_vc("addr_align_1g_implies_2m", "address-lemmas",
                      align_1g_implies_2m))

    def align_2m_implies_4k():
        va = ast.bv_var("va", U64)
        a2m = ast.eq(ast.bvand(va, c64((1 << 21) - 1)), c64(0))
        a4k = ast.eq(ast.bvand(va, c64((1 << 12) - 1)), c64(0))
        return ast.implies(a2m, a4k)

    vcs.append(smt_vc("addr_align_2m_implies_4k", "address-lemmas",
                      align_2m_implies_4k))

    # The four indices plus page offset reconstruct a canonical address.
    def indices_reconstruct():
        va = ast.bv_var("va", U64)
        parts = c64(0)
        for shift in defs.LEVEL_SHIFTS:
            index = ast.zext(
                ast.extract(va, shift + defs.INDEX_BITS - 1, shift), U64
            )
            parts = ast.bvor(parts, ast.bvshl(index, c64(shift)))
        offset = ast.bvand(va, c64(defs.PAGE_SIZE - 1))
        parts = ast.bvor(parts, offset)
        return ast.implies(canonical(va), ast.eq(parts, va))

    vcs.append(smt_vc("addr_indices_reconstruct", "address-lemmas",
                      indices_reconstruct))

    # Equal page base <=> equal index prefix (one per size).
    size_index_levels = {
        defs.PageSize.SIZE_1G: 2,
        defs.PageSize.SIZE_2M: 3,
        defs.PageSize.SIZE_4K: 4,
    }
    for size, prefix_levels in size_index_levels.items():
        def base_eq_iff_indices(size=size, prefix_levels=prefix_levels):
            va1 = ast.bv_var("va1", U64)
            va2 = ast.bv_var("va2", U64)
            mask_val = int(size) - 1
            bases_eq = ast.eq(
                ast.bvand(va1, c64(~mask_val)), ast.bvand(va2, c64(~mask_val))
            )
            idx_eq = ast.true()
            for level in range(prefix_levels):
                shift = defs.LEVEL_SHIFTS[level]
                hi = shift + defs.INDEX_BITS - 1
                idx_eq = ast.and_(
                    idx_eq,
                    ast.eq(ast.extract(va1, hi, shift),
                           ast.extract(va2, hi, shift)),
                )
            both_canonical = ast.and_(canonical(va1), canonical(va2))
            return ast.implies(both_canonical, ast.eq(bases_eq, idx_eq))

        vcs.append(smt_vc(f"addr_base_eq_iff_indices_{size.name}",
                          "address-lemmas", base_eq_iff_indices))

    # Stepping to the next page advances the index field by one.
    for size in (defs.PageSize.SIZE_4K, defs.PageSize.SIZE_2M,
                 defs.PageSize.SIZE_1G):
        shift = defs.LEVEL_SHIFTS[size.level]

        def next_page_steps_index(size=size, shift=shift):
            va = ast.bv_var("va", U64)
            guards = ast.and_(
                ast.eq(ast.bvand(va, c64(int(size) - 1)), c64(0)),
                ast.ult(va, c64(defs.MAX_VADDR - int(size))),
            )
            stepped = ast.bvadd(va, c64(int(size)))
            lhs = ast.bvlshr(stepped, c64(shift))
            rhs = ast.bvadd(ast.bvlshr(va, c64(shift)), c64(1))
            return ast.implies(guards, ast.eq(lhs, rhs))

        vcs.append(smt_vc(f"addr_next_page_steps_index_{size.name}",
                          "address-lemmas", next_page_steps_index))

    # ADDR_MASK extraction is the 52..12 bit field shifted into place.
    def addr_mask_is_field():
        raw = ast.bv_var("raw", U64)
        lhs = ast.bvand(raw, c64(defs.ADDR_MASK))
        field = ast.zext(ast.extract(raw, defs.PADDR_BITS - 1, defs.PAGE_SHIFT), U64)
        rhs = ast.bvshl(field, c64(defs.PAGE_SHIFT))
        return ast.eq(lhs, rhs)

    vcs.append(smt_vc("addr_mask_is_field", "address-lemmas",
                      addr_mask_is_field))
    return vcs


def marshalling_lemmas() -> list[VC]:
    """Serialization lemmas for the syscall ABI (Section 3's marshalling
    obligation): little-endian byte splits recompose to the original word."""
    vcs: list[VC] = []

    for width in (16, 32, 64):
        def le_roundtrip(width=width):
            word = ast.bv_var("w", width)
            reassembled = None
            for byte_index in range(width // 8):
                byte = ast.extract(word, byte_index * 8 + 7, byte_index * 8)
                reassembled = byte if reassembled is None else ast.concat(
                    byte, reassembled
                )
            return ast.eq(reassembled, word)

        vcs.append(smt_vc(f"marshal_le_roundtrip_u{width}",
                          "marshal-lemmas", le_roundtrip))

    # Each byte lane of a u64 is recoverable by shift+mask.
    for lane in range(8):
        def lane_recover(lane=lane):
            word = ast.bv_var("w", U64)
            shifted = ast.bvand(
                ast.bvlshr(word, c64(lane * 8)), c64(0xFF)
            )
            field = ast.zext(ast.extract(word, lane * 8 + 7, lane * 8), U64)
            return ast.eq(shifted, field)

        vcs.append(smt_vc(f"marshal_u64_lane_{lane}", "marshal-lemmas",
                          lane_recover))

    # Length-prefixed payload arithmetic: header + body offsets do not wrap
    # for bounded lengths.
    def length_prefix_no_wrap():
        length = ast.bv_var("len", U64)
        bound = ast.ult(length, c64(1 << 32))
        total = ast.bvadd(length, c64(8))
        return ast.implies(bound, ast.ult(length, total))

    vcs.append(smt_vc("marshal_length_prefix_no_wrap", "marshal-lemmas",
                      length_prefix_no_wrap))

    # Packing two u32s into a u64 is invertible.
    def pack_pair_roundtrip():
        hi = ast.bv_var("hi", 32)
        lo = ast.bv_var("lo", 32)
        packed = ast.concat(hi, lo)
        return ast.and_(
            ast.eq(ast.extract(packed, 63, 32), hi),
            ast.eq(ast.extract(packed, 31, 0), lo),
        )

    vcs.append(smt_vc("marshal_pack_pair_roundtrip", "marshal-lemmas",
                      pack_pair_roundtrip))
    return vcs


def all_lemma_vcs() -> list[VC]:
    return entry_lemmas() + address_lemmas() + marshalling_lemmas()
