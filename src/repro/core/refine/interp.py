"""The interpretation (abstraction) function of the refinement proof.

"Given the MMU's interpretation function of the page table in memory, the
implemented map, unmap and resolve functions have the same behavior as their
counterparts in the abstract high-level spec."  This module is that
interpretation function: it reads the raw page-table bits from physical
memory and produces the abstract mathematical map.

It is a *third* reading of the tree, independent of both the implementation
(`PageTable._walk_tables`) and the hardware walker (`Mmu.walk`): it recurses
structurally over tables rather than translating single addresses, so bugs
in either other reading cannot hide.
"""

from __future__ import annotations

from repro import wordlib
from repro.core.pt import defs, entry
from repro.core.pt.entry import EntryKind
from repro.core.spec.highlevel import AbstractPte, AbstractState
from repro.hw.mem import PhysicalMemory
from repro.immutable import FrozenMap


class IllFormedTree(Exception):
    """The bits in memory do not encode a well-formed page-table tree."""


def interpret(
    memory: PhysicalMemory, root_paddr: int, strict: bool = True
) -> AbstractState:
    """Interpret the tree rooted at `root_paddr` as an abstract state.

    With `strict=True`, structural violations (an entry mapping a page at
    PML4 level, misaligned frames, shared table frames / cycles) raise
    :class:`IllFormedTree` — the tree invariants demand our implementation
    never produce such bits."""
    mappings: dict[int, AbstractPte] = {}
    visited: set[int] = set()
    _interpret_table(memory, root_paddr, 0, 0, mappings, visited, strict)
    return AbstractState(mappings=FrozenMap(mappings))


def _interpret_table(
    memory: PhysicalMemory,
    table_paddr: int,
    level: int,
    vbase: int,
    mappings: dict[int, AbstractPte],
    visited: set[int],
    strict: bool,
) -> None:
    if table_paddr in visited:
        raise IllFormedTree(
            f"table frame {table_paddr:#x} reachable twice (cycle or sharing)"
        )
    visited.add(table_paddr)
    if not wordlib.is_aligned(table_paddr, defs.PAGE_SIZE):
        raise IllFormedTree(f"table frame {table_paddr:#x} misaligned")

    shift = defs.LEVEL_SHIFTS[level]
    for index in range(defs.ENTRIES_PER_TABLE):
        raw = memory.load_u64(table_paddr + index * defs.ENTRY_SIZE)
        view = entry.decode(raw, level)
        if view.kind is EntryKind.EMPTY:
            if strict and raw != 0:
                raise IllFormedTree(
                    f"non-present entry with stray bits at level {level} "
                    f"index {index}: {raw:#x}"
                )
            continue
        entry_vbase = vbase | (index << shift)
        if view.kind is EntryKind.PAGE:
            if strict and level == 0:
                raise IllFormedTree("PML4 entry maps a page")
            size = defs.PageSize.for_level(level)
            if strict and not wordlib.is_aligned(view.paddr, int(size)):
                raise IllFormedTree(
                    f"page frame {view.paddr:#x} misaligned for {size.name}"
                )
            mappings[entry_vbase] = AbstractPte(view.paddr, size, view.flags)
        else:
            if strict and level == defs.NUM_LEVELS - 1:
                raise IllFormedTree("PT entry marked as a table")
            _interpret_table(
                memory, view.paddr, level + 1, entry_vbase, mappings,
                visited, strict,
            )


def tree_invariants(memory: PhysicalMemory, root_paddr: int) -> str | None:
    """Check the structural invariants of the tree; returns the name of the
    first violated invariant or None.  These are the `invariant` VCs."""
    try:
        interpret(memory, root_paddr, strict=True)
    except IllFormedTree as exc:
        return str(exc)
    # No empty intermediate tables: every reachable table at level > 0
    # contains at least one present entry (the unmap path GCs them).
    stack = [(root_paddr, 0)]
    while stack:
        table, level = stack.pop()
        present = 0
        for index in range(defs.ENTRIES_PER_TABLE):
            raw = memory.load_u64(table + index * defs.ENTRY_SIZE)
            view = entry.decode(raw, level)
            if view.kind is not EntryKind.EMPTY:
                present += 1
            if view.kind is EntryKind.TABLE:
                stack.append((view.paddr, level + 1))
        if level > 0 and present == 0:
            return f"empty intermediate table at {table:#x} (level {level})"
    return None
