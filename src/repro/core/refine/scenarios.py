"""Scenario generation for the bounded refinement proof.

The simulation and invariant VCs quantify over "all reachable low-level
states" — here, all page-table trees produced by executing bounded sequences
of operations over a small but adversarial vocabulary of addresses (aliasing
slots, all three page sizes, shared and private intermediate tables).

States are replayable: a scenario stores the op sequence, and `build()`
reconstructs the concrete memory/page-table pair from scratch, which is what
lets each VC mutate its own private copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pt.defs import Flags, PageSize
from repro.core.pt.impl import PageTable, PtError, SimpleFrameAllocator
from repro.core.refine.interp import interpret
from repro.core.spec.highlevel import AbstractState
from repro.hw.mem import PhysicalMemory

MB = 1024 * 1024
MEMORY_SIZE = 16 * MB

# The vocabulary: two 4K slots sharing a PT, one 4K slot in a different
# PML4 subtree, a 2M slot, a 2M slot overlapping the 4K pair's PD, and a
# 1G slot.  Frames include an aliased frame used by two mappings.
GB = 1 << 30


@dataclass(frozen=True)
class MapOp:
    vaddr: int
    frame: int
    size: PageSize
    flags: Flags

    def apply(self, pt: PageTable) -> None:
        pt.map_frame(self.vaddr, self.frame, self.size, self.flags)

    def label(self) -> str:
        return f"map({self.vaddr:#x},{self.frame:#x},{self.size.name})"


@dataclass(frozen=True)
class UnmapOp:
    vaddr: int

    def apply(self, pt: PageTable) -> None:
        pt.unmap(self.vaddr)

    def label(self) -> str:
        return f"unmap({self.vaddr:#x})"


def default_vocabulary() -> list:
    """The operation vocabulary the bounded proof quantifies over."""
    rw = Flags.user_rw()
    ro = Flags(writable=False, user=True, executable=True)
    kernel = Flags.kernel_rw()
    ops: list = [
        # 4K pages: two sharing one PT, one in a different PML4 subtree
        MapOp(0x1000, 0x10_0000, PageSize.SIZE_4K, rw),
        MapOp(0x2000, 0x20_0000, PageSize.SIZE_4K, ro),
        MapOp(1 << 39, 0x10_0000, PageSize.SIZE_4K, kernel),  # aliased frame
        # 2M pages: one independent, one whose PD region covers the 4K pair
        MapOp(0x40_0000, 0x40_0000, PageSize.SIZE_2M, rw),
        MapOp(0x0, 0x20_0000, PageSize.SIZE_2M, rw),  # covers 0x1000/0x2000
        # 1G page
        MapOp(GB, 0x4000_0000, PageSize.SIZE_1G, ro),
        # unmaps at page bases and interior addresses
        UnmapOp(0x1000),
        UnmapOp(0x2000),
        UnmapOp(1 << 39),
        UnmapOp(0x40_0000 + 0x1000),  # interior of the 2M page
        UnmapOp(GB + 0x12_3000),  # interior of the 1G page
    ]
    return ops


@dataclass
class Scenario:
    """A replayable low-level state reached by an op sequence."""

    ops: tuple = ()
    abstract: AbstractState = field(default_factory=AbstractState)

    def build(self) -> tuple[PhysicalMemory, PageTable]:
        """Reconstruct the concrete state by replaying the ops."""
        memory = PhysicalMemory(MEMORY_SIZE)
        allocator = SimpleFrameAllocator(memory, start=8 * MB)
        pt = PageTable(memory, allocator)
        for op in self.ops:
            op.apply(pt)
        return memory, pt

    def label(self) -> str:
        if not self.ops:
            return "<empty>"
        return "; ".join(op.label() for op in self.ops)


def generate_scenarios(
    vocabulary=None,
    max_depth: int = 3,
    max_scenarios: int = 120,
) -> list[Scenario]:
    """BFS over op sequences, deduplicating by abstract state.

    Only *successful* op applications extend a scenario (failed operations
    are covered by the dedicated failure-agreement VCs); dedup keeps one
    shortest witness per distinct abstract state, plus distinct op histories
    up to the cap so tree-shape diversity survives (the same abstract state
    can be represented by different trees after garbage collection)."""
    if vocabulary is None:
        vocabulary = default_vocabulary()

    scenarios: list[Scenario] = []
    seen_histories: set[tuple] = set()
    seen_abstract_count: dict[AbstractState, int] = {}
    frontier = [Scenario()]

    while frontier and len(scenarios) < max_scenarios:
        next_frontier: list[Scenario] = []
        for scenario in frontier:
            if len(scenarios) >= max_scenarios:
                break
            scenarios.append(scenario)
            if len(scenario.ops) >= max_depth:
                continue
            memory, pt = scenario.build()
            for op in vocabulary:
                try:
                    # apply to a fresh copy to test success
                    mem2, pt2 = scenario.build()
                    op.apply(pt2)
                except PtError:
                    continue
                history = scenario.ops + (op,)
                if history in seen_histories:
                    continue
                seen_histories.add(history)
                abstract = interpret(mem2, pt2.root_paddr)
                # keep at most 2 witnesses per abstract state
                count = seen_abstract_count.get(abstract, 0)
                if count >= 2:
                    continue
                seen_abstract_count[abstract] = count + 1
                next_frontier.append(Scenario(history, abstract))
            del memory, pt
        frontier = next_frontier
    return scenarios
