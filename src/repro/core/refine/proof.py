"""Assembly of the page-table refinement proof (Figure 2).

Builds the full verification-condition population:

* ``entry-lemmas`` / ``address-lemmas`` / ``marshal-lemmas`` — SMT goals
  (:mod:`repro.core.refine.lemmas`);
* ``invariants`` — structural tree invariants, shown preserved by every
  operation over the bounded scenario space;
* ``simulation`` — the forward-simulation diagrams: implementation
  behaviour matches the high-level spec's transitions, success and failure;
* ``hardware-agreement`` — the independent MMU walker agrees with the
  abstract map on every probe address;
* ``tlb`` — the shootdown protocol keeps TLBs consistent.

`build_proof()` returns a :class:`ProofEngine` whose `run()` produces the
timing population of Figure 1a.  Optional groups (node-replication
linearizability, the client syscall contract) are added by their own
modules to keep the layering of the paper's Figure 2.
"""

from __future__ import annotations

from repro.core.pt import defs, entry
from repro.core.pt.defs import Flags, PageSize
from repro.core.pt.impl import (
    AlreadyMapped,
    BadRequest,
    NotMapped,
    PageTable,
    PtError,
    SimpleFrameAllocator,
)
from repro.core.refine import scenarios as scen
from repro.core.refine.interp import interpret
from repro.core.refine.lemmas import all_lemma_vcs
from repro.core.spec import hardware as hwspec
from repro.core.spec.highlevel import AbstractState, map_enabled, unmap_enabled
from repro.hw.mem import PhysicalMemory
from repro.hw.mmu import AccessType, Mmu, TranslationFault
from repro.hw.tlb import Tlb
from repro.verif.engine import ProofEngine
from repro.verif.vc import VC

MB = 1024 * 1024


# ---------------------------------------------------------------------------
# Tree invariants, as individual named predicates over (memory, pt)
# ---------------------------------------------------------------------------


def _reachable_entries(memory, root):
    """Yield (level, table_paddr, index, raw) for every reachable entry."""
    stack = [(root, 0)]
    while stack:
        table, level = stack.pop()
        for index in range(defs.ENTRIES_PER_TABLE):
            raw = memory.load_u64(table + index * defs.ENTRY_SIZE)
            yield level, table, index, raw
            view = entry.decode(raw, level)
            if view.kind is entry.EntryKind.TABLE:
                stack.append((view.paddr, level + 1))


def inv_entries_well_formed(memory, pt):
    return all(
        entry.is_well_formed(raw, level)
        for level, _, _, raw in _reachable_entries(memory, pt.root_paddr)
    )


def inv_no_shared_tables(memory, pt):
    frames = pt.table_frames()
    return len(frames) == len(set(frames))


def inv_no_stray_bits_on_empty(memory, pt):
    return all(
        raw == 0
        for level, _, _, raw in _reachable_entries(memory, pt.root_paddr)
        if not raw & 1
    )


def inv_frames_aligned(memory, pt):
    for level, _, _, raw in _reachable_entries(memory, pt.root_paddr):
        view = entry.decode(raw, level)
        if view.kind is entry.EntryKind.PAGE:
            if view.paddr % int(PageSize.for_level(level)):
                return False
    return True


def inv_no_empty_intermediate(memory, pt):
    stack = [(pt.root_paddr, 0)]
    while stack:
        table, level = stack.pop()
        present = 0
        for index in range(defs.ENTRIES_PER_TABLE):
            raw = memory.load_u64(table + index * defs.ENTRY_SIZE)
            view = entry.decode(raw, level)
            if view.kind is not entry.EntryKind.EMPTY:
                present += 1
            if view.kind is entry.EntryKind.TABLE:
                stack.append((view.paddr, level + 1))
        if level > 0 and present == 0:
            return False
    return True


def inv_no_pml4_huge_bit(memory, pt):
    for index in range(defs.ENTRIES_PER_TABLE):
        raw = memory.load_u64(pt.root_paddr + index * defs.ENTRY_SIZE)
        if raw & 1 and raw & (1 << defs.BIT_HUGE):
            return False
    return True


def inv_tables_within_memory(memory, pt):
    return all(0 <= frame < memory.size for frame in pt.table_frames())


def inv_interp_no_overlap(memory, pt):
    abstract = interpret(memory, pt.root_paddr)
    spans = sorted(
        (base, base + int(pte.size)) for base, pte in abstract.mappings.items()
    )
    return all(b >= a_end for (_, a_end), (b, _) in zip(spans, spans[1:]))


def inv_interp_aligned(memory, pt):
    abstract = interpret(memory, pt.root_paddr)
    return all(
        base % int(pte.size) == 0 and pte.frame % int(pte.size) == 0
        for base, pte in abstract.mappings.items()
    )


def inv_interp_canonical(memory, pt):
    abstract = interpret(memory, pt.root_paddr)
    return all(
        defs.is_canonical(base) and defs.is_canonical(base + int(pte.size) - 1)
        for base, pte in abstract.mappings.items()
    )


TREE_INVARIANTS = {
    "entries_well_formed": inv_entries_well_formed,
    "no_shared_tables": inv_no_shared_tables,
    "no_stray_bits_on_empty": inv_no_stray_bits_on_empty,
    "frames_aligned": inv_frames_aligned,
    "no_empty_intermediate": inv_no_empty_intermediate,
    "no_pml4_huge_bit": inv_no_pml4_huge_bit,
    "tables_within_memory": inv_tables_within_memory,
    "interp_no_overlap": inv_interp_no_overlap,
    "interp_aligned": inv_interp_aligned,
    "interp_canonical": inv_interp_canonical,
}


# ---------------------------------------------------------------------------
# Operation kinds the preservation VCs quantify over
# ---------------------------------------------------------------------------


def _vocab_ops_of_kind(kind: str):
    vocab = scen.default_vocabulary()
    if kind == "map_4k":
        return [op for op in vocab
                if isinstance(op, scen.MapOp) and op.size is PageSize.SIZE_4K]
    if kind == "map_2m":
        return [op for op in vocab
                if isinstance(op, scen.MapOp) and op.size is PageSize.SIZE_2M]
    if kind == "map_1g":
        return [op for op in vocab
                if isinstance(op, scen.MapOp) and op.size is PageSize.SIZE_1G]
    if kind == "unmap":
        return [op for op in vocab if isinstance(op, scen.UnmapOp)]
    raise ValueError(kind)


OP_KINDS = ("map_4k", "map_2m", "map_1g", "unmap", "failed_op", "resolve")


def _invariant_preservation_vc(
    inv_name: str, kind: str, scenario_source
) -> VC:
    invariant = TREE_INVARIANTS[inv_name]

    def check():
        for scenario in scenario_source():
            if kind == "resolve":
                memory, pt = scenario.build()
                for probe in (0x1000, 0x2000, 0x40_0000, scen.GB, 0x7000):
                    pt.resolve(probe)
                if not invariant(memory, pt):
                    return (scenario.label(), "resolve")
                continue
            if kind == "failed_op":
                ops = scen.default_vocabulary()
            else:
                ops = _vocab_ops_of_kind(kind)
            for op in ops:
                memory, pt = scenario.build()
                try:
                    op.apply(pt)
                    if kind == "failed_op":
                        continue  # only failures interest this kind
                except PtError:
                    if kind != "failed_op":
                        continue  # only successes interest these kinds
                if not invariant(memory, pt):
                    return (scenario.label(), op.label())
        return None

    return VC(
        name=f"inv_{inv_name}_preserved_by_{kind}",
        category="invariants",
        check=check,
        description=f"{inv_name} holds after every {kind} over the scenario space",
    )


# ---------------------------------------------------------------------------
# Simulation diagrams
# ---------------------------------------------------------------------------


def _sim_map_success_vc(size: PageSize, scenario_source) -> VC:
    def check():
        for scenario in scenario_source():
            for op in _vocab_ops_of_kind(f"map_{size.name[5:].lower()}"):
                spec_args = (op.vaddr, op.frame, op.size, op.flags)
                if not map_enabled(scenario.abstract, spec_args):
                    continue
                memory, pt = scenario.build()
                try:
                    op.apply(pt)
                except PtError as exc:
                    return (scenario.label(), op.label(), f"impl failed: {exc}")
                got = interpret(memory, pt.root_paddr)
                expected = scenario.abstract.map_page(*spec_args)
                if got.mappings != expected.mappings:
                    return (scenario.label(), op.label(), "diagram mismatch")
        return None

    return VC(
        name=f"sim_map_{size.name[5:].lower()}_success_commutes",
        category="simulation",
        check=check,
        description=f"spec-enabled {size.name} maps succeed and commute",
    )


def _sim_map_failure_vc(size: PageSize, scenario_source) -> VC:
    def check():
        for scenario in scenario_source():
            for op in _vocab_ops_of_kind(f"map_{size.name[5:].lower()}"):
                spec_args = (op.vaddr, op.frame, op.size, op.flags)
                if map_enabled(scenario.abstract, spec_args):
                    continue
                memory, pt = scenario.build()
                try:
                    op.apply(pt)
                    return (scenario.label(), op.label(),
                            "impl succeeded where spec disabled")
                except (AlreadyMapped, BadRequest):
                    pass
                got = interpret(memory, pt.root_paddr)
                if got.mappings != scenario.abstract.mappings:
                    return (scenario.label(), op.label(),
                            "failed map changed the tree")
        return None

    return VC(
        name=f"sim_map_{size.name[5:].lower()}_failure_agrees",
        category="simulation",
        check=check,
        description=f"spec-disabled {size.name} maps fail and leave state",
    )


def _sim_unmap_success_vc(scenario_source) -> VC:
    def check():
        for scenario in scenario_source():
            for op in _vocab_ops_of_kind("unmap"):
                if not unmap_enabled(scenario.abstract, (op.vaddr,)):
                    continue
                memory, pt = scenario.build()
                base, pte = scenario.abstract.lookup(op.vaddr)
                removed = pt.unmap(op.vaddr)
                if (removed.vaddr, removed.paddr, removed.size) != (
                    base, pte.frame, pte.size,
                ):
                    return (scenario.label(), op.label(), "return mismatch")
                got = interpret(memory, pt.root_paddr)
                expected = scenario.abstract.unmap_page(op.vaddr)
                if got.mappings != expected.mappings:
                    return (scenario.label(), op.label(), "diagram mismatch")
        return None

    return VC(
        name="sim_unmap_success_commutes",
        category="simulation",
        check=check,
        description="spec-enabled unmaps succeed, return the removed "
                    "mapping, and commute",
    )


def _sim_unmap_failure_vc(scenario_source) -> VC:
    def check():
        for scenario in scenario_source():
            for op in _vocab_ops_of_kind("unmap"):
                if unmap_enabled(scenario.abstract, (op.vaddr,)):
                    continue
                memory, pt = scenario.build()
                try:
                    pt.unmap(op.vaddr)
                    return (scenario.label(), op.label(),
                            "unmap of unmapped address succeeded")
                except NotMapped:
                    pass
                got = interpret(memory, pt.root_paddr)
                if got.mappings != scenario.abstract.mappings:
                    return (scenario.label(), op.label(), "tree changed")
        return None

    return VC(
        name="sim_unmap_failure_agrees",
        category="simulation",
        check=check,
        description="unmap fails exactly when the spec says nothing is mapped",
    )


def _sim_resolve_vc(kind: str, scenario_source) -> VC:
    """kind is a size name or 'unmapped'."""

    def check():
        probes = (0x0, 0x1000, 0x1008, 0x2000, 0x2ff8, 0x40_0000,
                  0x40_0000 + 0x10_0000, 1 << 39, scen.GB, scen.GB + 0x12_3000,
                  0x7000, 0x9_9000)
        for scenario in scenario_source():
            memory, pt = scenario.build()
            before = interpret(memory, pt.root_paddr)
            for vaddr in probes:
                hit = scenario.abstract.lookup(vaddr)
                if kind == "unmapped":
                    if hit is not None:
                        continue
                    if pt.resolve(vaddr) is not None:
                        return (scenario.label(), hex(vaddr),
                                "resolve found a phantom mapping")
                    continue
                if hit is None or hit[1].size.name != kind:
                    continue
                base, pte = hit
                resolved = pt.resolve(vaddr)
                if resolved is None:
                    return (scenario.label(), hex(vaddr), "resolve missed")
                if (resolved.vaddr, resolved.paddr, resolved.size,
                        resolved.flags) != (base, pte.frame, pte.size,
                                            pte.flags):
                    return (scenario.label(), hex(vaddr), "resolve mismatch")
            after = interpret(memory, pt.root_paddr)
            if before.mappings != after.mappings:
                return (scenario.label(), "resolve mutated the tree")
        return None

    return VC(
        name=f"sim_resolve_agrees_{kind.lower()}",
        category="simulation",
        check=check,
        description=f"resolve agrees with the abstract map ({kind})",
    )


def _sim_overlap_matrix_vc(new_size: PageSize, old_size: PageSize) -> VC:
    """Direct construction: a page of `old_size` blocks any overlapping map
    of `new_size`, in both nesting directions."""

    def check():
        memory = PhysicalMemory(scen.MEMORY_SIZE)
        allocator = SimpleFrameAllocator(memory, start=8 * MB)
        pt = PageTable(memory, allocator)
        region = 1 << 30  # 1 GiB-aligned region, valid base for any size
        pt.map_frame(region, region, old_size, Flags.user_rw())
        before = interpret(memory, pt.root_paddr)

        # candidate overlapping vaddrs: same base, interior page of the
        # larger region, and the enclosing base when new is bigger
        candidates = {region}
        if int(new_size) < int(old_size):
            candidates.add(region + int(old_size) - int(new_size))
            candidates.add(region + int(new_size))
        for vaddr in sorted(candidates):
            try:
                pt.map_frame(vaddr, 0, new_size, Flags.user_rw())
                return (f"map {new_size.name} at {vaddr:#x} over "
                        f"{old_size.name} succeeded")
            except AlreadyMapped:
                pass
        after = interpret(memory, pt.root_paddr)
        if before.mappings != after.mappings:
            return "rejected overlap mutated the tree"
        return None

    return VC(
        name=f"sim_overlap_{new_size.name[5:].lower()}_over_{old_size.name[5:].lower()}",
        category="simulation",
        check=check,
        description=f"{new_size.name} over existing {old_size.name} is rejected",
    )


def _sim_unmap_interior_vc(size: PageSize) -> VC:
    def check():
        memory = PhysicalMemory(scen.MEMORY_SIZE)
        allocator = SimpleFrameAllocator(memory, start=8 * MB)
        pt = PageTable(memory, allocator)
        region = 1 << 30
        pt.map_frame(region, region, size, Flags.user_rw())
        interior = region + int(size) // 2 + 0x8
        removed = pt.unmap(interior)
        if removed.vaddr != region:
            return f"interior unmap removed {removed.vaddr:#x}"
        if interpret(memory, pt.root_paddr).mappings:
            return "mapping survived interior unmap"
        return None

    return VC(
        name=f"sim_unmap_interior_{size.name[5:].lower()}",
        category="simulation",
        check=check,
        description=f"unmap through an interior address removes the {size.name} page",
    )


# ---------------------------------------------------------------------------
# Hardware-agreement obligations
# ---------------------------------------------------------------------------


def _hw_walk_agreement_vc(kind: str, scenario_source) -> VC:
    """kind: a size name (mapped agreement) or 'unmapped' (fault
    agreement)."""

    def check():
        for scenario in scenario_source():
            memory, pt = scenario.build()
            if kind != "unmapped" and not any(
                pte.size.name == kind
                for pte in scenario.abstract.mappings.values()
            ):
                continue
            probes = hwspec.probe_addresses_for(scenario.abstract)
            result = hwspec.walk_agrees_with_abstract(
                memory, pt.root_paddr, scenario.abstract, probes
            )
            if result is not None:
                return (scenario.label(),) + result
        return None

    return VC(
        name=f"hw_walk_agrees_{kind.lower()}",
        category="hardware-agreement",
        check=check,
        description=f"MMU walk matches the abstract map ({kind})",
    )


def _hw_permission_vc(which: str) -> VC:
    def check():
        memory = PhysicalMemory(scen.MEMORY_SIZE)
        allocator = SimpleFrameAllocator(memory, start=8 * MB)
        pt = PageTable(memory, allocator)
        mmu = Mmu(memory)
        if which == "write_to_readonly":
            pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K,
                         Flags(writable=False, user=True))
            try:
                mmu.translate(pt.root_paddr, 0x1000, AccessType.WRITE,
                              user_mode=True)
                return "write to read-only page did not fault"
            except TranslationFault:
                return None
        if which == "user_to_supervisor":
            pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.kernel_rw())
            try:
                mmu.translate(pt.root_paddr, 0x1000, AccessType.READ,
                              user_mode=True)
                return "user access to supervisor page did not fault"
            except TranslationFault:
                pass
            # and the kernel can still access it
            mmu.translate(pt.root_paddr, 0x1000, AccessType.READ)
            return None
        if which == "execute_nx":
            pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K,
                         Flags(writable=True, user=True, executable=False))
            try:
                mmu.translate(pt.root_paddr, 0x1000, AccessType.EXECUTE,
                              user_mode=True)
                return "execute of NX page did not fault"
            except TranslationFault:
                return None
        raise ValueError(which)

    return VC(
        name=f"hw_permission_{which}",
        category="hardware-agreement",
        check=check,
        description=f"permission fault behaviour: {which}",
    )


def _hw_memops_vc(which: str, scenario_source) -> VC:
    """Reads/writes through the MMU behave like the abstract read/write."""

    def check():
        for scenario in scenario_source():
            memory, pt = scenario.build()
            mmu = Mmu(memory)
            abstract = scenario.abstract
            writable = [
                (base, pte)
                for base, pte in abstract.mappings.items()
                if pte.flags.writable
            ]
            for base, pte in writable:
                vaddr = base + 0x18
                value = (base ^ 0xA5A5_5A5A) & ((1 << 64) - 1)
                if which == "store_then_load":
                    mmu.store_u64(pt.root_paddr, vaddr, value)
                    if mmu.load_u64(pt.root_paddr, vaddr) != value:
                        return (scenario.label(), hex(vaddr), "readback mismatch")
                    abstract = abstract.write_word(vaddr, value)
                    if abstract.read_word(vaddr) != value:
                        return (scenario.label(), hex(vaddr), "spec mismatch")
                elif which == "aliasing":
                    aliases = [
                        other for other, op in abstract.mappings.items()
                        if op.frame == pte.frame and op.size == pte.size
                    ]
                    if len(aliases) < 2:
                        continue
                    mmu.store_u64(pt.root_paddr, aliases[0] + 0x20, value)
                    got = mmu.load_u64(pt.root_paddr, aliases[1] + 0x20)
                    if got != value:
                        return (scenario.label(), "alias readback mismatch")
        return None

    return VC(
        name=f"hw_memops_{which}",
        category="hardware-agreement",
        check=check,
        description=f"memory semantics through translation: {which}",
    )


def _hw_resolve_vs_walk_vc(size: PageSize, scenario_source) -> VC:
    def check():
        for scenario in scenario_source():
            memory, pt = scenario.build()
            mmu = Mmu(memory)
            for base, pte in scenario.abstract.mappings.items():
                if pte.size != size:
                    continue
                for vaddr in (base, base + 0x8, base + int(size) - 8):
                    resolved = pt.resolve(vaddr)
                    walked = mmu.walk(pt.root_paddr, vaddr)
                    if resolved is None:
                        return (scenario.label(), hex(vaddr), "resolve missed")
                    if (walked.frame_paddr, walked.page_size, walked.flags) != (
                        resolved.paddr, resolved.size, resolved.flags,
                    ):
                        return (scenario.label(), hex(vaddr), "disagreement")
        return None

    return VC(
        name=f"hw_resolve_matches_walk_{size.name[5:].lower()}",
        category="hardware-agreement",
        check=check,
        description=f"impl resolve and MMU walk agree on {size.name} pages",
    )


# ---------------------------------------------------------------------------
# TLB obligations
# ---------------------------------------------------------------------------


def _tlb_vc(which: str, scenario_source) -> VC:
    def check():
        if which in ("shootdown_4k", "shootdown_2m", "shootdown_1g"):
            size = {"shootdown_4k": PageSize.SIZE_4K,
                    "shootdown_2m": PageSize.SIZE_2M,
                    "shootdown_1g": PageSize.SIZE_1G}[which]
            memory = PhysicalMemory(scen.MEMORY_SIZE)
            allocator = SimpleFrameAllocator(memory, start=8 * MB)
            pt = PageTable(memory, allocator)
            mmu = Mmu(memory)
            region = 1 << 30
            pt.map_frame(region, region, size, Flags.user_rw())
            tlb = Tlb()
            tlb.insert(mmu.walk(pt.root_paddr, region + 0x8))
            pt.unmap(region)
            tlb.invalidate_page(region + 0x8)  # the shootdown
            result = hwspec.tlb_consistent(
                memory, pt.root_paddr, tlb, [region, region + 0x8]
            )
            return result

        if which == "fill_consistent":
            for scenario in scenario_source():
                memory, pt = scenario.build()
                mmu = Mmu(memory)
                tlb = Tlb()
                for base in scenario.abstract.mappings.keys():
                    tlb.insert(mmu.walk(pt.root_paddr, base))
                probes = hwspec.probe_addresses_for(scenario.abstract)
                result = hwspec.tlb_consistent(
                    memory, pt.root_paddr, tlb, probes
                )
                if result is not None:
                    return (scenario.label(),) + result
            return None

        if which == "flush_consistent":
            for scenario in scenario_source():
                memory, pt = scenario.build()
                mmu = Mmu(memory)
                tlb = Tlb()
                for base in scenario.abstract.mappings.keys():
                    tlb.insert(mmu.walk(pt.root_paddr, base))
                # mutate arbitrarily, then a full flush must restore
                # consistency no matter what changed
                for op in scen.default_vocabulary():
                    try:
                        op.apply(pt)
                    except PtError:
                        pass
                tlb.flush()
                probes = hwspec.probe_addresses_for(
                    interpret(memory, pt.root_paddr)
                )
                result = hwspec.tlb_consistent(memory, pt.root_paddr, tlb,
                                               probes)
                if result is not None:
                    return (scenario.label(),) + result
            return None

        if which == "remap_after_shootdown":
            memory = PhysicalMemory(scen.MEMORY_SIZE)
            allocator = SimpleFrameAllocator(memory, start=8 * MB)
            pt = PageTable(memory, allocator)
            mmu = Mmu(memory)
            tlb = Tlb()
            pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
            tlb.insert(mmu.walk(pt.root_paddr, 0x1000))
            pt.unmap(0x1000)
            tlb.invalidate_page(0x1000)
            pt.map_frame(0x1000, 0x20_0000, PageSize.SIZE_4K, Flags.user_rw())
            tlb.insert(mmu.walk(pt.root_paddr, 0x1000))
            hit = tlb.lookup(0x1000)
            if hit is None or hit.paddr != 0x20_0000:
                return "remapped translation not visible"
            return hwspec.tlb_consistent(memory, pt.root_paddr, tlb, [0x1000])

        if which == "eviction_preserves_consistency":
            memory = PhysicalMemory(scen.MEMORY_SIZE)
            allocator = SimpleFrameAllocator(memory, start=8 * MB)
            pt = PageTable(memory, allocator)
            mmu = Mmu(memory)
            tlb = Tlb(capacity=4)
            vaddrs = [0x1000 * (i + 1) for i in range(12)]
            for i, vaddr in enumerate(vaddrs):
                pt.map_frame(vaddr, 0x10_0000 + 0x1000 * i,
                             PageSize.SIZE_4K, Flags.user_rw())
                tlb.insert(mmu.walk(pt.root_paddr, vaddr))
            if len(tlb) > 4:
                return "TLB exceeded capacity"
            return hwspec.tlb_consistent(memory, pt.root_paddr, tlb, vaddrs)

        if which == "stale_entry_detected":
            # The consistency checker must *catch* a skipped shootdown —
            # this VC guards the checker itself against vacuity.
            memory = PhysicalMemory(scen.MEMORY_SIZE)
            allocator = SimpleFrameAllocator(memory, start=8 * MB)
            pt = PageTable(memory, allocator)
            mmu = Mmu(memory)
            tlb = Tlb()
            pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
            tlb.insert(mmu.walk(pt.root_paddr, 0x1000))
            pt.unmap(0x1000)  # no invalidation: protocol violated
            result = hwspec.tlb_consistent(memory, pt.root_paddr, tlb, [0x1000])
            if result is None:
                return "checker failed to detect a stale TLB entry"
            return None

        raise ValueError(which)

    return VC(
        name=f"tlb_{which}",
        category="tlb",
        check=check,
        description=f"TLB protocol obligation: {which}",
    )


# ---------------------------------------------------------------------------
# End-to-end refinement traces (the theorem of Section 4.4)
# ---------------------------------------------------------------------------


def _refinement_trace_vc(which: str) -> VC:
    """Replay a long pseudo-random operation trace and check that the
    abstraction of every intermediate concrete state equals the state of
    the high-level machine run on the same (successful) operations, and
    that observable return values agree."""
    import random

    def check():
        rng = random.Random(0xC0FFEE if which == "state" else 0xBEEF)
        memory = PhysicalMemory(scen.MEMORY_SIZE)
        allocator = SimpleFrameAllocator(memory, start=8 * MB)
        pt = PageTable(memory, allocator)
        spec = AbstractState()
        vocab = scen.default_vocabulary()
        probes = (0x1000, 0x2000, 0x40_0000, scen.GB, 1 << 39, 0x7000)
        for step in range(120):
            op = rng.choice(vocab)
            try:
                op.apply(pt)
                impl_ok = True
            except PtError:
                impl_ok = False
            if isinstance(op, scen.MapOp):
                spec_args = (op.vaddr, op.frame, op.size, op.flags)
                spec_ok = map_enabled(spec, spec_args)
                if spec_ok:
                    spec = spec.map_page(*spec_args)
            else:
                spec_ok = unmap_enabled(spec, (op.vaddr,))
                if spec_ok:
                    spec = spec.unmap_page(op.vaddr)
            if impl_ok != spec_ok:
                return (f"step {step}", op.label(),
                        f"impl_ok={impl_ok} spec_ok={spec_ok}")
            if which == "state":
                got = interpret(memory, pt.root_paddr)
                if got.mappings != spec.mappings:
                    return (f"step {step}", op.label(), "abstraction diverged")
            else:  # observable return values of resolve
                for vaddr in probes:
                    resolved = pt.resolve(vaddr)
                    hit = spec.lookup(vaddr)
                    if (resolved is None) != (hit is None):
                        return (f"step {step}", hex(vaddr),
                                "resolve observability mismatch")
                    if resolved is not None:
                        base, pte = hit
                        if (resolved.vaddr, resolved.paddr) != (base, pte.frame):
                            return (f"step {step}", hex(vaddr),
                                    "resolve returned different values")
        return None

    return VC(
        name=f"refinement_trace_{which}",
        category="refinement",
        check=check,
        description="every behaviour of the implementation corresponds to a "
                    f"behaviour of the high-level spec ({which})",
    )


def _tlb_context_switch_vc() -> VC:
    """Flushing on address-space switch keeps translations consistent even
    across two different page tables sharing one TLB (CR3 reload)."""

    def check():
        memory = PhysicalMemory(scen.MEMORY_SIZE)
        allocator = SimpleFrameAllocator(memory, start=8 * MB)
        pt_a = PageTable(memory, allocator)
        pt_b = PageTable(memory, allocator)
        pt_a.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        pt_b.map_frame(0x1000, 0x20_0000, PageSize.SIZE_4K, Flags.user_rw())
        mmu = Mmu(memory)
        tlb = Tlb()
        tlb.insert(mmu.walk(pt_a.root_paddr, 0x1000))
        # context switch: CR3 reload flushes the (non-global) TLB
        tlb.flush()
        result = hwspec.tlb_consistent(memory, pt_b.root_paddr, tlb, [0x1000])
        if result is not None:
            return result
        tlb.insert(mmu.walk(pt_b.root_paddr, 0x1000))
        hit = tlb.lookup(0x1000)
        if hit is None or hit.frame_paddr != 0x20_0000:
            return "process B saw process A's translation"
        return None

    return VC(
        name="tlb_context_switch_flush",
        category="tlb",
        check=check,
        description="CR3 reload isolates address spaces sharing a TLB",
    )


# ---------------------------------------------------------------------------
# Proof assembly
# ---------------------------------------------------------------------------


def proof_structure() -> list[str]:
    """Render the proof structure of Figure 2 as text: the high-level
    spec on top, refinement in the middle, implementation + hardware spec
    below, with the VC groups attached to each layer."""
    return [
        "+--------------------------------------------------------------+",
        "| (2) High-level specification                                 |",
        "|     state: Map VAddr -> PTE;  ops: map / unmap / resolve     |",
        "|     module: repro.core.spec.highlevel                        |",
        "+------------------------------^-------------------------------+",
        "                               | refinement proofs              ",
        "                               | groups: entry-lemmas,          ",
        "                               |   address-lemmas, invariants,  ",
        "                               |   simulation, refinement       ",
        "+------------------------------+-------------------------------+",
        "| (3) Page-table implementation   (1) Hardware specification   |",
        "|     executable map/unmap/        MMU walker + TLB model      |",
        "|     resolve over PT bits         repro.hw.mmu / repro.hw.tlb |",
        "|     repro.core.pt.impl                                       |",
        "|     groups: hardware-agreement, tlb                          |",
        "+--------------------------------------------------------------+",
        "  client contract (Sec. 3): groups contract, marshal-lemmas    ",
        "  concurrency (Sec. 4.3):   group nr-linearizability           ",
    ]


class _ScenarioCache:
    """Builds the scenario list once and shares it across VCs."""

    def __init__(self, max_depth: int, max_scenarios: int) -> None:
        self.max_depth = max_depth
        self.max_scenarios = max_scenarios
        self._scenarios: list | None = None

    def __call__(self):
        if self._scenarios is None:
            self._scenarios = scen.generate_scenarios(
                max_depth=self.max_depth, max_scenarios=self.max_scenarios
            )
        return self._scenarios


def build_proof(
    include_lemmas: bool = True,
    include_structural: bool = True,
    include_nr: bool = True,
    include_contract: bool = True,
    include_sched: bool = False,
    include_rg: bool = False,
    scenario_depth: int = 3,
    scenario_cap: int = 60,
) -> ProofEngine:
    """Assemble the full proof as a :class:`ProofEngine`.

    The default configuration registers the complete VC population used by
    the Figure 1a benchmark; the flags let tests and ablations run layers
    in isolation.

    The engine carries a `rebuild_spec` naming this builder and its exact
    arguments, so `repro.prover`'s process workers can reconstruct any of
    the population's VCs by name (the VC closures themselves don't pickle).
    """
    engine = ProofEngine()
    engine.rebuild_spec = ("pt-refinement", {
        "include_lemmas": include_lemmas,
        "include_structural": include_structural,
        "include_nr": include_nr,
        "include_contract": include_contract,
        "include_sched": include_sched,
        "include_rg": include_rg,
        "scenario_depth": scenario_depth,
        "scenario_cap": scenario_cap,
    })
    source = _ScenarioCache(scenario_depth, scenario_cap)

    if include_lemmas:
        for vc in all_lemma_vcs():
            engine.add(vc, group=vc.category)

    if include_structural:
        for inv_name in TREE_INVARIANTS:
            for kind in OP_KINDS:
                engine.add(
                    _invariant_preservation_vc(inv_name, kind, source),
                    group="invariants",
                )
        for size in PageSize:
            engine.add(_sim_map_success_vc(size, source), group="simulation")
            engine.add(_sim_map_failure_vc(size, source), group="simulation")
        engine.add(_sim_unmap_success_vc(source), group="simulation")
        engine.add(_sim_unmap_failure_vc(source), group="simulation")
        for kind in ("SIZE_4K", "SIZE_2M", "SIZE_1G", "unmapped"):
            engine.add(_sim_resolve_vc(kind, source), group="simulation")
        for new_size in PageSize:
            for old_size in PageSize:
                engine.add(_sim_overlap_matrix_vc(new_size, old_size),
                           group="simulation")
        for size in PageSize:
            engine.add(_sim_unmap_interior_vc(size), group="simulation")

        for kind in ("SIZE_4K", "SIZE_2M", "SIZE_1G", "unmapped"):
            engine.add(_hw_walk_agreement_vc(kind, source),
                       group="hardware-agreement")
        for which in ("write_to_readonly", "user_to_supervisor", "execute_nx"):
            engine.add(_hw_permission_vc(which), group="hardware-agreement")
        for which in ("store_then_load", "aliasing"):
            engine.add(_hw_memops_vc(which, source),
                       group="hardware-agreement")
        for size in PageSize:
            engine.add(_hw_resolve_vs_walk_vc(size, source),
                       group="hardware-agreement")

        for which in ("shootdown_4k", "shootdown_2m", "shootdown_1g",
                      "fill_consistent", "flush_consistent",
                      "remap_after_shootdown",
                      "eviction_preserves_consistency",
                      "stale_entry_detected"):
            engine.add(_tlb_vc(which, source), group="tlb")
        engine.add(_tlb_context_switch_vc(), group="tlb")

        engine.add(_refinement_trace_vc("state"), group="refinement")
        engine.add(_refinement_trace_vc("observable"), group="refinement")

    if include_nr:
        from repro.nr.proof import linearizability_vcs

        for vc in linearizability_vcs():
            engine.add(vc, group="nr-linearizability")

    if include_contract:
        from repro.core.contract.proof import contract_vcs

        for vc in contract_vcs():
            engine.add(vc, group="contract")

    if include_sched:
        from repro.verif.schedproof import scheduler_vcs

        for vc in scheduler_vcs():
            engine.add(vc, group="scheduler")

    if include_rg:
        from repro.verif.rgproof import rg_vcs

        for vc in rg_vcs():
            engine.add(vc, group="rg")

    return engine
