"""The executable page-table implementation (Figure 2, box 3).

Concrete functions for `map`, `unmap`, and `resolve` that read and write the
page-table bits in simulated physical memory, allocating and freeing the
frames that store intermediate tables — a faithful port of the paper's
verified Rust prototype to Python.

The `resolve` path intentionally re-reads the tree through this module's own
logic; agreement between it, the independent hardware walker, and the
abstract map is established by the `hardware-agreement` verification
conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import wordlib
from repro.core.pt import defs, entry
from repro.core.pt.defs import Flags, PageSize
from repro.core.pt.entry import EntryKind
from repro.hw.mem import PhysicalMemory


class PtError(Exception):
    """Base class for page-table operation failures."""


class AlreadyMapped(PtError):
    """The requested range overlaps an existing mapping."""


class NotMapped(PtError):
    """No mapping covers the requested virtual address."""


class BadRequest(PtError):
    """Misaligned or non-canonical arguments."""


class OutOfFrames(PtError):
    """The frame allocator could not provide a table frame."""


class SimpleFrameAllocator:
    """A minimal frame allocator (bump pointer + free list).

    Satisfies the allocator protocol the page table needs; the full kernel
    uses the buddy allocator in :mod:`repro.nros.pmem` instead.
    """

    def __init__(self, memory: PhysicalMemory, start: int = 0) -> None:
        if not wordlib.is_aligned(start, defs.PAGE_SIZE):
            raise ValueError("allocator start must be page-aligned")
        self.memory = memory
        self._next = start
        self._free: list[int] = []
        self.allocated = 0

    def alloc_frame(self) -> int:
        if self._free:
            frame = self._free.pop()
        else:
            if self._next + defs.PAGE_SIZE > self.memory.size:
                raise OutOfFrames("physical memory exhausted")
            frame = self._next
            self._next += defs.PAGE_SIZE
        self.allocated += 1
        return frame

    def free_frame(self, paddr: int) -> None:
        if not wordlib.is_aligned(paddr, defs.PAGE_SIZE):
            raise ValueError(f"freeing misaligned frame {paddr:#x}")
        self.allocated -= 1
        self._free.append(paddr)


# Hot-path bit tests (semantically identical to entry.decode, which the
# refinement proof checks; the implementation avoids building EntryView
# objects on every walk step, exactly as the compiled Rust original would).
_PRESENT = 1 << defs.BIT_PRESENT
_HUGE = 1 << defs.BIT_HUGE


def _maps_page(raw: int, level: int) -> bool:
    return level == 3 or (level in (1, 2) and bool(raw & _HUGE))


@dataclass(frozen=True)
class Mapping:
    """One mapping as reported by `resolve` and `unmap`."""

    vaddr: int  # page base virtual address
    paddr: int  # frame base physical address
    size: PageSize
    flags: Flags


class PageTable:
    """An x86-64 four-level page table over simulated physical memory."""

    def __init__(self, memory: PhysicalMemory, allocator, root_paddr: int | None = None):
        self.memory = memory
        self.allocator = allocator
        if root_paddr is None:
            root_paddr = allocator.alloc_frame()
            memory.zero_frame(root_paddr)
        self.root_paddr = root_paddr

    # -- helpers ----------------------------------------------------------------

    def _entry_paddr(self, table_paddr: int, vaddr: int, level: int) -> int:
        # shift+mask == the bit-field extraction (VC addr_index_extract_*)
        index = (vaddr >> defs.LEVEL_SHIFTS[level]) & 0x1FF
        return table_paddr + index * defs.ENTRY_SIZE

    def _read(self, table_paddr: int, vaddr: int, level: int) -> tuple[int, entry.EntryView]:
        raw = self.memory.load_u64(self._entry_paddr(table_paddr, vaddr, level))
        return raw, entry.decode(raw, level)

    def _table_is_empty(self, table_paddr: int) -> bool:
        return self.memory.is_zero_range(table_paddr, defs.PAGE_SIZE)

    # -- operations ---------------------------------------------------------------

    def map_frame(
        self, vaddr: int, frame_paddr: int, size: PageSize, flags: Flags
    ) -> None:
        """Map the page of `size` at `vaddr` to the physical frame at
        `frame_paddr`.

        Raises :class:`BadRequest` on misalignment, :class:`AlreadyMapped`
        when any existing mapping overlaps the range, and
        :class:`OutOfFrames` when a needed intermediate table cannot be
        allocated (in which case the tree is left unchanged)."""
        if not 0 <= vaddr < defs.MAX_VADDR:
            raise BadRequest(f"non-canonical vaddr {vaddr:#x}")
        mask = int(size) - 1
        if vaddr & mask:
            raise BadRequest(f"vaddr {vaddr:#x} not aligned to {size.name}")
        if frame_paddr & mask:
            raise BadRequest(f"frame {frame_paddr:#x} not aligned to {size.name}")
        if frame_paddr & ~defs.ADDR_MASK:
            raise BadRequest(f"frame {frame_paddr:#x} beyond physical range")

        target_level = size.level
        table = self.root_paddr
        created: list[tuple[int, int]] = []  # (entry paddr, table frame)
        try:
            for level in range(target_level):
                entry_paddr = self._entry_paddr(table, vaddr, level)
                raw = self.memory.load_u64(entry_paddr)
                if raw & _PRESENT:
                    if _maps_page(raw, level):
                        raise AlreadyMapped(
                            f"{vaddr:#x} covered by a "
                            f"{PageSize.for_level(level).name} page at "
                            f"{defs.LEVEL_NAMES[level]}"
                        )
                    table = raw & defs.ADDR_MASK
                else:
                    new_table = self.allocator.alloc_frame()
                    self.memory.zero_frame(new_table)
                    self.memory.store_u64(entry_paddr, entry.encode_table(new_table))
                    created.append((entry_paddr, new_table))
                    table = new_table
            leaf = self._entry_paddr(table, vaddr, target_level)
            if self.memory.load_u64(leaf) & _PRESENT:
                raise AlreadyMapped(f"{vaddr:#x} already mapped")
            self.memory.store_u64(
                leaf, entry.encode_page(frame_paddr, flags, target_level)
            )
        except (AlreadyMapped, OutOfFrames):
            # Roll back any tables created on this walk so a failed map
            # leaves the tree exactly as it was.
            for entry_paddr, table_frame in reversed(created):
                self.memory.store_u64(entry_paddr, 0)
                self.allocator.free_frame(table_frame)
            raise

    def unmap(self, vaddr: int) -> Mapping:
        """Remove the mapping covering `vaddr` and return it.

        Intermediate tables left empty by the removal are freed.  Raises
        :class:`NotMapped` when nothing covers `vaddr`."""
        if not defs.is_canonical(vaddr):
            raise BadRequest(f"non-canonical vaddr {vaddr:#x}")
        table = self.root_paddr
        path: list[tuple[int, int]] = []  # (table frame, entry paddr) per level
        for level in range(defs.NUM_LEVELS):
            entry_paddr = self._entry_paddr(table, vaddr, level)
            raw = self.memory.load_u64(entry_paddr)
            if not raw & _PRESENT:
                raise NotMapped(f"{vaddr:#x} not mapped")
            if _maps_page(raw, level):
                view = entry.decode(raw, level)
                size = PageSize.for_level(level)
                self.memory.store_u64(entry_paddr, 0)
                removed = Mapping(
                    vaddr=defs.vaddr_base(vaddr, size),
                    paddr=view.paddr,
                    size=size,
                    flags=view.flags,
                )
                self._collect_empty_tables(path)
                return removed
            path.append((table, entry_paddr))
            table = raw & defs.ADDR_MASK
        raise AssertionError("unreachable: PT level maps or is empty")

    def _collect_empty_tables(self, path: list[tuple[int, int]]) -> None:
        """Free tables on the walk path that became empty, bottom-up."""
        for parent_table, entry_paddr in reversed(path):
            raw = self.memory.load_u64(entry_paddr)
            child = raw & defs.ADDR_MASK
            if not self._table_is_empty(child):
                return
            self.memory.store_u64(entry_paddr, 0)
            self.allocator.free_frame(child)
            del parent_table

    def resolve(self, vaddr: int) -> Mapping | None:
        """Return the mapping covering `vaddr`, or None."""
        if not defs.is_canonical(vaddr):
            raise BadRequest(f"non-canonical vaddr {vaddr:#x}")
        table = self.root_paddr
        for level in range(defs.NUM_LEVELS):
            raw = self.memory.load_u64(self._entry_paddr(table, vaddr, level))
            if not raw & _PRESENT:
                return None
            if _maps_page(raw, level):
                view = entry.decode(raw, level)
                size = PageSize.for_level(level)
                return Mapping(
                    vaddr=defs.vaddr_base(vaddr, size),
                    paddr=view.paddr,
                    size=size,
                    flags=view.flags,
                )
            table = raw & defs.ADDR_MASK
        raise AssertionError("unreachable")

    # -- whole-tree operations ---------------------------------------------------

    def mappings(self) -> list[Mapping]:
        """Enumerate all mappings (used by tests and address-space cloning)."""
        out: list[Mapping] = []
        self._walk_tables(self.root_paddr, 0, 0, out)
        return out

    def _walk_tables(self, table: int, level: int, vbase: int, out: list[Mapping]):
        shift = defs.LEVEL_SHIFTS[level]
        for index in range(defs.ENTRIES_PER_TABLE):
            raw = self.memory.load_u64(table + index * defs.ENTRY_SIZE)
            view = entry.decode(raw, level)
            if view.kind is EntryKind.EMPTY:
                continue
            child_vbase = vbase | (index << shift)
            if view.kind is EntryKind.PAGE:
                out.append(
                    Mapping(
                        vaddr=child_vbase,
                        paddr=view.paddr,
                        size=PageSize.for_level(level),
                        flags=view.flags,
                    )
                )
            else:
                self._walk_tables(view.paddr, level + 1, child_vbase, out)

    def destroy(self) -> None:
        """Unmap everything and free every table frame including the root."""
        self._free_tables(self.root_paddr, 0)

    def _free_tables(self, table: int, level: int) -> None:
        if level < defs.NUM_LEVELS - 1:
            for index in range(defs.ENTRIES_PER_TABLE):
                raw = self.memory.load_u64(table + index * defs.ENTRY_SIZE)
                view = entry.decode(raw, level)
                if view.kind is EntryKind.TABLE:
                    self._free_tables(view.paddr, level + 1)
        self.allocator.free_frame(table)

    def table_frames(self) -> list[int]:
        """All frames used to store the tree (root included)."""
        frames: list[int] = []
        self._collect_frames(self.root_paddr, 0, frames)
        return frames

    def _collect_frames(self, table: int, level: int, out: list[int]) -> None:
        out.append(table)
        if level >= defs.NUM_LEVELS - 1:
            return
        for index in range(defs.ENTRIES_PER_TABLE):
            raw = self.memory.load_u64(table + index * defs.ENTRY_SIZE)
            view = entry.decode(raw, level)
            if view.kind is EntryKind.TABLE:
                self._collect_frames(view.paddr, level + 1, out)
