"""The executable page-table implementation (Figure 2, box 3).

Concrete functions for `map`, `unmap`, and `resolve` that read and write the
page-table bits in simulated physical memory, allocating and freeing the
frames that store intermediate tables — a faithful port of the paper's
verified Rust prototype to Python.

The `resolve` path intentionally re-reads the tree through this module's own
logic; agreement between it, the independent hardware walker, and the
abstract map is established by the `hardware-agreement` verification
conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import wordlib
from repro.core.pt import defs, entry
from repro.core.pt.defs import Flags, PageSize
from repro.core.pt.entry import EntryKind
from repro.hw.mem import PhysicalMemory


class PtError(Exception):
    """Base class for page-table operation failures."""


class AlreadyMapped(PtError):
    """The requested range overlaps an existing mapping."""


class NotMapped(PtError):
    """No mapping covers the requested virtual address."""


class BadRequest(PtError):
    """Misaligned or non-canonical arguments."""


class OutOfFrames(PtError):
    """The frame allocator could not provide a table frame."""


class SimpleFrameAllocator:
    """A minimal frame allocator (bump pointer + free list).

    Satisfies the allocator protocol the page table needs; the full kernel
    uses the buddy allocator in :mod:`repro.nros.pmem` instead.
    """

    def __init__(self, memory: PhysicalMemory, start: int = 0) -> None:
        if not wordlib.is_aligned(start, defs.PAGE_SIZE):
            raise ValueError("allocator start must be page-aligned")
        self.memory = memory
        self._next = start
        self._free: list[int] = []
        self.allocated = 0

    def alloc_frame(self) -> int:
        if self._free:
            frame = self._free.pop()
        else:
            if self._next + defs.PAGE_SIZE > self.memory.size:
                raise OutOfFrames("physical memory exhausted")
            frame = self._next
            self._next += defs.PAGE_SIZE
        self.allocated += 1
        return frame

    def free_frame(self, paddr: int) -> None:
        if not wordlib.is_aligned(paddr, defs.PAGE_SIZE):
            raise ValueError(f"freeing misaligned frame {paddr:#x}")
        self.allocated -= 1
        self._free.append(paddr)


# Hot-path bit tests (semantically identical to entry.decode, which the
# refinement proof checks; the implementation avoids building EntryView
# objects on every walk step, exactly as the compiled Rust original would).
_PRESENT = 1 << defs.BIT_PRESENT
_HUGE = 1 << defs.BIT_HUGE


def _maps_page(raw: int, level: int) -> bool:
    return level == 3 or (level in (1, 2) and bool(raw & _HUGE))


@dataclass(frozen=True)
class Mapping:
    """One mapping as reported by `resolve` and `unmap`."""

    vaddr: int  # page base virtual address
    paddr: int  # frame base physical address
    size: PageSize
    flags: Flags


class PageTable:
    """An x86-64 four-level page table over simulated physical memory."""

    def __init__(self, memory: PhysicalMemory, allocator, root_paddr: int | None = None):
        self.memory = memory
        self.allocator = allocator
        if root_paddr is None:
            root_paddr = allocator.alloc_frame()
            memory.zero_frame(root_paddr)
        self.root_paddr = root_paddr

    # -- helpers ----------------------------------------------------------------

    def _entry_paddr(self, table_paddr: int, vaddr: int, level: int) -> int:
        # shift+mask == the bit-field extraction (VC addr_index_extract_*)
        index = (vaddr >> defs.LEVEL_SHIFTS[level]) & 0x1FF
        return table_paddr + index * defs.ENTRY_SIZE

    def _read(self, table_paddr: int, vaddr: int, level: int) -> tuple[int, entry.EntryView]:
        raw = self.memory.load_u64(self._entry_paddr(table_paddr, vaddr, level))
        return raw, entry.decode(raw, level)

    def _table_is_empty(self, table_paddr: int) -> bool:
        return self.memory.is_zero_range(table_paddr, defs.PAGE_SIZE)

    # -- operations ---------------------------------------------------------------

    def map_frame(
        self, vaddr: int, frame_paddr: int, size: PageSize, flags: Flags
    ) -> int:
        """Map the page of `size` at `vaddr` to the physical frame at
        `frame_paddr`.  Returns the paddr of the table holding the new
        leaf entry (:meth:`map_batch` caches it to skip repeat walks).

        Raises :class:`BadRequest` on misalignment, :class:`AlreadyMapped`
        when any existing mapping overlaps the range, and
        :class:`OutOfFrames` when a needed intermediate table cannot be
        allocated (in which case the tree is left unchanged)."""
        if not 0 <= vaddr < defs.MAX_VADDR:
            raise BadRequest(f"non-canonical vaddr {vaddr:#x}")
        mask = int(size) - 1
        if vaddr & mask:
            raise BadRequest(f"vaddr {vaddr:#x} not aligned to {size.name}")
        if frame_paddr & mask:
            raise BadRequest(f"frame {frame_paddr:#x} not aligned to {size.name}")
        if frame_paddr & ~defs.ADDR_MASK:
            raise BadRequest(f"frame {frame_paddr:#x} beyond physical range")

        target_level = size.level
        table = self.root_paddr
        created: list[tuple[int, int]] = []  # (entry paddr, table frame)
        try:
            for level in range(target_level):
                entry_paddr = self._entry_paddr(table, vaddr, level)
                raw = self.memory.load_u64(entry_paddr)
                if raw & _PRESENT:
                    if _maps_page(raw, level):
                        raise AlreadyMapped(
                            f"{vaddr:#x} covered by a "
                            f"{PageSize.for_level(level).name} page at "
                            f"{defs.LEVEL_NAMES[level]}"
                        )
                    table = raw & defs.ADDR_MASK
                else:
                    new_table = self.allocator.alloc_frame()
                    self.memory.zero_frame(new_table)
                    self.memory.store_u64(entry_paddr, entry.encode_table(new_table))
                    created.append((entry_paddr, new_table))
                    table = new_table
            leaf = self._entry_paddr(table, vaddr, target_level)
            if self.memory.load_u64(leaf) & _PRESENT:
                raise AlreadyMapped(f"{vaddr:#x} already mapped")
            self.memory.store_u64(
                leaf, entry.encode_page(frame_paddr, flags, target_level)
            )
            return table
        except (AlreadyMapped, OutOfFrames):
            # Roll back any tables created on this walk so a failed map
            # leaves the tree exactly as it was.
            for entry_paddr, table_frame in reversed(created):
                self.memory.store_u64(entry_paddr, 0)
                self.allocator.free_frame(table_frame)
            raise

    def map_batch(self, entries) -> int:
        """Map N ``(vaddr, frame, size, flags)`` entries; returns the count.

        All-or-nothing: a failing entry unwinds the ones already applied
        before the error propagates.  The amortization: 4K pages landing
        in a leaf table the batch has already walked to skip the three
        interior levels — one load + one store instead of a full
        four-level descent, which is where a software walk spends most
        of its per-page time."""
        last = defs.NUM_LEVELS - 1
        shift = defs.LEVEL_SHIFTS[last - 1]
        leaf_tables: dict[int, int] = {}  # vaddr >> 21 -> leaf table paddr
        done: list[int] = []
        try:
            for vaddr, frame_paddr, size, flags in entries:
                table = (leaf_tables.get(vaddr >> shift)
                         if size is PageSize.SIZE_4K else None)
                if table is None:
                    table = self.map_frame(vaddr, frame_paddr, size, flags)
                    if size is PageSize.SIZE_4K:
                        leaf_tables[vaddr >> shift] = table
                else:
                    # same checks map_frame's leaf step performs; the
                    # interior descent is skipped, not the obligations
                    if vaddr & 0xFFF:
                        raise BadRequest(
                            f"vaddr {vaddr:#x} not aligned to SIZE_4K")
                    if frame_paddr & 0xFFF:
                        raise BadRequest(
                            f"frame {frame_paddr:#x} not aligned to SIZE_4K")
                    if frame_paddr & ~defs.ADDR_MASK:
                        raise BadRequest(
                            f"frame {frame_paddr:#x} beyond physical range")
                    leaf = self._entry_paddr(table, vaddr, last)
                    if self.memory.load_u64(leaf) & _PRESENT:
                        raise AlreadyMapped(f"{vaddr:#x} already mapped")
                    self.memory.store_u64(
                        leaf, entry.encode_page(frame_paddr, flags, last))
                done.append(vaddr)
        except PtError:
            for vaddr in reversed(done):
                self.unmap(vaddr)
            raise
        return len(done)

    def unmap(self, vaddr: int) -> Mapping:
        """Remove the mapping covering `vaddr` and return it.

        Intermediate tables left empty by the removal are freed.  Raises
        :class:`NotMapped` when nothing covers `vaddr`."""
        if not defs.is_canonical(vaddr):
            raise BadRequest(f"non-canonical vaddr {vaddr:#x}")
        table = self.root_paddr
        path: list[tuple[int, int]] = []  # (table frame, entry paddr) per level
        for level in range(defs.NUM_LEVELS):
            entry_paddr = self._entry_paddr(table, vaddr, level)
            raw = self.memory.load_u64(entry_paddr)
            if not raw & _PRESENT:
                raise NotMapped(f"{vaddr:#x} not mapped")
            if _maps_page(raw, level):
                view = entry.decode(raw, level)
                size = PageSize.for_level(level)
                self.memory.store_u64(entry_paddr, 0)
                removed = Mapping(
                    vaddr=defs.vaddr_base(vaddr, size),
                    paddr=view.paddr,
                    size=size,
                    flags=view.flags,
                )
                self._collect_empty_tables(path)
                return removed
            path.append((table, entry_paddr))
            table = raw & defs.ADDR_MASK
        raise AssertionError("unreachable: PT level maps or is empty")

    def _collect_empty_tables(self, path: list[tuple[int, int]]) -> None:
        """Free tables on the walk path that became empty, bottom-up."""
        for parent_table, entry_paddr in reversed(path):
            raw = self.memory.load_u64(entry_paddr)
            child = raw & defs.ADDR_MASK
            if not self._table_is_empty(child):
                return
            self.memory.store_u64(entry_paddr, 0)
            self.allocator.free_frame(child)
            del parent_table

    def unmap_batch(self, vaddrs) -> list[Mapping]:
        """Remove the mappings covering `vaddrs`, all-or-nothing.

        One validating walk records every leaf entry before anything is
        modified, so a missing page (or two addresses covered by the
        same mapping) raises :class:`NotMapped` with the tree untouched
        — sequential unmaps would fail *mid-batch* there.  The walk,
        the entry clears, and the empty-table collection are each one
        pass over the whole batch, which is what makes an N-page unmap
        cheaper than N unmaps: a leaf table shared by the batch is
        scanned for emptiness once, not once per page.
        """
        last = defs.NUM_LEVELS - 1
        shift = defs.LEVEL_SHIFTS[last - 1]
        size_4k = PageSize.for_level(last)
        recorded: list[tuple[int, Mapping, list[tuple[int, int]]]] = []
        seen_leaves: set[int] = set()
        # vaddr >> 21 -> (leaf table paddr, interior path).  The walk is
        # read-only until the point of no return, so a leaf table found
        # once serves every other 4K page of its 2MB region: one load +
        # present check per page instead of a four-level descent.
        leaf_tables: dict[int, tuple[int, list[tuple[int, int]]]] = {}
        for vaddr in vaddrs:
            cached = leaf_tables.get(vaddr >> shift)
            if cached is not None:
                table, path = cached
                entry_paddr = self._entry_paddr(table, vaddr, last)
                raw = self.memory.load_u64(entry_paddr)
                if not raw & _PRESENT:
                    raise NotMapped(f"{vaddr:#x} not mapped")
                if entry_paddr in seen_leaves:
                    raise NotMapped(
                        f"{vaddr:#x} covered by a mapping already "
                        f"unmapped in this batch")
                seen_leaves.add(entry_paddr)
                view = entry.decode(raw, last)
                recorded.append((
                    entry_paddr,
                    Mapping(
                        vaddr=defs.vaddr_base(vaddr, size_4k),
                        paddr=view.paddr,
                        size=size_4k,
                        flags=view.flags,
                    ),
                    path,
                ))
                continue
            if not defs.is_canonical(vaddr):
                raise BadRequest(f"non-canonical vaddr {vaddr:#x}")
            table = self.root_paddr
            path = []
            for level in range(defs.NUM_LEVELS):
                entry_paddr = self._entry_paddr(table, vaddr, level)
                raw = self.memory.load_u64(entry_paddr)
                if not raw & _PRESENT:
                    raise NotMapped(f"{vaddr:#x} not mapped")
                if _maps_page(raw, level):
                    if entry_paddr in seen_leaves:
                        raise NotMapped(
                            f"{vaddr:#x} covered by a mapping already "
                            f"unmapped in this batch")
                    seen_leaves.add(entry_paddr)
                    if level == last:
                        leaf_tables[vaddr >> shift] = (table, path)
                    view = entry.decode(raw, level)
                    size = PageSize.for_level(level)
                    recorded.append((
                        entry_paddr,
                        Mapping(
                            vaddr=defs.vaddr_base(vaddr, size),
                            paddr=view.paddr,
                            size=size,
                            flags=view.flags,
                        ),
                        path,
                    ))
                    break
                path.append((table, entry_paddr))
                table = raw & defs.ADDR_MASK
        # point of no return: clear every leaf entry, then free tables
        # the batch emptied (once per distinct path, bottom-up)
        for entry_paddr, _mapping, _path in recorded:
            self.memory.store_u64(entry_paddr, 0)
        collected: set[tuple] = set()
        for _entry_paddr, _mapping, path in recorded:
            key = tuple(entry_paddr for _table, entry_paddr in path)
            if key in collected:
                continue
            collected.add(key)
            self._collect_empty_tables_batch(path)
        return [mapping for _entry_paddr, mapping, _path in recorded]

    def _collect_empty_tables_batch(self, path: list[tuple[int, int]]) -> None:
        """Bottom-up empty collection tolerant of entries a sibling
        path's collection already cleared (shared ancestors in a batch)."""
        for _parent_table, entry_paddr in reversed(path):
            raw = self.memory.load_u64(entry_paddr)
            if not raw & _PRESENT:
                continue  # an earlier path in the batch freed this child
            child = raw & defs.ADDR_MASK
            if not self._table_is_empty(child):
                return
            self.memory.store_u64(entry_paddr, 0)
            self.allocator.free_frame(child)

    def resolve(self, vaddr: int) -> Mapping | None:
        """Return the mapping covering `vaddr`, or None."""
        if not defs.is_canonical(vaddr):
            raise BadRequest(f"non-canonical vaddr {vaddr:#x}")
        table = self.root_paddr
        for level in range(defs.NUM_LEVELS):
            raw = self.memory.load_u64(self._entry_paddr(table, vaddr, level))
            if not raw & _PRESENT:
                return None
            if _maps_page(raw, level):
                view = entry.decode(raw, level)
                size = PageSize.for_level(level)
                return Mapping(
                    vaddr=defs.vaddr_base(vaddr, size),
                    paddr=view.paddr,
                    size=size,
                    flags=view.flags,
                )
            table = raw & defs.ADDR_MASK
        raise AssertionError("unreachable")

    # -- whole-tree operations ---------------------------------------------------

    def mappings(self) -> list[Mapping]:
        """Enumerate all mappings (used by tests and address-space cloning)."""
        out: list[Mapping] = []
        self._walk_tables(self.root_paddr, 0, 0, out)
        return out

    def _walk_tables(self, table: int, level: int, vbase: int, out: list[Mapping]):
        shift = defs.LEVEL_SHIFTS[level]
        for index in range(defs.ENTRIES_PER_TABLE):
            raw = self.memory.load_u64(table + index * defs.ENTRY_SIZE)
            view = entry.decode(raw, level)
            if view.kind is EntryKind.EMPTY:
                continue
            child_vbase = vbase | (index << shift)
            if view.kind is EntryKind.PAGE:
                out.append(
                    Mapping(
                        vaddr=child_vbase,
                        paddr=view.paddr,
                        size=PageSize.for_level(level),
                        flags=view.flags,
                    )
                )
            else:
                self._walk_tables(view.paddr, level + 1, child_vbase, out)

    def destroy(self) -> None:
        """Unmap everything and free every table frame including the root."""
        self._free_tables(self.root_paddr, 0)

    def _free_tables(self, table: int, level: int) -> None:
        if level < defs.NUM_LEVELS - 1:
            for index in range(defs.ENTRIES_PER_TABLE):
                raw = self.memory.load_u64(table + index * defs.ENTRY_SIZE)
                view = entry.decode(raw, level)
                if view.kind is EntryKind.TABLE:
                    self._free_tables(view.paddr, level + 1)
        self.allocator.free_frame(table)

    def table_frames(self) -> list[int]:
        """All frames used to store the tree (root included)."""
        frames: list[int] = []
        self._collect_frames(self.root_paddr, 0, frames)
        return frames

    def _collect_frames(self, table: int, level: int, out: list[int]) -> None:
        out.append(table)
        if level >= defs.NUM_LEVELS - 1:
            return
        for index in range(defs.ENTRIES_PER_TABLE):
            raw = self.memory.load_u64(table + index * defs.ENTRY_SIZE)
            view = entry.decode(raw, level)
            if view.kind is EntryKind.TABLE:
                self._collect_frames(view.paddr, level + 1, out)
