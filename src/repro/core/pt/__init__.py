"""Package."""
