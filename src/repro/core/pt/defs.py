"""x86-64 paging constants and flag definitions.

Four-level paging: PML4 -> PDPT -> PD -> PT, 512 entries of 8 bytes per
table, 48-bit canonical virtual addresses, 4 KiB / 2 MiB / 1 GiB mappings.
These are the architectural facts the hardware spec and the implementation
must agree on; the bit-level lemmas in :mod:`repro.core.refine.lemmas` are
stated over exactly these constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import wordlib

# Table geometry -------------------------------------------------------------

ENTRY_SIZE = 8
ENTRIES_PER_TABLE = 512
INDEX_BITS = 9
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4 KiB

NUM_LEVELS = 4
# Levels are numbered the way the walker visits them:
#   level 0 = PML4, 1 = PDPT, 2 = PD, 3 = PT.
LEVEL_NAMES = ("PML4", "PDPT", "PD", "PT")

# Bit position of the VA index for each level: PML4 39, PDPT 30, PD 21, PT 12.
LEVEL_SHIFTS = tuple(
    PAGE_SHIFT + INDEX_BITS * (NUM_LEVELS - 1 - level)
    for level in range(NUM_LEVELS)
)

VADDR_BITS = PAGE_SHIFT + INDEX_BITS * NUM_LEVELS  # 48
MAX_VADDR = 1 << VADDR_BITS

# Physical address field: bits 12..51 of an entry.
PADDR_BITS = 52
ADDR_MASK = wordlib.mask(PADDR_BITS) & ~wordlib.mask(PAGE_SHIFT)


class PageSize(enum.IntEnum):
    """Mappable page sizes and the level whose entry maps them."""

    SIZE_4K = PAGE_SIZE
    SIZE_2M = PAGE_SIZE * ENTRIES_PER_TABLE
    SIZE_1G = PAGE_SIZE * ENTRIES_PER_TABLE * ENTRIES_PER_TABLE

    @property
    def level(self) -> int:
        """The level whose entry maps a page of this size."""
        if self is PageSize.SIZE_4K:
            return 3
        if self is PageSize.SIZE_2M:
            return 2
        return 1

    @classmethod
    def for_level(cls, level: int) -> "PageSize":
        size = _SIZE_FOR_LEVEL.get(level)
        if size is None:
            raise ValueError(f"level {level} cannot map a page")
        return size


# Entry flag bits ------------------------------------------------------------

BIT_PRESENT = 0
BIT_WRITABLE = 1
BIT_USER = 2
BIT_WRITE_THROUGH = 3
BIT_CACHE_DISABLE = 4
BIT_ACCESSED = 5
BIT_DIRTY = 6
BIT_HUGE = 7  # "PS": maps a large page at PDPT/PD level
BIT_GLOBAL = 8
BIT_NX = 63


@dataclass(frozen=True)
class Flags:
    """Permission and attribute flags carried by a mapping."""

    writable: bool = False
    user: bool = False
    executable: bool = True
    write_through: bool = False
    cache_disable: bool = False
    global_: bool = False

    @staticmethod
    def kernel_rw() -> "Flags":
        return Flags(writable=True, user=False, executable=False)

    @staticmethod
    def user_rw() -> "Flags":
        return Flags(writable=True, user=True, executable=False)

    @staticmethod
    def user_rx() -> "Flags":
        return Flags(writable=False, user=True, executable=True)


# The walker visits a page-mapping entry at levels 1 (1 GiB), 2 (2 MiB),
# and 3 (4 KiB); level 0 (PML4) never maps a page.
_SIZE_FOR_LEVEL = {
    1: PageSize.SIZE_1G,
    2: PageSize.SIZE_2M,
    3: PageSize.SIZE_4K,
}


def is_canonical(vaddr: int) -> bool:
    """True when `vaddr` is a valid 48-bit (lower-half) virtual address.

    The prototype, like NrOS processes, works in the lower canonical half.
    """
    return 0 <= vaddr < MAX_VADDR


def vaddr_index(vaddr: int, level: int) -> int:
    """The 9-bit table index the walker uses at `level`."""
    return (vaddr >> LEVEL_SHIFTS[level]) & wordlib.mask(INDEX_BITS)


def vaddr_offset(vaddr: int, size: PageSize) -> int:
    """The offset of `vaddr` within a page of the given size."""
    return vaddr & (int(size) - 1)


def vaddr_base(vaddr: int, size: PageSize) -> int:
    """The base virtual address of the page of `size` containing `vaddr`."""
    return vaddr & ~(int(size) - 1)
