"""Page-table entry encoding and decoding.

This is the layer the paper calls "map from a multi-level tree structure
encoded as bits to a flat abstract data type" — the lion's share of its
proof effort.  Encoding produces the raw u64 the hardware walker interprets;
decoding recovers the abstract view.  The roundtrip lemmas over these
functions form the `entry` group of the verification conditions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import wordlib
from repro.core.pt import defs
from repro.core.pt.defs import Flags, PageSize


class EntryKind(enum.Enum):
    EMPTY = "empty"
    TABLE = "table"
    PAGE = "page"


@dataclass(frozen=True)
class EntryView:
    """The abstract meaning of one raw page-table entry at a given level."""

    kind: EntryKind
    paddr: int = 0
    flags: Flags = Flags()

    @staticmethod
    def empty() -> "EntryView":
        return EntryView(EntryKind.EMPTY)


def encode_table(next_table_paddr: int) -> int:
    """Encode an intermediate entry pointing at the next-level table.

    Intermediate entries are maximally permissive (writable + user); the
    effective permissions come from the leaf, which is how NrOS configures
    its trees and keeps permission reasoning local to one entry.
    """
    if not wordlib.is_aligned(next_table_paddr, defs.PAGE_SIZE):
        raise ValueError(f"table paddr {next_table_paddr:#x} not page-aligned")
    if next_table_paddr & ~defs.ADDR_MASK:
        raise ValueError(f"table paddr {next_table_paddr:#x} out of range")
    raw = next_table_paddr & defs.ADDR_MASK
    raw = wordlib.set_bit(raw, defs.BIT_PRESENT, True)
    raw = wordlib.set_bit(raw, defs.BIT_WRITABLE, True)
    raw = wordlib.set_bit(raw, defs.BIT_USER, True)
    return raw


def encode_page(frame_paddr: int, flags: Flags, level: int) -> int:
    """Encode a leaf entry mapping a page at `level` (1 = 1 GiB, 2 = 2 MiB,
    3 = 4 KiB).

    The bit composition below is a straight-line OR of disjoint fields;
    the `entry-lemmas` VC group proves each field round-trips through
    :func:`decode`."""
    size = PageSize.for_level(level)
    if frame_paddr & (int(size) - 1):
        raise ValueError(
            f"frame {frame_paddr:#x} not aligned to {size.name}"
        )
    if frame_paddr & ~defs.ADDR_MASK:
        raise ValueError(f"frame paddr {frame_paddr:#x} out of range")
    raw = (
        frame_paddr
        | (1 << defs.BIT_PRESENT)
        | (flags.writable << defs.BIT_WRITABLE)
        | (flags.user << defs.BIT_USER)
        | (flags.write_through << defs.BIT_WRITE_THROUGH)
        | (flags.cache_disable << defs.BIT_CACHE_DISABLE)
        | (flags.global_ << defs.BIT_GLOBAL)
        | ((not flags.executable) << defs.BIT_NX)
    )
    if level in (1, 2):
        raw |= 1 << defs.BIT_HUGE
    return raw


# Flags is frozen, so one instance per distinct flag-bit combination can
# be shared by every entry that carries it — a mapping-heavy workload
# uses a handful of combinations across millions of decodes.
_FLAG_BITS_MASK = (
    (1 << defs.BIT_WRITABLE)
    | (1 << defs.BIT_USER)
    | (1 << defs.BIT_WRITE_THROUGH)
    | (1 << defs.BIT_CACHE_DISABLE)
    | (1 << defs.BIT_GLOBAL)
    | (1 << defs.BIT_NX)
)
_FLAG_CACHE: dict[int, Flags] = {}


def _decode_flags(raw: int) -> Flags:
    key = raw & _FLAG_BITS_MASK
    flags = _FLAG_CACHE.get(key)
    if flags is None:
        flags = Flags(
            writable=bool(wordlib.bit(raw, defs.BIT_WRITABLE)),
            user=bool(wordlib.bit(raw, defs.BIT_USER)),
            executable=not wordlib.bit(raw, defs.BIT_NX),
            write_through=bool(wordlib.bit(raw, defs.BIT_WRITE_THROUGH)),
            cache_disable=bool(wordlib.bit(raw, defs.BIT_CACHE_DISABLE)),
            global_=bool(wordlib.bit(raw, defs.BIT_GLOBAL)),
        )
        _FLAG_CACHE[key] = flags
    return flags


def decode(raw: int, level: int) -> EntryView:
    """Interpret a raw u64 entry the way the hardware walker does at
    `level`."""
    if not 0 <= level < defs.NUM_LEVELS:
        raise ValueError(f"bad level {level}")
    if not wordlib.bit(raw, defs.BIT_PRESENT):
        return EntryView.empty()
    maps_page = level == 3 or (
        level in (1, 2) and wordlib.bit(raw, defs.BIT_HUGE)
    )
    paddr = raw & defs.ADDR_MASK
    if maps_page:
        size = PageSize.for_level(level)
        paddr = wordlib.align_down(paddr, int(size))
        return EntryView(EntryKind.PAGE, paddr, _decode_flags(raw))
    return EntryView(EntryKind.TABLE, paddr)


def is_well_formed(raw: int, level: int) -> bool:
    """Structural well-formedness the tree invariant demands of every
    present entry our implementation writes."""
    view = decode(raw, level)
    if view.kind is EntryKind.EMPTY:
        return raw == 0  # we always clear entries fully
    if view.kind is EntryKind.TABLE:
        if level == 3:
            return False  # PT entries never point to another table
        return wordlib.is_aligned(view.paddr, defs.PAGE_SIZE)
    size = PageSize.for_level(level)
    if level == 0:
        return False  # PML4 entries never map pages
    return wordlib.is_aligned(view.paddr, int(size))
