"""The paper's primary contribution: the verified page table and the
client application contract.

Layout mirrors Figure 2 of the paper:

* :mod:`repro.core.spec.highlevel` — (2) the high-level specification: a
  mathematical map from virtual addresses to page-table entries, with
  map/unmap/resolve and memory read/write transitions.
* :mod:`repro.core.spec.hardware` — (1) the hardware specification: how the
  MMU interprets page-table bits in memory.
* :mod:`repro.core.pt` — (3) the executable page-table implementation.
* :mod:`repro.core.refine` — the refinement proofs connecting (3)+(1) to (2).
* :mod:`repro.core.contract` — the client application contract of Section 3
  (the `read` syscall spec and the `Sys` view).
"""
