"""The `contract` verification conditions — Section 3's three obligations.

* *spec refinement*: the executable `Sys` syscalls satisfy their
  specification predicates over enumerated pre-states and arguments;
* *marshalling*: syscall argument tuples round-trip through serialization,
  and corruption is detected rather than mis-parsed;
* *mapping*: user buffers reached through page-table translation behave as
  one contiguous buffer, including across page boundaries;
* *data-race freedom*: the ownership-token protocol rejects conflicting
  concurrent access to syscall buffers.
"""

from __future__ import annotations

from repro.core.contract.syscalls import (
    close_spec,
    open_spec,
    read_spec,
    seek_spec,
    write_spec,
)
from repro.core.contract.view import Sys, SysError
from repro.core.pt.defs import Flags, PageSize
from repro.core.pt.impl import PageTable, SimpleFrameAllocator
from repro.hw.mem import PhysicalMemory
from repro.hw.mmu import Mmu
from repro.nros.syscall.marshal import (
    MarshalError,
    marshal,
    marshal_call,
    unmarshal,
    unmarshal_call,
)
from repro.nros.syscall.usercopy import (
    UserCopyFault,
    copy_from_user,
    copy_to_user,
)
from repro.verif.linear import OwnershipError, OwnershipTable
from repro.verif.vc import VC

MB = 1024 * 1024


def _fresh_sys(contents=b"hello kernel world", offset=0) -> tuple[Sys, int]:
    sys = Sys()
    fd = sys.open()
    sys.set_contents(fd, contents)
    sys.seek(fd, offset)
    return sys, fd


# -- spec refinement VCs -----------------------------------------------------


def _read_case_vc(name, description, contents, offset, buffer_len) -> VC:
    def check():
        sys, fd = _fresh_sys(contents, offset)
        pre = sys.view()
        data = sys.read(fd, buffer_len)
        post = sys.view()
        if not read_spec(pre, post, fd, buffer_len, data, len(data)):
            return ("read_spec violated", contents, offset, buffer_len, data)
        expected_len = min(buffer_len, len(contents) - offset)
        if len(data) != expected_len:
            return ("wrong read length", len(data), expected_len)
        return None

    return VC(name=name, category="contract", check=check,
              description=description)


def contract_vcs() -> list[VC]:
    vcs: list[VC] = []

    vcs.append(_read_case_vc(
        "contract_read_normal", "read in the middle of a file",
        b"0123456789", offset=2, buffer_len=4,
    ))
    vcs.append(_read_case_vc(
        "contract_read_short_at_eof", "read truncates at end of file",
        b"0123456789", offset=7, buffer_len=100,
    ))
    vcs.append(_read_case_vc(
        "contract_read_zero_buffer", "zero-length buffer reads nothing",
        b"0123456789", offset=3, buffer_len=0,
    ))
    vcs.append(_read_case_vc(
        "contract_read_at_eof", "read at end of file returns empty",
        b"abc", offset=3, buffer_len=8,
    ))

    def read_requires_locked():
        sys, fd = _fresh_sys()
        sys._files[fd] = sys._files[fd].with_locked(False)
        try:
            sys.read(fd, 4)
            return "read succeeded on an unlocked fd"
        except SysError:
            return None

    vcs.append(VC("contract_read_requires_locked", "contract",
                  read_requires_locked,
                  description="the requires clause (fd locked) is enforced"))

    def sequential_reads_advance():
        sys, fd = _fresh_sys(b"abcdefgh")
        first = sys.read(fd, 3)
        second = sys.read(fd, 3)
        third = sys.read(fd, 10)
        if (first, second, third) != (b"abc", b"def", b"gh"):
            return ("sequential reads wrong", first, second, third)
        return None

    vcs.append(VC("contract_read_sequential", "contract",
                  sequential_reads_advance,
                  description="offset advances exactly by read_len each call"))

    def write_cases():
        cases = [
            (b"", 0, b"hello"),          # write into empty file
            (b"0123456789", 3, b"XY"),   # overwrite in the middle
            (b"abc", 3, b"def"),         # append at end
            (b"abc", 6, b"z"),           # sparse write past EOF
        ]
        for contents, offset, data in cases:
            sys, fd = _fresh_sys(contents, offset)
            pre = sys.view()
            written = sys.write(fd, data)
            if not write_spec(pre, sys.view(), fd, data, written):
                return ("write_spec violated", contents, offset, data)
        return None

    vcs.append(VC("contract_write_cases", "contract", write_cases,
                  description="write satisfies write_spec over its cases"))

    def write_then_read_roundtrip():
        sys, fd = _fresh_sys(b"")
        sys.write(fd, b"the quick brown fox")
        sys.seek(fd, 4)
        if sys.read(fd, 5) != b"quick":
            return "write/seek/read roundtrip failed"
        return None

    vcs.append(VC("contract_write_read_roundtrip", "contract",
                  write_then_read_roundtrip,
                  description="data written is data read back"))

    def open_close_spec_holds():
        sys = Sys()
        pre = sys.view()
        fd0 = sys.open()
        if not open_spec(pre, sys.view(), fd0):
            return "open_spec violated for first fd"
        pre = sys.view()
        fd1 = sys.open()
        if not open_spec(pre, sys.view(), fd1) or fd1 == fd0:
            return "open_spec violated for second fd"
        pre = sys.view()
        sys.close(fd0)
        if not close_spec(pre, sys.view(), fd0):
            return "close_spec violated"
        pre = sys.view()
        fd2 = sys.open()
        if fd2 != fd0:  # lowest free slot is reused
            return ("fd not reused", fd2, fd0)
        if not open_spec(pre, sys.view(), fd2):
            return "open_spec violated on reuse"
        return None

    vcs.append(VC("contract_open_close_spec", "contract",
                  open_close_spec_holds,
                  description="open/close satisfy their specs; fds are "
                              "allocated lowest-free"))

    def seek_spec_holds():
        sys, fd = _fresh_sys(b"0123456789")
        for offset in (0, 5, 10, 100):
            pre = sys.view()
            sys.seek(fd, offset)
            if not seek_spec(pre, sys.view(), fd, offset):
                return ("seek_spec violated", offset)
        try:
            sys.seek(fd, -1)
            return "negative seek accepted"
        except SysError:
            return None

    vcs.append(VC("contract_seek_spec", "contract", seek_spec_holds,
                  description="seek satisfies seek_spec and rejects "
                              "negative offsets"))

    def frame_condition_isolation():
        sys = Sys()
        fd_a = sys.open()
        fd_b = sys.open()
        sys.set_contents(fd_a, b"aaaa")
        sys.set_contents(fd_b, b"bbbb")
        before_b = sys.view().file(fd_b)
        sys.read(fd_a, 2)
        sys.write(fd_a, b"XX")
        sys.seek(fd_a, 0)
        if sys.view().file(fd_b) != before_b:
            return "operations on fd A disturbed fd B"
        return None

    vcs.append(VC("contract_fd_isolation", "contract",
                  frame_condition_isolation,
                  description="the frame condition: other fds unchanged"))

    def bad_fd_rejected():
        sys = Sys()
        for call in (lambda: sys.read(7, 1), lambda: sys.write(7, b"x"),
                     lambda: sys.seek(7, 0), lambda: sys.close(7)):
            try:
                call()
                return "operation on a bad fd succeeded"
            except SysError:
                continue
        return None

    vcs.append(VC("contract_bad_fd_rejected", "contract", bad_fd_rejected,
                  description="every syscall rejects unknown descriptors"))

    # -- marshalling obligation ------------------------------------------------

    def marshal_roundtrips():
        samples = [
            (3, (5, 0, 2**64 - 1)),
            (7, (b"payload bytes", "path/to/file", True, False)),
            (1, ((1, (2, (3,))), None, -42)),
            (9, ()),
        ]
        for number, args in samples:
            encoded = marshal_call(number, args)
            got_number, got_args = unmarshal_call(encoded)
            if (got_number, got_args) != (number, args):
                return ("roundtrip mismatch", number, args,
                        got_number, got_args)
        return None

    vcs.append(VC("contract_marshal_roundtrip", "contract",
                  marshal_roundtrips,
                  description="syscall requests round-trip through the wire "
                              "format"))

    def marshal_detects_truncation():
        encoded = marshal_call(3, (12345, b"data"))
        for cut in (1, len(encoded) // 2, len(encoded) - 1):
            try:
                unmarshal_call(encoded[:cut])
                return f"truncation at {cut} went undetected"
            except MarshalError:
                continue
        return None

    vcs.append(VC("contract_marshal_truncation_detected", "contract",
                  marshal_detects_truncation,
                  description="corrupted requests fail loudly, never "
                              "mis-parse"))

    def marshal_detects_trailing():
        encoded = marshal(42) + b"\x00"
        try:
            unmarshal(encoded)
            return "trailing bytes accepted"
        except MarshalError:
            return None

    vcs.append(VC("contract_marshal_trailing_detected", "contract",
                  marshal_detects_trailing,
                  description="trailing garbage is rejected"))

    # -- mapping obligation -------------------------------------------------------

    def _user_setup():
        memory = PhysicalMemory(8 * MB)
        allocator = SimpleFrameAllocator(memory, start=4 * MB)
        pt = PageTable(memory, allocator)
        mmu = Mmu(memory)
        # two contiguous user pages backed by *non*-contiguous frames
        pt.map_frame(0x10000, 0x20_0000, PageSize.SIZE_4K, Flags.user_rw())
        pt.map_frame(0x11000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        return memory, pt, mmu

    def usercopy_roundtrip():
        memory, pt, mmu = _user_setup()
        data = bytes(range(256)) * 4
        copy_to_user(memory, mmu, pt.root_paddr, 0x10100, data)
        back = copy_from_user(memory, mmu, pt.root_paddr, 0x10100, len(data))
        if back != data:
            return "usercopy roundtrip mismatch"
        return None

    vcs.append(VC("contract_usercopy_roundtrip", "contract",
                  usercopy_roundtrip,
                  description="kernel sees the user buffer at its translated "
                              "location"))

    def usercopy_page_crossing():
        memory, pt, mmu = _user_setup()
        data = b"Z" * 0x200
        copy_to_user(memory, mmu, pt.root_paddr, 0x10F80, data)  # crosses
        if memory.read(0x20_0F80, 0x80) != b"Z" * 0x80:
            return "first page got wrong bytes"
        if memory.read(0x10_0000, 0x180) != b"Z" * 0x180:
            return "second page got wrong bytes"
        back = copy_from_user(memory, mmu, pt.root_paddr, 0x10F80, 0x200)
        if back != data:
            return "page-crossing readback mismatch"
        return None

    vcs.append(VC("contract_usercopy_page_crossing", "contract",
                  usercopy_page_crossing,
                  description="buffers spanning non-contiguous frames are "
                              "reassembled correctly"))

    def usercopy_faults_propagate():
        memory, pt, mmu = _user_setup()
        try:
            copy_from_user(memory, mmu, pt.root_paddr, 0x13000, 8)
            return "read of unmapped user buffer succeeded"
        except UserCopyFault:
            pass
        pt.map_frame(0x14000, 0x30_0000, PageSize.SIZE_4K,
                     Flags(writable=False, user=True))
        try:
            copy_to_user(memory, mmu, pt.root_paddr, 0x14000, b"x")
            return "write to read-only user buffer succeeded"
        except UserCopyFault:
            return None

    vcs.append(VC("contract_usercopy_faults", "contract",
                  usercopy_faults_propagate,
                  description="unmapped / read-only user buffers fault "
                              "instead of corrupting"))

    # -- data-race-freedom obligation ---------------------------------------------

    def race_detected():
        table = OwnershipTable()
        table.claim_unique(0x10000, 0x1000, "syscall:read(fd=3)")
        try:
            table.claim_unique(0x10800, 0x100, "thread-2:write")
            return "conflicting unique claims both succeeded"
        except OwnershipError:
            return None

    vcs.append(VC("contract_race_detected", "contract", race_detected,
                  description="a second writer to an in-syscall buffer is "
                              "rejected"))

    def disjoint_buffers_race_free():
        table = OwnershipTable()
        t1 = table.claim_unique(0x10000, 0x1000, "syscall:read")
        t2 = table.claim_unique(0x11000, 0x1000, "syscall:write")
        shared = table.claim_shared(0x20000, 0x100, "t3")
        table.claim_shared(0x20000, 0x100, "t4")
        table.release(t1)
        table.release(t2)
        table.release(shared)
        return None

    vcs.append(VC("contract_disjoint_buffers_ok", "contract",
                  disjoint_buffers_race_free,
                  description="disjoint unique claims and overlapping "
                              "shared claims coexist"))

    def read_spec_is_deterministic():
        """read_spec pins down read_len and the returned bytes uniquely:
        for a given pre-state and buffer length, exactly one (data,
        read_len) pair satisfies the relation."""
        sys, fd = _fresh_sys(b"0123456789", offset=4)
        pre = sys.view()
        data = sys.read(fd, 3)
        post = sys.view()
        # the witnessed pair satisfies the spec...
        if not read_spec(pre, post, fd, 3, data, len(data)):
            return "witness rejected"
        # ...and perturbed results must not
        wrong = [
            (data, len(data) + 1),
            (data[:-1], len(data)),
            (b"XYZ", len(data)),
        ]
        for bad_data, bad_len in wrong:
            if read_spec(pre, post, fd, 3, bad_data, bad_len):
                return ("spec accepted a wrong result", bad_data, bad_len)
        return None

    vcs.append(VC("contract_read_spec_deterministic", "contract",
                  read_spec_is_deterministic,
                  description="read_spec admits exactly the implementation's "
                              "result"))

    def write_zero_bytes_is_noop():
        sys, fd = _fresh_sys(b"abcdef", offset=2)
        pre = sys.view()
        written = sys.write(fd, b"")
        post = sys.view()
        if written != 0:
            return f"wrote {written} bytes for an empty buffer"
        if not write_spec(pre, post, fd, b"", 0):
            return "write_spec violated for empty write"
        if post.file(fd).contents != pre.file(fd).contents:
            return "empty write changed contents"
        return None

    vcs.append(VC("contract_write_zero_bytes", "contract",
                  write_zero_bytes_is_noop,
                  description="zero-length writes change nothing but "
                              "satisfy the spec"))

    def tokens_quiescent_after_syscall():
        table = OwnershipTable()
        token = table.claim_unique(0x10000, 0x40, "syscall:read")
        table.release(token)
        table.assert_quiescent()
        leaked = table.claim_shared(0x0, 0x10, "leaker")
        del leaked
        try:
            table.assert_quiescent()
            return "leaked token went undetected"
        except OwnershipError:
            return None

    vcs.append(VC("contract_tokens_quiescent", "contract",
                  tokens_quiescent_after_syscall,
                  description="syscall exit asserts all buffer tokens "
                              "released"))

    return vcs
