"""The `Sys` type: the syscall interface as user space perceives it.

"From the perspective of user space code, this interface is represented as
part of a type Sys that encapsulates the syscall interface. ... The view()
functions abstract the concrete runtime values to mathematical
representations."

`Sys` here is the executable counterpart: a mutable in-memory file table
whose methods carry the specification predicates as runtime-checked
ensures clauses — `view()` produces the :class:`SysState` snapshots that
play the role of `old(sys).view()` and `sys.view()`.
"""

from __future__ import annotations

from repro.core.contract.state import FileState, SysState
from repro.core.contract.syscalls import (
    close_spec,
    open_spec,
    read_spec,
    seek_spec,
    write_spec,
)
from repro.immutable import FrozenMap
from repro.verif.contracts import ContractError, contracts_enabled


class SysError(Exception):
    """A syscall was invoked outside its precondition."""


class Sys:
    """The executable syscall interface with self-checking contracts."""

    def __init__(self) -> None:
        self._files: dict[int, FileState] = {}

    # -- the abstraction function -------------------------------------------------

    def view(self) -> SysState:
        """Abstract the runtime state to the mathematical SysState."""
        return SysState(files=FrozenMap(self._files))

    # -- syscalls -------------------------------------------------------------------

    def open(self) -> int:
        """Create a fresh (anonymous, locked) file; returns its fd."""
        old = self.view() if contracts_enabled() else None
        fd = 0
        while fd in self._files:
            fd += 1
        self._files[fd] = FileState(contents=b"", offset=0, locked=True)
        if old is not None and not open_spec(old, self.view(), fd):
            raise ContractError("open violates open_spec")
        return fd

    def close(self, fd: int) -> None:
        self._require_fd(fd)
        old = self.view() if contracts_enabled() else None
        del self._files[fd]
        if old is not None and not close_spec(old, self.view(), fd):
            raise ContractError("close violates close_spec")

    def read(self, fd: int, buffer_len: int) -> bytes:
        """The paper's read: requires the fd locked; returns the bytes
        read (length == min(buffer_len, remaining))."""
        self._require_fd(fd)
        f = self._files[fd]
        if not f.locked:
            raise SysError(f"fd {fd} not locked (requires clause)")
        old = self.view() if contracts_enabled() else None
        read_len = min(buffer_len, f.size - f.offset)
        data = f.contents[f.offset : f.offset + read_len]
        self._files[fd] = f.with_offset(f.offset + read_len)
        if old is not None and not read_spec(
            old, self.view(), fd, buffer_len, data, read_len
        ):
            raise ContractError("read violates read_spec")
        return data

    def write(self, fd: int, data: bytes) -> int:
        self._require_fd(fd)
        f = self._files[fd]
        if not f.locked:
            raise SysError(f"fd {fd} not locked (requires clause)")
        old = self.view() if contracts_enabled() else None
        gap = b"\x00" * max(0, f.offset - f.size)
        contents = (
            f.contents[: f.offset] + gap + data
            + f.contents[f.offset + len(data):]
        )
        self._files[fd] = FileState(
            contents=contents, offset=f.offset + len(data), locked=f.locked
        )
        if old is not None and not write_spec(
            old, self.view(), fd, data, len(data)
        ):
            raise ContractError("write violates write_spec")
        return len(data)

    def seek(self, fd: int, offset: int) -> None:
        self._require_fd(fd)
        if offset < 0:
            raise SysError("negative seek offset")
        old = self.view() if contracts_enabled() else None
        self._files[fd] = self._files[fd].with_offset(offset)
        if old is not None and not seek_spec(old, self.view(), fd, offset):
            raise ContractError("seek violates seek_spec")

    def set_contents(self, fd: int, contents: bytes) -> None:
        """Test helper: install file contents directly (like an exec'd
        environment would)."""
        self._require_fd(fd)
        self._files[fd] = self._files[fd].with_contents(contents)

    def _require_fd(self, fd: int) -> None:
        if fd not in self._files:
            raise SysError(f"bad file descriptor {fd}")
