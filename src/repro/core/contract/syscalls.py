"""Syscall specification predicates — Section 3 of the paper, verbatim.

The paper's running example:

    spec fn read_spec(pre: State, post: State, fd: usize,
                      buffer: Seq<u8>, read_len: usize)
    { pre.files[fd].locked
      && read_len == min(buffer.len(), pre.files[fd].size -
                          pre.files[fd].offset)
      && buffer[0 .. read_len] == pre.files[fd].contents[
            pre.files[fd].offset .. (pre.files[fd].offset + read_len)]
      && post.files[fd].offset == pre.files[fd].offset + read_len }

Each predicate below relates the pre state, the post state, the syscall
arguments, and the results — exactly the transition relation the kernel's
implementation must refine and user code may rely on.
"""

from __future__ import annotations

from repro.core.contract.state import SysState


def read_spec(
    pre: SysState,
    post: SysState,
    fd: int,
    buffer_len: int,
    data: bytes,
    read_len: int,
) -> bool:
    """The paper's read_spec.  `data` is the buffer contents after the
    call (the paper's `buffer[0..read_len]`)."""
    if not pre.has_fd(fd):
        return False
    f = pre.file(fd)
    if not f.locked:
        return False
    expected_len = min(buffer_len, f.size - f.offset)
    return (
        read_len == expected_len
        and data[:read_len] == f.contents[f.offset : f.offset + read_len]
        and post.has_fd(fd)
        and post.file(fd).offset == f.offset + read_len
        and post.file(fd).contents == f.contents
        and _others_unchanged(pre, post, fd)
    )


def write_spec(
    pre: SysState,
    post: SysState,
    fd: int,
    data: bytes,
    written: int,
) -> bool:
    """Writing at the current offset replaces/extends the contents and
    advances the offset."""
    if not pre.has_fd(fd):
        return False
    f = pre.file(fd)
    if not f.locked:
        return False
    expected = (
        f.contents[: f.offset]
        + b"\x00" * max(0, f.offset - f.size)  # sparse gap fills with zeros
        + data
        + f.contents[f.offset + len(data):]
    )
    return (
        written == len(data)
        and post.has_fd(fd)
        and post.file(fd).contents == expected
        and post.file(fd).offset == f.offset + written
        and _others_unchanged(pre, post, fd)
    )


def open_spec(pre: SysState, post: SysState, fd: int) -> bool:
    """A fresh descriptor appears at the lowest free slot, empty, at
    offset zero, locked by the caller."""
    return (
        fd == pre.lowest_free_fd()
        and not pre.has_fd(fd)
        and post.has_fd(fd)
        and post.file(fd).contents == b""
        and post.file(fd).offset == 0
        and post.file(fd).locked
        and _others_unchanged(pre, post, fd)
    )


def close_spec(pre: SysState, post: SysState, fd: int) -> bool:
    return (
        pre.has_fd(fd)
        and not post.has_fd(fd)
        and _others_unchanged(pre, post, fd)
    )


def seek_spec(pre: SysState, post: SysState, fd: int, offset: int) -> bool:
    if not pre.has_fd(fd) or offset < 0:
        return False
    f = pre.file(fd)
    return (
        post.has_fd(fd)
        and post.file(fd).offset == offset
        and post.file(fd).contents == f.contents
        and _others_unchanged(pre, post, fd)
    )


def _others_unchanged(pre: SysState, post: SysState, fd: int) -> bool:
    """Frame condition: no descriptor other than `fd` changes."""
    for other in set(pre.files.keys()) | set(post.files.keys()):
        if other == fd:
            continue
        if not pre.has_fd(other) or not post.has_fd(other):
            return False
        if pre.file(other) != post.file(other):
            return False
    return True
