"""Package."""
