"""The abstract system state of the client application contract.

Section 3: "The high-level spec for the system call is a state machine,
whose state contains the file descriptors' current state."  This is that
state: an immutable map from file descriptor to the descriptor's abstract
view (contents, offset, lock bit).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.immutable import EMPTY_MAP, FrozenMap


@dataclass(frozen=True)
class FileState:
    """The abstract state of one open file descriptor."""

    contents: bytes = b""
    offset: int = 0
    locked: bool = False

    @property
    def size(self) -> int:
        return len(self.contents)

    def with_offset(self, offset: int) -> "FileState":
        return replace(self, offset=offset)

    def with_contents(self, contents: bytes) -> "FileState":
        return replace(self, contents=contents)

    def with_locked(self, locked: bool) -> "FileState":
        return replace(self, locked=locked)


@dataclass(frozen=True)
class SysState:
    """The system state as perceived by one client process."""

    files: FrozenMap = EMPTY_MAP  # fd (int) -> FileState

    def file(self, fd: int) -> FileState:
        return self.files[fd]

    def has_fd(self, fd: int) -> bool:
        return fd in self.files

    def with_file(self, fd: int, state: FileState) -> "SysState":
        return SysState(files=self.files.set(fd, state))

    def without_fd(self, fd: int) -> "SysState":
        return SysState(files=self.files.remove(fd))

    def lowest_free_fd(self) -> int:
        fd = 0
        while fd in self.files:
            fd += 1
        return fd
