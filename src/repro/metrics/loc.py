"""Proof-to-code ratio measurement (Section 5's headline metric).

The paper reports its page-table prototype at 10:1 proof-to-code.  Here the
"proof" is every line whose purpose is specification or verification — the
spec state machines, the interpretation function, the lemma and VC modules,
the verification framework, and the test suite — while "code" is the
executable implementation those proofs are about.

Classification is by module path, declared once in the layer map
(:data:`repro.analysis.layers.LAYER_MAP`) that also drives the
layering/erasure checker — :data:`CLASSIFICATION` is derived from it, so
the measured ratio and the machine-checked spec/proof/exec boundary
cannot drift apart.  The benchmark prints the measured ratio next to the
ratios the paper reports for seL4, CertiKOS, SeKVM, and Verve.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from repro.analysis.layers import loc_classification

# (kind, path prefix relative to the repository root); first match wins.
# Derived from the shared layer map: spec/proof layers count as proof
# lines, exec as code, tooling as other (with per-entry overrides for
# e.g. the prover tooling and the runtime ownership checker).
CLASSIFICATION = loc_classification()


@dataclass
class LocReport:
    proof_lines: int = 0
    code_lines: int = 0
    other_lines: int = 0
    by_file: dict = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        if self.code_lines == 0:
            return 0.0
        return self.proof_lines / self.code_lines

    @property
    def total_lines(self) -> int:
        return self.proof_lines + self.code_lines + self.other_lines


def count_sloc(path: pathlib.Path) -> int:
    """Source lines of code: non-blank, non-comment-only lines."""
    count = 0
    in_docstring = False
    delimiter = None
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_docstring:
            count += 1
            if delimiter in line:
                in_docstring = False
            continue
        if line.startswith("#"):
            continue
        count += 1
        for quote in ('"""', "'''"):
            if line.startswith(quote) or line.startswith(("r" + quote, "b" + quote)):
                body = line.split(quote, 1)[1]
                if quote not in body:
                    in_docstring = True
                    delimiter = quote
                break
    return count


def classify(relative: str) -> str:
    for kind, prefix in CLASSIFICATION:
        if relative.startswith(prefix):
            return kind
    return "other"


def measure(root: pathlib.Path | str | None = None) -> LocReport:
    """Measure the repository rooted at `root` (default: this repo)."""
    if root is None:
        root = pathlib.Path(__file__).resolve().parents[3]
    root = pathlib.Path(root)
    report = LocReport()
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if any(part.startswith(".") for part in path.parts):
            continue
        kind = classify(relative)
        lines = count_sloc(path)
        report.by_file[relative] = (kind, lines)
        if kind == "proof":
            report.proof_lines += lines
        elif kind == "code":
            report.code_lines += lines
        else:
            report.other_lines += lines
    return report


def page_table_subset(root: pathlib.Path | str | None = None) -> LocReport:
    """The ratio restricted to the page-table artifact itself — the closest
    analogue of what the paper measured (its prototype, not its whole OS)."""
    full = measure(root)
    report = LocReport()
    proof_prefixes = ("src/repro/core/spec", "src/repro/core/refine",
                      "tests/test_refinement", "tests/test_pt_",
                      "tests/test_spec_")
    code_prefixes = ("src/repro/core/pt", "src/repro/hw/mmu.py",
                     "src/repro/hw/tlb.py", "src/repro/hw/mem.py")
    for relative, (kind, lines) in full.by_file.items():
        del kind
        if any(relative.startswith(p) for p in proof_prefixes):
            report.proof_lines += lines
            report.by_file[relative] = ("proof", lines)
        elif any(relative.startswith(p) for p in code_prefixes):
            report.code_lines += lines
            report.by_file[relative] = ("code", lines)
    return report
