"""Package."""
