"""Physical memory management: a buddy frame allocator.

The kernel-grade allocator behind address spaces and the filesystem's block
cache.  Supports power-of-two block sizes from one 4 KiB frame up to
`max_order` frames, with splitting on allocation and buddy coalescing on
free.  Satisfies the allocator protocol of :class:`repro.core.pt.impl.PageTable`
(`alloc_frame` / `free_frame`).

Concurrency discipline (rely-guarantee, see :mod:`repro.verif.rgspec`):
every mutation of the shared free lists, the allocated map, and the
statistics happens inside ``with self._lock:`` — the allocator's declared
atomic actions.  The guarantee each action makes to every other thread
("I only move whole, aligned blocks between the free lists and the
allocated map, under the lock") is what keeps the allocator invariants
stable under interference; ``python -m repro analyze`` checks the code
against that declaration statically (the ``rg.*`` rules), and
``python -m repro prove --layers rg`` discharges the stability VCs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import wordlib
from repro.core.pt import defs
from repro.hw.mem import PhysicalMemory


class OutOfMemory(Exception):
    """No block of the requested order is available.

    Also the typed error surfaced for an injected allocation failure
    (:mod:`repro.faults` site ``"pmem.alloc"``) — callers already treat it
    as recoverable (the kernel maps it to ENOMEM), which is exactly the
    degradation path a fault campaign audits."""


class AllocLock:
    """The allocator's mutex, as a context manager.

    The cooperative kernel is single-threaded, so the lock never blocks
    here — but the bracket is load-bearing: it is the *guard* the
    rely-guarantee specs in :mod:`repro.verif.rgspec` name, the region
    the static interference checker (:mod:`repro.analysis.rg`) requires
    every shared mutation to sit inside, and an acquisition site in the
    static lock-order graph (:mod:`repro.analysis.lockorder`).  Re-entry
    is a bug (the allocator's actions never nest), so it is detected
    rather than allowed.
    """

    def __init__(self, name: str = "pmem.alloc") -> None:
        self.name = name
        self.held = False
        self.acquisitions = 0

    def __enter__(self) -> "AllocLock":
        if self.held:
            raise RuntimeError(f"{self.name}: re-entrant acquisition")
        self.held = True
        self.acquisitions += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.held:
            raise RuntimeError(f"{self.name}: release without holder")
        self.held = False


@dataclass
class PmemStats:
    total_frames: int = 0
    free_frames: int = 0
    allocations: int = 0
    frees: int = 0
    splits: int = 0
    merges: int = 0


class BuddyAllocator:
    """A binary-buddy allocator over a frame range.

    Orders are frame counts: order k blocks hold 2**k frames.
    """

    MAX_ORDER = 10  # 4 MiB blocks

    def __init__(self, memory: PhysicalMemory, start: int = 0,
                 end: int | None = None, fault_plan=None) -> None:
        if end is None:
            end = memory.size
        if not wordlib.is_aligned(start, defs.PAGE_SIZE):
            raise ValueError("start must be page-aligned")
        if not wordlib.is_aligned(end, defs.PAGE_SIZE):
            raise ValueError("end must be page-aligned")
        if not start <= end <= memory.size:
            raise ValueError("allocator range outside physical memory")
        self.memory = memory
        self.start = start
        self.end = end
        self.fault_plan = fault_plan
        self.injected_failures = 0
        self._lock = AllocLock()
        self._free: list[set[int]] = [set() for _ in range(self.MAX_ORDER + 1)]
        # allocated block -> order (needed to free without a size argument)
        self._allocated: dict[int, int] = {}
        self.stats = PmemStats(total_frames=(end - start) // defs.PAGE_SIZE)
        self.stats.free_frames = self.stats.total_frames
        self._seed_free_lists()

    def _seed_free_lists(self) -> None:
        current = self.start
        while current < self.end:
            order = self.MAX_ORDER
            while order > 0 and (
                current % (defs.PAGE_SIZE << order)
                or current + (defs.PAGE_SIZE << order) > self.end
            ):
                order -= 1
            self._free[order].add(current)
            current += defs.PAGE_SIZE << order

    # -- core interface --------------------------------------------------------

    def alloc_block(self, order: int) -> int:
        """Allocate a block of 2**order frames; returns its base paddr."""
        if not 0 <= order <= self.MAX_ORDER:
            raise ValueError(f"order {order} out of range")
        with self._lock:
            if self.fault_plan is not None:
                decision = self.fault_plan.draw("pmem.alloc")
                if decision is not None and decision.kind == "alloc-fail":
                    self.injected_failures += 1
                    raise OutOfMemory(
                        f"injected allocation failure (order {order})")
            found = None
            for k in range(order, self.MAX_ORDER + 1):
                if self._free[k]:
                    found = k
                    break
            if found is None:
                raise OutOfMemory(f"no free block of order {order}")
            block = min(self._free[found])
            self._free[found].discard(block)
            while found > order:
                found -= 1
                buddy = block + (defs.PAGE_SIZE << found)
                self._free[found].add(buddy)
                self.stats.splits += 1
            self._allocated[block] = order
            self.stats.allocations += 1
            self.stats.free_frames -= 1 << order
            return block

    def free_block(self, paddr: int) -> None:
        """Free a previously allocated block, coalescing with its buddy."""
        with self._lock:
            order = self._allocated.pop(paddr, None)
            if order is None:
                raise ValueError(f"free of unallocated block {paddr:#x}")
            self.stats.frees += 1
            self.stats.free_frames += 1 << order
            block = paddr
            while order < self.MAX_ORDER:
                size = defs.PAGE_SIZE << order
                buddy = block ^ size
                if buddy < self.start or buddy >= self.end:
                    break
                if buddy not in self._free[order]:
                    break
                self._free[order].discard(buddy)
                block = min(block, buddy)
                order += 1
                self.stats.merges += 1
            self._free[order].add(block)

    # -- PageTable allocator protocol ----------------------------------------------

    def alloc_frame(self) -> int:
        return self.alloc_block(0)

    def free_frame(self, paddr: int) -> None:
        self.free_block(paddr)

    # -- introspection -----------------------------------------------------------------

    def free_blocks(self) -> dict[int, int]:
        """order -> count of free blocks (for tests and stats)."""
        with self._lock:
            return {k: len(blocks)
                    for k, blocks in enumerate(self._free) if blocks}

    def check_integrity(self) -> str | None:
        """Structural invariant check; returns a description or None.

        * free blocks are disjoint and inside [start, end)
        * free blocks are aligned to their order
        * free + allocated frames account for the whole range
        """
        with self._lock:
            covered: set[int] = set()
            for order, blocks in enumerate(self._free):
                size = defs.PAGE_SIZE << order
                for block in blocks:
                    if block % size:
                        return (f"free block {block:#x} misaligned for "
                                f"order {order}")
                    if block < self.start or block + size > self.end:
                        return f"free block {block:#x} out of range"
                    frames = set(range(block, block + size, defs.PAGE_SIZE))
                    if covered & frames:
                        return f"free block {block:#x} overlaps another"
                    covered |= frames
            for block, order in self._allocated.items():
                size = defs.PAGE_SIZE << order
                frames = set(range(block, block + size, defs.PAGE_SIZE))
                if covered & frames:
                    return (f"allocated block {block:#x} overlaps a free "
                            f"block")
                covered |= frames
            expected = set(range(self.start, self.end, defs.PAGE_SIZE))
            if covered != expected:
                return "free + allocated frames do not cover the range"
            return None
