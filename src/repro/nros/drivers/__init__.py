"""Package."""
