"""The console driver: kernel log over the serial port.

Adds what the raw serial device lacks: severity levels, a bounded in-memory
ring of recent messages (`dmesg`), and per-level counters.
"""

from __future__ import annotations

from collections import deque

from repro.hw.devices.serial import SerialPort

LEVELS = ("debug", "info", "warn", "error")


class Console:
    """Levelled kernel logging."""

    def __init__(self, serial: SerialPort, ring_size: int = 256,
                 min_level: str = "debug") -> None:
        if min_level not in LEVELS:
            raise ValueError(f"unknown level {min_level!r}")
        self.serial = serial
        self.ring: deque[tuple[str, str]] = deque(maxlen=ring_size)
        self.min_level = min_level
        self.counts = {level: 0 for level in LEVELS}

    def log(self, level: str, message: str) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}")
        self.counts[level] += 1
        self.ring.append((level, message))
        if LEVELS.index(level) >= LEVELS.index(self.min_level):
            self.serial.write(f"<{level}> {message}\n")

    def debug(self, message: str) -> None:
        self.log("debug", message)

    def info(self, message: str) -> None:
        self.log("info", message)

    def warn(self, message: str) -> None:
        self.log("warn", message)

    def error(self, message: str) -> None:
        self.log("error", message)

    def dmesg(self) -> list[str]:
        return [f"<{level}> {message}" for level, message in self.ring]
