"""The network-device driver: bottom half of the stack.

Owns the NIC-to-stack pump that the kernel runs at scheduling boundaries
(the polled equivalent of the receive interrupt's bottom half), and tracks
driver-level statistics."""

from __future__ import annotations

from repro.hw.devices.nic import Nic
from repro.nros.net.stack import NetStack


class NetDriver:
    """Polling receive driver for one NIC + stack pair."""

    def __init__(self, nic: Nic, stack: NetStack, irq_line=None) -> None:
        self.nic = nic
        self.stack = stack
        self.irq_line = irq_line
        if irq_line is not None:
            nic.irq_line = irq_line
        self.polls = 0
        self.datagrams_dispatched = 0

    def poll(self) -> int:
        """Drain the receive ring through the stack; returns datagrams
        dispatched to sockets/connections."""
        self.polls += 1
        handled = self.stack.poll()
        self.datagrams_dispatched += handled
        return handled

    def tick(self, now: int) -> None:
        """Drive the stack's timers (RDP retransmission)."""
        self.stack.tick(now)
