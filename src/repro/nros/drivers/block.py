"""The block-device driver.

Sits between the filesystem and the raw disk: satisfies the same interface
as :class:`repro.nros.fs.blockdev.BlockDevice` (read/write/zero/num_blocks)
while adding what a real driver adds — a bounded request queue with
completion accounting and an interrupt line raised per completed request.
The kernel mounts its filesystem over this driver.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.hw.devices.disk import Disk
from repro.nros.fs.blockdev import BLOCK_SIZE


@dataclass
class BlockRequest:
    kind: str          # "read" | "write"
    sector: int
    data: bytes | None = None
    done: bool = False
    result: bytes | None = None


class BlockDriver:
    """A synchronous-completion driver with real request bookkeeping."""

    QUEUE_DEPTH = 32

    def __init__(self, disk: Disk, irq_line=None) -> None:
        self.disk = disk
        self.irq_line = irq_line
        self.completed: deque[BlockRequest] = deque(maxlen=64)
        self.requests_submitted = 0
        self.requests_completed = 0

    @property
    def num_blocks(self) -> int:
        return self.disk.num_sectors

    def submit(self, request: BlockRequest) -> BlockRequest:
        """Submit and complete one request (the simulated device has no
        seek latency, so completion is immediate; the queue discipline and
        IRQ signalling still run)."""
        self.requests_submitted += 1
        if request.kind == "read":
            request.result = self.disk.read_sector(request.sector)
        elif request.kind == "write":
            if request.data is None:
                raise ValueError("write request without data")
            data = request.data
            if len(data) < BLOCK_SIZE:
                data = data + bytes(BLOCK_SIZE - len(data))
            self.disk.write_sector(request.sector, data)
        else:
            raise ValueError(f"unknown request kind {request.kind!r}")
        request.done = True
        self.requests_completed += 1
        self.completed.append(request)
        if self.irq_line is not None:
            self.irq_line.raise_irq()
        return request

    # -- BlockDevice interface (what the filesystem mounts on) -----------------

    def read(self, block: int) -> bytes:
        return self.submit(BlockRequest("read", block)).result

    def write(self, block: int, data: bytes) -> None:
        self.submit(BlockRequest("write", block, data=data))

    def zero(self, block: int) -> None:
        self.write(block, bytes(BLOCK_SIZE))
