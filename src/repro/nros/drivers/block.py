"""The block-device driver.

Sits between the filesystem and the raw disk: satisfies the same interface
as :class:`repro.nros.fs.blockdev.BlockDevice` (read/write/zero/num_blocks)
while adding what a real driver adds — a bounded request queue with
completion accounting, an interrupt line raised per completed request, and
retry of transient media errors.

Robustness contract (exercised by :mod:`repro.faults`):

* the request queue is *bounded*: a submit against a full queue raises the
  typed :class:`QueueFull` — the caller observes backpressure, the driver
  never asserts and never silently drops a request already queued;
* a transient :class:`~repro.hw.devices.disk.DiskIOError` (including a torn
  write, which a whole-sector rewrite heals) is retried up to
  ``MAX_IO_RETRIES`` times before being surfaced to the filesystem;
* a :class:`~repro.hw.devices.disk.DiskCrash` is never retried — power is
  gone; queued requests stay queued for post-mortem inspection.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro import obs
from repro.hw.devices.disk import Disk, DiskCrash, DiskIOError
from repro.nros.fs.blockdev import BLOCK_SIZE

# Process-wide instruments for the driver hot path.  Per-driver totals
# stay on the instance (tests and campaign notes read those); these
# aggregate across all drivers in the process, which is what a traced
# run or a `trace summary` wants to see.
_RETRIES = obs.counter("block.io_retries")
_FAILURES = obs.counter("block.io_failures")
_REJECTIONS = obs.counter("block.queue_full")
_QUEUE_DEPTH = obs.gauge("block.queue_depth")


class QueueFull(Exception):
    """The driver's bounded request queue is full; retry after `service`."""


@dataclass
class BlockRequest:
    kind: str          # "read" | "write"
    sector: int
    data: bytes | None = None
    done: bool = False
    result: bytes | None = None
    error: Exception | None = None
    retries: int = 0


class BlockDriver:
    """A bounded-queue driver with synchronous completion and retry."""

    QUEUE_DEPTH = 32
    MAX_IO_RETRIES = 3

    def __init__(self, disk: Disk, irq_line=None, fault_plan=None) -> None:
        self.disk = disk
        self.irq_line = irq_line
        self.fault_plan = fault_plan
        self.pending: deque[BlockRequest] = deque()
        self.completed: deque[BlockRequest] = deque(maxlen=64)
        self.requests_submitted = 0
        self.requests_completed = 0
        self.queue_full_rejections = 0
        self.io_retries = 0
        self.io_failures = 0
        self._stalled = 0  # writes held in queue (injected device busy)

    @property
    def num_blocks(self) -> int:
        return self.disk.num_sectors

    def submit(self, request: BlockRequest) -> BlockRequest:
        """Queue one request and service the queue.

        The simulated device has no seek latency, so in the absence of an
        injected stall the request completes before `submit` returns; the
        queue discipline, bounded depth, and IRQ signalling still run.  A
        full queue raises :class:`QueueFull` *without* accepting the
        request — already-queued requests are never displaced."""
        decision = self.fault_plan.draw("block.submit") \
            if self.fault_plan is not None else None
        if decision is not None and decision.kind == "queue-full":
            # device reports itself busy regardless of actual depth
            self.queue_full_rejections += 1
            _REJECTIONS.inc()
            raise QueueFull("device busy (injected)")
        if len(self.pending) >= self.QUEUE_DEPTH:
            self.queue_full_rejections += 1
            _REJECTIONS.inc()
            raise QueueFull(
                f"request queue at depth {self.QUEUE_DEPTH}; "
                f"service() and retry"
            )
        self.requests_submitted += 1
        self.pending.append(request)
        _QUEUE_DEPTH.set(len(self.pending))
        if decision is not None and decision.kind == "stall" \
                and request.kind == "write":
            # hold completion: the queue visibly fills under write bursts
            self._stalled += 1
            return request
        self.service()
        return request

    def service(self) -> int:
        """Drain the pending queue in order; returns requests completed."""
        done = 0
        self._stalled = 0
        while self.pending:
            request = self.pending[0]
            try:
                self._execute(request)
            except DiskCrash:
                # power loss: leave the queue as the crash found it
                raise
            self.pending.popleft()
            _QUEUE_DEPTH.set(len(self.pending))
            done += 1
            self.requests_completed += 1
            self.completed.append(request)
            if self.irq_line is not None:
                self.irq_line.raise_irq()
            if request.error is not None:
                raise request.error
        return done

    def _execute(self, request: BlockRequest) -> None:
        """One request against the media, retrying transient errors."""
        for attempt in range(1 + self.MAX_IO_RETRIES):
            try:
                if request.kind == "read":
                    request.result = self.disk.read_sector(request.sector)
                elif request.kind == "write":
                    if request.data is None:
                        raise ValueError("write request without data")
                    data = request.data
                    if len(data) < BLOCK_SIZE:
                        data = data + bytes(BLOCK_SIZE - len(data))
                    self.disk.write_sector(request.sector, data)
                else:
                    raise ValueError(
                        f"unknown request kind {request.kind!r}")
            except DiskIOError as exc:
                request.retries = attempt + 1
                if attempt < self.MAX_IO_RETRIES:
                    self.io_retries += 1
                    _RETRIES.inc()
                    continue
                self.io_failures += 1
                _FAILURES.inc()
                request.error = exc
                request.done = True
                return
            request.error = None
            request.done = True
            return

    # -- BlockDevice interface (what the filesystem mounts on) -----------------

    def read(self, block: int) -> bytes:
        request = self.submit(BlockRequest("read", block))
        if not request.done:
            self.service()
        return request.result

    def write(self, block: int, data: bytes) -> None:
        self.submit(BlockRequest("write", block, data=data))

    def zero(self, block: int) -> None:
        self.write(block, bytes(BLOCK_SIZE))
