"""The kernel: processes, scheduling, syscalls, and device wiring.

This is the NrOS-shaped substrate the paper's component list (Section 1)
demands: scheduler, memory management, filesystem, drivers, process
management, threads and synchronization, a network stack, and the syscall
boundary with its marshalling / mapping / data-race-freedom obligations.

User programs are generators yielding :class:`~repro.nros.syscall.abi.Syscall`
requests.  Every request round-trips through the binary wire format of
:mod:`repro.nros.syscall.marshal` before dispatch — the kernel genuinely
cannot see anything the marshaller did not carry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.pt.defs import Flags, PageSize, PAGE_SIZE
from repro.hw.devices.disk import Disk
from repro.hw.devices.interrupts import InterruptController
from repro.hw.devices.nic import Nic
from repro.hw.devices.serial import SerialPort
from repro.hw.devices.timer import Timer
from repro.hw.mem import PhysicalMemory
from repro.hw.mmu import Mmu, TranslationFault
from repro.nros.drivers.block import BlockDriver
from repro.nros.drivers.console import Console
from repro.nros.drivers.netdev import NetDriver
from repro.nros.fs import fd as fdmod
from repro.nros.fs import fs as fsmod
from repro.nros.fs.alloc import NoSpace
from repro.nros.net.stack import NetError, NetStack
from repro.nros.net.rdp import STATE_CLOSED, STATE_ESTABLISHED
from repro.nros.pmem import BuddyAllocator, OutOfMemory
from repro.nros.proc.pipe import PipeClosed, PipeTable
from repro.nros.proc.process import (
    BlockReason,
    Process,
    ProcessState,
    Thread,
    ThreadState,
)
from repro.nros.sched.scheduler import Scheduler
from repro.nros.syscall import abi
from repro.nros.syscall import ring as ringmod
from repro.nros.syscall.abi import Syscall, SyscallError
from repro.nros.syscall.marshal import marshal, marshal_call, unmarshal, unmarshal_call
from repro.nros.syscall.usercopy import UserCopyFault, copy_from_user, copy_to_user
from repro.nros.vspace import VSpace, VSpaceError
from repro.verif.linear import OwnershipError, OwnershipTable

MB = 1024 * 1024


class KernelPanic(Exception):
    """Unrecoverable kernel error (including detected deadlock)."""


class _Block(Exception):
    """Internal: a handler parks the calling thread."""

    def __init__(self, reason: BlockReason) -> None:
        super().__init__(reason.kind)
        self.reason = reason


class _SyscallFailure(Exception):
    """Internal: a handler fails with an errno."""

    def __init__(self, errno: int, message: str = "") -> None:
        super().__init__(message)
        self.errno = errno
        self.message = message


@dataclass
class KernelStats:
    syscalls: int = 0
    marshalled_bytes: int = 0
    thread_switches: int = 0
    page_faults: int = 0
    ring_batches: int = 0   # ring_enter dispatch passes
    ring_sqes: int = 0      # SQEs completed through rings


class Kernel:
    """One machine: memory, devices, kernel services, user processes."""

    def __init__(
        self,
        num_cores: int = 2,
        memory_bytes: int = 64 * MB,
        disk_sectors: int = 1024,
        ip: int | None = None,
        mac: bytes | None = None,
        hostname: str = "nros",
        disk_image: bytes | None = None,
    ) -> None:
        self.hostname = hostname
        self.num_cores = num_cores
        self.memory = PhysicalMemory(memory_bytes)
        self.frames = BuddyAllocator(self.memory)
        self.mmu = Mmu(self.memory)
        self.disk = Disk(disk_sectors)
        self.scheduler = Scheduler(num_cores)
        self.timer = Timer()
        self.serial = SerialPort()
        self.irq = InterruptController()
        self.timer.irq_line = self.irq.line(0)
        self.block_driver = BlockDriver(self.disk, irq_line=self.irq.line(2))
        if disk_image is not None:
            # a machine restarting after power loss: restore the platter
            # image and *mount* the surviving filesystem instead of mkfs
            self.disk.restore(disk_image)
            self.fs = fsmod.FileSystem(self.block_driver)
        else:
            self.fs = fsmod.FileSystem.mkfs(self.block_driver)
        self.console = Console(self.serial)
        self.nic: Nic | None = None
        self.net: NetStack | None = None
        self.net_driver: NetDriver | None = None
        if ip is not None:
            self.nic = Nic(mac or self._default_mac(ip))
            self.net = NetStack(ip, self.nic)
            self.net_driver = NetDriver(self.nic, self.net,
                                        irq_line=self.irq.line(1))
        self.processes: dict[int, Process] = {}
        self.programs: dict[int, object] = {}
        self._registry: dict[str, object] = {}
        self._next_pid = 1
        self.pipes = PipeTable()
        self._futex_waiters: dict[int, list[Thread]] = {}
        self._threads_by_tid: dict[int, Thread] = {}
        self.stats = KernelStats()
        self._num_nodes = max(1, (num_cores + 13) // 14)
        self._ownership: dict[int, OwnershipTable] = {}  # pid -> table
        self._handlers = self._build_handlers()
        #: Fault-injection plan for ring sites (torn SQE, full CQ,
        #: crash mid-batch); campaigns assign one, normal runs leave None.
        self.fault_plan = None
        self._obs_sq_pending = obs.gauge("ring.sq_pending")
        self._obs_cq_ready = obs.gauge("ring.cq_ready")
        self._obs_batch_size = obs.histogram("ring.batch_sqes")

    @staticmethod
    def _default_mac(ip: int) -> bytes:
        return bytes([0x02, 0, (ip >> 24) & 0xFF, (ip >> 16) & 0xFF,
                      (ip >> 8) & 0xFF, ip & 0xFF])

    # -- program registry and process lifecycle ---------------------------------

    def register_program(self, name: str, factory) -> None:
        """Register a user program: `factory(*argv)` returns a generator."""
        self._registry[name] = factory

    def spawn(self, name: str, argv: tuple = (), parent: int | None = None) -> int:
        if name not in self._registry:
            raise KeyError(f"no program registered as {name!r}")
        pid = self._next_pid
        self._next_pid += 1
        vspace = VSpace(self.memory, self.frames, num_nodes=self._num_nodes)
        for core in range(self.num_cores):
            vspace.attach_core(core, min(core // 14, self._num_nodes - 1))
        process = Process(
            pid=pid,
            name=name,
            vspace=vspace,
            fdtable=fdmod.FdTable(self.fs),
            parent=parent,
        )
        self.processes[pid] = process
        self._ownership[pid] = OwnershipTable()
        if parent is not None and parent in self.processes:
            self.processes[parent].children.add(pid)
        gen = self._registry[name](*argv)
        thread = process.add_thread(gen, name=f"{name}:{pid}")
        self._threads_by_tid[thread.tid] = thread
        self.scheduler.ready(thread)
        return pid

    # -- main loop ------------------------------------------------------------------

    def step(self, max_threads: int = 1) -> bool:
        """Resume up to `max_threads` runnable threads; True if any ran."""
        ran = False
        for _ in range(max_threads):
            self._pump_network()
            thread = self.scheduler.next_thread()
            if thread is None:
                break
            self._resume(thread)
            ran = True
        return ran

    def run(self, max_ticks: int = 100_000) -> None:
        """Run until every process has exited (or panic on deadlock)."""
        idle_ticks = 0
        while any(p.state is ProcessState.ALIVE for p in self.processes.values()):
            if self.step(max_threads=16):
                idle_ticks = 0
                continue
            # nothing runnable: advance time so sleeps and timers fire
            self.advance_time()
            idle_ticks += 1
            if idle_ticks > max_ticks:
                blocked = [
                    f"{t.name} {t.block_reason}"
                    for p in self.processes.values()
                    for t in p.threads.values()
                    if t.state is ThreadState.BLOCKED
                ]
                raise KernelPanic(
                    "deadlock: no runnable threads; blocked: "
                    + "; ".join(blocked)
                )

    def advance_time(self) -> None:
        """One timer tick: wake sleepers, drive network timers."""
        self.timer.tick()
        if self.net_driver is not None:
            self.net_driver.tick(self.timer.ticks)
        self._pump_network()
        self._wake_sleepers()
        self._wake_net_waiters()

    def _pump_network(self) -> None:
        if self.net_driver is not None:
            if self.net_driver.poll():
                self._wake_net_waiters()
        for irq in self.irq.pending():
            self.irq.acknowledge(irq)

    def _wake_sleepers(self) -> None:
        now = self.timer.ticks
        for thread in list(self._blocked_threads("sleep")):
            if thread.block_reason.key <= now:
                self.scheduler.wake(thread)

    def _wake_net_waiters(self) -> None:
        for thread in list(self._blocked_threads("net")):
            poll_fn = thread.block_reason.key
            result = poll_fn()
            if result is not None:
                status, value = result
                if status == "err":
                    errno, message = value
                    self.scheduler.wake(
                        thread, ("error", SyscallError(errno, message))
                    )
                else:
                    self.scheduler.wake(thread, ("value", value))

    def _blocked_threads(self, kind: str):
        for process in self.processes.values():
            for thread in process.threads.values():
                if (thread.state is ThreadState.BLOCKED
                        and thread.block_reason is not None
                        and thread.block_reason.kind == kind):
                    yield thread

    # -- thread resumption and the syscall boundary ------------------------------------

    def _resume(self, thread: Thread) -> None:
        self.stats.thread_switches += 1
        kind, payload = thread.pending
        thread.pending = ("value", None)
        try:
            if kind == "error":
                request = thread.gen.throw(payload)
            else:
                request = thread.gen.send(payload)
        except StopIteration as stop:
            self._thread_exited(thread, stop.value)
            return
        except SyscallError:
            # user code let a syscall error escape: kill the process
            self._process_exit(thread.process, exit_code=70)
            return
        except Exception as exc:  # user bug: kill the process, log it
            self.serial.write(
                f"[kernel] {thread.name} crashed: "
                f"{type(exc).__name__}: {exc}\n"
            )
            self._process_exit(thread.process, exit_code=70)
            return

        if not isinstance(request, Syscall):
            thread.pending = (
                "error",
                SyscallError(abi.EINVAL, f"yielded non-syscall {request!r}"),
            )
            self.scheduler.ready(thread)
            return

        result = self._syscall(thread, request)
        if result is None:
            return  # blocked or exited; do not requeue
        thread.pending = result
        if thread.state is not ThreadState.EXITED:
            self.scheduler.ready(thread)

    def _syscall(self, thread: Thread, request: Syscall):
        """Marshal, dispatch, and marshal back.  Returns the pending tuple
        for the thread, or None when the thread blocked / exited."""
        self.stats.syscalls += 1
        wire = marshal_call(abi.SYSCALLS[request.name], request.args)
        self.stats.marshalled_bytes += len(wire)
        number, args = unmarshal_call(wire)
        name = abi.NUMBER_TO_NAME.get(number)
        handler = self._handlers.get(name)
        if handler is None:
            return ("error", SyscallError(abi.ENOSYS, name or str(number)))
        try:
            value = handler(thread, *args)
        except _Block as block:
            self.scheduler.block(thread, block.reason)
            if block.reason.kind == "futex":
                self._futex_waiters.setdefault(block.reason.key, []).append(thread)
            return None
        except _SyscallFailure as failure:
            return ("error", SyscallError(failure.errno, failure.message))
        except _ProcessExited:
            return None
        # response crosses the boundary too
        response = marshal(value)
        self.stats.marshalled_bytes += len(response)
        return ("value", unmarshal(response))

    def _thread_exited(self, thread: Thread, value) -> None:
        thread.state = ThreadState.EXITED
        thread.exit_value = value
        self.scheduler.forget(thread)
        # wake joiners
        for other in list(self._blocked_threads("join")):
            if other.block_reason.key == thread.tid:
                self.scheduler.wake(other, ("value", value))
        process = thread.process
        if not process.alive_threads and process.state is ProcessState.ALIVE:
            self._process_exit(process, exit_code=0)

    def _process_exit(self, process: Process, exit_code: int) -> None:
        if process.state is not ProcessState.ALIVE:
            return
        process.state = ProcessState.ZOMBIE
        process.exit_code = exit_code
        for thread in process.threads.values():
            if thread.state is not ThreadState.EXITED:
                thread.state = ThreadState.EXITED
                self.scheduler.forget(thread)
        process.fdtable.close_all()
        process.vspace.sync()
        # wake a parent blocked in wait()
        if process.parent is not None and process.parent in self.processes:
            for thread in self.processes[process.parent].threads.values():
                if (thread.state is ThreadState.BLOCKED
                        and thread.block_reason is not None
                        and thread.block_reason.kind == "wait"
                        and thread.block_reason.key in (process.pid, -1)):
                    process.state = ProcessState.REAPED
                    self.scheduler.wake(
                        thread, ("value", (process.pid, exit_code))
                    )
                    break

    # -- handler helpers ------------------------------------------------------------------

    def _process_of(self, thread: Thread) -> Process:
        return thread.process

    def _core_of(self, thread: Thread) -> int:
        return self.scheduler.core_of(thread)

    def _translate(self, thread: Thread, vaddr: int, write: bool) -> int:
        try:
            return thread.process.vspace.translate(
                self._core_of(thread), vaddr, write=write
            )
        except TranslationFault as fault:
            self.stats.page_faults += 1
            raise _SyscallFailure(abi.EFAULT, str(fault)) from fault

    # -- syscall handlers ----------------------------------------------------------------------

    def _build_handlers(self) -> dict:
        return {
            "vm_map": self._sys_vm_map,
            "vm_unmap": self._sys_vm_unmap,
            "vm_map_batch": self._sys_vm_map_batch,
            "vm_unmap_batch": self._sys_vm_unmap_batch,
            "ring_setup": self._sys_ring_setup,
            "ring_enter": self._sys_ring_enter,
            "ring_reap": self._sys_ring_reap,
            "vm_resolve": self._sys_vm_resolve,
            "mmap_file": self._sys_mmap_file,
            "msync": self._sys_msync,
            "peek": self._sys_peek,
            "poke": self._sys_poke,
            "cas": self._sys_cas,
            "open": self._sys_open,
            "close": self._sys_close,
            "read": self._sys_read,
            "write": self._sys_write,
            "seek": self._sys_seek,
            "stat": self._sys_stat,
            "mkdir": self._sys_mkdir,
            "readdir": self._sys_readdir,
            "unlink": self._sys_unlink,
            "rename": self._sys_rename,
            "read_into": self._sys_read_into,
            "write_from": self._sys_write_from,
            "link": self._sys_link,
            "truncate": self._sys_truncate,
            "signal": self._sys_signal,
            "sigwait": self._sys_sigwait,
            "sigpending": self._sys_sigpending,
            "setpriority": self._sys_setpriority,
            "sched_setscheduler": self._sys_sched_setscheduler,
            "sched_getscheduler": self._sys_sched_getscheduler,
            "spawn": self._sys_spawn,
            "wait": self._sys_wait,
            "exit": self._sys_exit,
            "getpid": self._sys_getpid,
            "kill": self._sys_kill,
            "sched_yield": self._sys_yield,
            "thread_spawn": self._sys_thread_spawn,
            "thread_join": self._sys_thread_join,
            "sleep": self._sys_sleep,
            "futex_wait": self._sys_futex_wait,
            "futex_wake": self._sys_futex_wake,
            "socket": self._sys_socket,
            "bind": self._sys_bind,
            "sendto": self._sys_sendto,
            "recvfrom": self._sys_recvfrom,
            "rdp_listen": self._sys_rdp_listen,
            "rdp_connect": self._sys_rdp_connect,
            "rdp_accept": self._sys_rdp_accept,
            "rdp_send": self._sys_rdp_send,
            "rdp_recv": self._sys_rdp_recv,
            "rdp_close": self._sys_rdp_close,
            "pipe": self._sys_pipe,
            "pipe_read": self._sys_pipe_read,
            "pipe_write": self._sys_pipe_write,
            "pipe_close": self._sys_pipe_close,
            "log": self._sys_log,
        }

    # pipes -----------------------------------------------------------------------

    def _sys_pipe(self, thread: Thread, capacity: int = 16 * 1024) -> int:
        if capacity <= 0:
            raise _SyscallFailure(abi.EINVAL, "pipe capacity must be positive")
        return self.pipes.create(capacity).pipe_id

    def _pipe(self, pipe_id: int):
        pipe = self.pipes.get(pipe_id)
        if pipe is None:
            raise _SyscallFailure(abi.EBADF, f"no pipe {pipe_id}")
        return pipe

    def _sys_pipe_read(self, thread: Thread, pipe_id: int, length: int):
        pipe = self._pipe(pipe_id)

        def poll():
            data = pipe.try_read(length)
            if data is None:
                return None
            return ("ok", data)

        ready = poll()
        if ready is not None:
            self._wake_net_waiters()  # a blocked writer may now have space
            return ready[1]
        raise _Block(BlockReason("net", poll))

    def _sys_pipe_write(self, thread: Thread, pipe_id: int, data: bytes):
        pipe = self._pipe(pipe_id)

        def poll():
            try:
                written = pipe.try_write(data)
            except PipeClosed as exc:
                return ("err", (abi.EPIPE, str(exc)))
            if written is None:
                return None
            return ("ok", written)

        ready = poll()
        if ready is not None:
            if ready[0] == "err":
                raise _SyscallFailure(*ready[1])
            self._wake_net_waiters()  # a blocked reader may now have data
            return ready[1]
        raise _Block(BlockReason("net", poll))

    def _sys_pipe_close(self, thread: Thread, pipe_id: int, end: str) -> None:
        pipe = self._pipe(pipe_id)
        if end not in ("r", "w"):
            raise _SyscallFailure(abi.EINVAL, f"bad pipe end {end!r}")
        pipe.close(end)
        self._wake_net_waiters()  # EOF / EPIPE now observable
        self.pipes.reap()

    # memory ----------------------------------------------------------------------

    def _sys_vm_map(self, thread: Thread, npages: int) -> int:
        if npages <= 0:
            raise _SyscallFailure(abi.EINVAL, "npages must be positive")
        process = thread.process
        base = process.heap_next
        core = self._core_of(thread)
        mapped = []
        try:
            for i in range(npages):
                frame = self.frames.alloc_frame()
                self.memory.zero_frame(frame)
                process.vspace.map(
                    base + i * PAGE_SIZE, frame, PageSize.SIZE_4K,
                    Flags.user_rw(), core=core,
                )
                mapped.append((base + i * PAGE_SIZE, frame))
        except (OutOfMemory, VSpaceError) as exc:
            for vaddr, frame in reversed(mapped):
                process.vspace.unmap(vaddr, core=core)
                self.frames.free_frame(frame)
            raise _SyscallFailure(abi.ENOMEM, str(exc)) from exc
        process.heap_next = base + npages * PAGE_SIZE
        return base

    def _sys_vm_unmap(self, thread: Thread, vaddr: int) -> None:
        try:
            removed = thread.process.vspace.unmap(
                vaddr, core=self._core_of(thread)
            )
        except VSpaceError as exc:
            raise _SyscallFailure(abi.ENOENT, str(exc)) from exc
        self.frames.free_frame(removed.paddr)

    def _sys_vm_resolve(self, thread: Thread, vaddr: int) -> int:
        mapping = thread.process.vspace.resolve(
            vaddr, core=self._core_of(thread)
        )
        if mapping is None:
            raise _SyscallFailure(abi.ENOENT, f"{vaddr:#x} not mapped")
        return mapping.paddr + (vaddr - mapping.vaddr)

    def _sys_mmap_file(self, thread: Thread, path: str,
                       writable: bool = False) -> tuple:
        """Map a file's contents into user memory.

        Allocates frames, copies the file in, and maps the pages (read-only
        unless `writable`).  Returns (vaddr, file_length).  Writable
        mappings are flushed back with msync — a deliberate simplification
        of demand paging (no page-fault-driven laziness)."""
        inum = self._fs_call(self.fs.lookup, path)
        stat = self.fs.stat_inum(inum)
        if stat.is_dir:
            raise _SyscallFailure(abi.EISDIR, f"cannot mmap directory {path!r}")
        npages = max(1, (stat.size + PAGE_SIZE - 1) // PAGE_SIZE)
        process = thread.process
        base = process.heap_next
        core = self._core_of(thread)
        flags = Flags(writable=writable, user=True, executable=False)
        mapped = []
        try:
            for i in range(npages):
                frame = self.frames.alloc_frame()
                self.memory.zero_frame(frame)
                chunk = self._fs_call(
                    self.fs.read_at, inum, i * PAGE_SIZE, PAGE_SIZE
                )
                if chunk:
                    self.memory.write(frame, chunk)
                process.vspace.map(base + i * PAGE_SIZE, frame,
                                   PageSize.SIZE_4K, flags, core=core)
                mapped.append((base + i * PAGE_SIZE, frame))
        except (OutOfMemory, VSpaceError) as exc:
            for vaddr, frame in reversed(mapped):
                process.vspace.unmap(vaddr, core=core)
                self.frames.free_frame(frame)
            raise _SyscallFailure(abi.ENOMEM, str(exc)) from exc
        process.heap_next = base + npages * PAGE_SIZE
        return (base, stat.size)

    def _sys_msync(self, thread: Thread, path: str, vaddr: int,
                   length: int) -> int:
        """Flush a writable file mapping back to the file."""
        if length < 0:
            raise _SyscallFailure(abi.EINVAL, "negative length")
        inum = self._fs_call(self.fs.lookup, path)
        process = thread.process
        root = process.vspace.root_for(self._core_of(thread))
        try:
            data = copy_from_user(self.memory, self.mmu, root, vaddr, length)
        except UserCopyFault as exc:
            raise _SyscallFailure(abi.EFAULT, str(exc)) from exc
        self._fs_call(self.fs.truncate, inum, 0)
        if data:
            self._fs_call(self.fs.write_at, inum, 0, data)
        return len(data)

    def _sys_peek(self, thread: Thread, vaddr: int) -> int:
        paddr = self._translate(thread, vaddr, write=False)
        return self.memory.load_u64(paddr)

    def _sys_poke(self, thread: Thread, vaddr: int, value: int) -> None:
        paddr = self._translate(thread, vaddr, write=True)
        self.memory.store_u64(paddr, value)

    def _sys_cas(self, thread: Thread, vaddr: int, expected: int,
                 new: int) -> tuple:
        paddr = self._translate(thread, vaddr, write=True)
        old = self.memory.load_u64(paddr)
        if old == expected:
            self.memory.store_u64(paddr, new)
            return (True, old)
        return (False, old)

    # batched memory ops ------------------------------------------------------------

    def _sys_vm_map_batch(self, thread: Thread, npages: int) -> int:
        """Map N fresh pages through the NR replica in one batch pass."""
        if npages <= 0:
            raise _SyscallFailure(abi.EINVAL, "npages must be positive")
        process = thread.process
        base = process.heap_next
        core = self._core_of(thread)
        frames: list[int] = []
        entries = []
        try:
            for i in range(npages):
                frame = self.frames.alloc_frame()
                self.memory.zero_frame(frame)
                frames.append(frame)
                entries.append((base + i * PAGE_SIZE, frame,
                                PageSize.SIZE_4K, Flags.user_rw()))
            process.vspace.map_batch(entries, core=core)
        except (OutOfMemory, VSpaceError) as exc:
            # map_batch already rolled back any pages it mapped
            for frame in frames:
                self.frames.free_frame(frame)
            raise _SyscallFailure(abi.ENOMEM, str(exc)) from exc
        process.heap_next = base + npages * PAGE_SIZE
        return base

    def _sys_vm_unmap_batch(self, thread: Thread, vaddrs,
                            count: int | None = None) -> int:
        """Unmap N pages with one TLB shootdown round for the whole batch.

        Two argument shapes: an explicit tuple of page addresses, or the
        munmap-style ``(base, count)`` range form — ``count`` consecutive
        4K pages starting at ``base``.  The range form is what a ring
        SQE uses: it stays a few bytes no matter how many pages it
        names, where a marshalled address tuple would outgrow the
        fixed-size slot.

        The batch is all-or-nothing: the replica validates every address
        before any mapping changes (one NR log operation for the whole
        batch), so a missing page fails with ENOENT and leaves every
        mapping intact."""
        if count is not None:
            if not isinstance(vaddrs, int) or not isinstance(count, int) \
                    or count <= 0:
                raise _SyscallFailure(
                    abi.EINVAL, "range form needs an int base and a "
                    "positive page count")
            vaddrs = tuple(vaddrs + i * PAGE_SIZE for i in range(count))
        if not isinstance(vaddrs, tuple) or not vaddrs:
            raise _SyscallFailure(abi.EINVAL,
                                  "vaddrs must be a non-empty tuple")
        if not all(isinstance(v, int) for v in vaddrs):
            raise _SyscallFailure(abi.EINVAL, "vaddrs must be integers")
        if len(set(vaddrs)) != len(vaddrs):
            raise _SyscallFailure(abi.EINVAL, "duplicate vaddr in batch")
        try:
            removed = thread.process.vspace.unmap_batch(
                vaddrs, core=self._core_of(thread))
        except VSpaceError as exc:
            errno = abi.ENOENT if exc.kind == "not_mapped" else abi.EINVAL
            raise _SyscallFailure(errno, str(exc)) from exc
        for mapping in removed:
            self.frames.free_frame(mapping.paddr)
        return len(removed)

    # syscall rings -----------------------------------------------------------------

    def _ring_of(self, thread: Thread, ring_id: int) -> ringmod.SyscallRing:
        ring = thread.process.rings.get(ring_id)
        if ring is None:
            raise _SyscallFailure(abi.EBADF, f"no ring {ring_id}")
        return ring

    def _sys_ring_setup(self, thread: Thread, sq_depth: int = 64,
                        cq_depth: int = 0) -> tuple:
        """Create a submission/completion ring pair in mapped user pages.

        Returns (ring_id, sq_base, cq_base, sq_depth, cq_depth).  A zero
        ``cq_depth`` means "same as the submission queue"."""
        cq_depth = cq_depth or sq_depth
        for depth in (sq_depth, cq_depth):
            if not (isinstance(depth, int)
                    and ringmod.MIN_DEPTH <= depth <= ringmod.MAX_DEPTH):
                raise _SyscallFailure(
                    abi.EINVAL,
                    f"ring depth {depth} outside "
                    f"[{ringmod.MIN_DEPTH}, {ringmod.MAX_DEPTH}]")
        process = thread.process
        core = self._core_of(thread)
        sq_pages = ringmod.ring_pages(sq_depth, ringmod.SQE_SIZE, PAGE_SIZE)
        cq_pages = ringmod.ring_pages(cq_depth, ringmod.CQE_SIZE, PAGE_SIZE)
        total = sq_pages + cq_pages
        base = process.heap_next
        frames: list[int] = []
        entries = []
        try:
            for i in range(total):
                frame = self.frames.alloc_frame()
                self.memory.zero_frame(frame)
                frames.append(frame)
                entries.append((base + i * PAGE_SIZE, frame,
                                PageSize.SIZE_4K, Flags.user_rw()))
            process.vspace.map_batch(entries, core=core)
        except (OutOfMemory, VSpaceError) as exc:
            for frame in frames:
                self.frames.free_frame(frame)
            raise _SyscallFailure(abi.ENOMEM, str(exc)) from exc
        process.heap_next = base + total * PAGE_SIZE
        ring = ringmod.SyscallRing(
            ring_id=process.new_ring_id(),
            sq_base=base,
            cq_base=base + sq_pages * PAGE_SIZE,
            sq_depth=sq_depth,
            cq_depth=cq_depth,
            frames=frames,
            pages=[base + i * PAGE_SIZE for i in range(total)],
        )
        process.rings[ring.ring_id] = ring
        return (ring.ring_id, ring.sq_base, ring.cq_base, sq_depth, cq_depth)

    def _sys_ring_enter(self, thread: Thread, ring_id: int, blob: bytes,
                        reap: bool = True) -> tuple:
        """Submit a batch of SQEs and drain them in one dispatch pass.

        ``blob`` is N concatenated 128-byte SQEs; they are written into
        the ring's mapped submission pages (through ``usercopy``, so the
        mapping obligation is checked for the whole batch at once), then
        drained.  With ``reap`` the posted CQEs are decoded and returned
        directly — one syscall for the entire batch; otherwise returns
        (submitted, completed) and the CQEs wait for ``ring_reap``.  An
        empty blob submits nothing but still runs a dispatch pass, which
        re-drives SQEs left pending by completion-queue backpressure."""
        ring = self._ring_of(thread, ring_id)
        if not isinstance(blob, bytes) or len(blob) % ringmod.SQE_SIZE:
            raise _SyscallFailure(
                abi.EINVAL,
                f"submission blob must be a multiple of "
                f"{ringmod.SQE_SIZE} bytes")
        n = len(blob) // ringmod.SQE_SIZE
        if n > ring.sq_depth - ring.sq_pending:
            raise _SyscallFailure(
                abi.EAGAIN,
                f"submission queue full ({ring.sq_pending}/{ring.sq_depth} "
                f"pending, {n} submitted)")
        root = thread.process.vspace.root_for(self._core_of(thread))
        offset = 0
        try:
            # At most two contiguous runs (the window wraps at most once),
            # so the mapping check for the whole batch costs two usercopy
            # calls, not one per slot.
            for vaddr, slots in ring.sq_segments(ring.sq_tail, n):
                nbytes = slots * ringmod.SQE_SIZE
                copy_to_user(self.memory, self.mmu, root, vaddr,
                             blob[offset:offset + nbytes])
                offset += nbytes
        except UserCopyFault as exc:
            raise _SyscallFailure(abi.EFAULT, str(exc)) from exc
        ring.sq_tail += n
        completed = self._ring_drain(thread, ring)
        if reap:
            return self._reap_cqes(thread, ring, 0)
        return (n, completed)

    def _sys_ring_reap(self, thread: Thread, ring_id: int,
                       max_entries: int = 0) -> tuple:
        """Harvest up to ``max_entries`` CQEs (0 = all ready)."""
        ring = self._ring_of(thread, ring_id)
        return self._reap_cqes(thread, ring, max_entries)

    def _ring_drain(self, thread: Thread, ring: ringmod.SyscallRing) -> int:
        """One dispatch pass over the pending SQEs, in submission order.

        This is where the batching pays: the scheduler ran once to get
        here, and one obs span covers the whole pass — but the per-entry
        obligations still hold.  Each slot is read back through
        ``usercopy`` and must survive its own decode (magic, length,
        checksum, unmarshal) before dispatch; a torn slot becomes an
        ``EBADMSG`` CQE for that entry alone.  Entries complete in
        submission order; the pass stops early only when the completion
        queue has no room (backpressure — the SQEs stay pending)."""
        process = thread.process
        root = process.vspace.root_for(self._core_of(thread))
        plan = self.fault_plan
        with obs.span("ring.drain", histogram="ring.drain_seconds",
                      pending=ring.sq_pending):
            # Tear injections land in user memory *before* the kernel
            # reads the window, exactly as a racing user store would.
            # Each staged entry gets exactly one tear draw over its
            # lifetime (``sqe_drawn`` is the high-water mark), so an
            # entry left pending by backpressure is not re-drawn on the
            # next pass — it is re-read, and a torn slot stays torn.
            if plan is not None:
                start = max(ring.sq_head, ring.sqe_drawn)
                for index in range(start, ring.sq_tail):
                    decision = plan.draw("ring.sqe")
                    if decision is not None and decision.kind == "torn":
                        self._tear_sqe(root, ring.sq_slot_vaddr(index),
                                       decision)
                ring.sqe_drawn = max(ring.sqe_drawn, ring.sq_tail)
            # One bulk read covers the whole pending window (≤2 runs).
            window = ring.sq_pending
            buf = b""
            try:
                if window:
                    buf = b"".join(
                        copy_from_user(self.memory, self.mmu, root, vaddr,
                                       slots * ringmod.SQE_SIZE)
                        for vaddr, slots
                        in ring.sq_segments(ring.sq_head, window))
            except UserCopyFault as exc:
                raise _SyscallFailure(abi.EFAULT, str(exc)) from exc
            cqes: list[bytes] = []
            for i in range(window):
                if ring.cq_ready + len(cqes) >= ring.cq_depth:
                    break  # CQ full: leave the rest submitted
                if plan is not None:
                    decision = plan.draw("ring.cq")
                    if decision is not None and decision.kind == "full":
                        break  # forced backpressure
                slot = buf[i * ringmod.SQE_SIZE:(i + 1) * ringmod.SQE_SIZE]
                status, value = self._dispatch_sqe(thread, slot)
                user_data = int.from_bytes(slot[8:16], "little")
                cqes.append(ringmod.encode_cqe(user_data, status, value))
                if plan is not None:
                    decision = plan.draw("ring.dispatch")
                    if decision is not None and decision.kind == "crash":
                        break  # pass aborted; the rest stay pending
            # Post every completion of this pass in one bulk write.  A
            # crashed pass still posts the CQEs of the entries it already
            # dispatched — their effects (including any TLB shootdown)
            # are done, so exactly-once completion holds across re-entry.
            completed = len(cqes)
            if completed:
                out = b"".join(cqes)
                offset = 0
                try:
                    for vaddr, slots in ring.cq_segments(ring.cq_tail,
                                                         completed):
                        nbytes = slots * ringmod.CQE_SIZE
                        copy_to_user(self.memory, self.mmu, root, vaddr,
                                     out[offset:offset + nbytes])
                        offset += nbytes
                except UserCopyFault as exc:
                    raise _SyscallFailure(abi.EFAULT, str(exc)) from exc
                ring.sq_head += completed
                ring.cq_tail += completed
        self.stats.ring_batches += 1
        self.stats.ring_sqes += completed
        self._obs_batch_size.record(completed)
        self._obs_sq_pending.set(ring.sq_pending)
        self._obs_cq_ready.set(ring.cq_ready)
        return completed

    def _dispatch_sqe(self, thread: Thread, slot: bytes) -> tuple:
        """Decode and invoke one SQE; returns (status, value).

        The errno mapping mirrors the single-call path exactly — the
        difference is only in *transport*: failures become typed error
        CQEs instead of raised SyscallErrors, and an entry that would
        block completes immediately with EAGAIN (a ring never parks the
        submitting thread mid-batch)."""
        try:
            _user_data, number, args = ringmod.decode_sqe(slot)
        except ringmod.SqeDecodeError as exc:
            return (abi.EBADMSG, str(exc))
        name = abi.NUMBER_TO_NAME.get(number)
        if name in ringmod.RING_FORBIDDEN:
            return (abi.EINVAL, f"{name} cannot be dispatched via a ring")
        handler = self._handlers.get(name)
        if handler is None:
            return (abi.ENOSYS, name or str(number))
        try:
            return (0, handler(thread, *args))
        except _Block as block:
            return (abi.EAGAIN, f"would block on {block.reason.kind}")
        except _SyscallFailure as failure:
            return (failure.errno, failure.message)
        except TypeError as exc:
            return (abi.EINVAL, f"bad arguments for {name}: {exc}")

    def _reap_cqes(self, thread: Thread, ring: ringmod.SyscallRing,
                   max_entries: int) -> tuple:
        """Decode ready CQEs -> ((user_data, status, value), ...)."""
        root = thread.process.vspace.root_for(self._core_of(thread))
        count = ring.cq_ready if max_entries <= 0 \
            else min(max_entries, ring.cq_ready)
        try:
            buf = b"".join(
                copy_from_user(self.memory, self.mmu, root, vaddr,
                               slots * ringmod.CQE_SIZE)
                for vaddr, slots in ring.cq_segments(ring.cq_head, count))
        except UserCopyFault as exc:
            raise _SyscallFailure(abi.EFAULT, str(exc)) from exc
        out = tuple(
            ringmod.decode_cqe(buf[i * ringmod.CQE_SIZE:
                                   (i + 1) * ringmod.CQE_SIZE])
            for i in range(count))
        ring.cq_head += count
        self._obs_cq_ready.set(ring.cq_ready)
        return out

    def _tear_sqe(self, root: int, slot_vaddr: int, decision) -> None:
        """Fault injection: tear a staged SQE in user memory.

        Models a partially-completed user store: either the slot's tail
        is stale zeros (truncated write) or a byte is flipped.  The
        damage always lands inside the encoded entry (header + blob),
        never only in the already-zero padding, so every injection
        genuinely changes the slot and must be caught by the decode
        checksum."""
        slot = bytearray(copy_from_user(self.memory, self.mmu, root,
                                        slot_vaddr, ringmod.SQE_SIZE))
        blob_len = min(int.from_bytes(slot[2:4], "little"),
                       ringmod.SQE_BLOB_MAX)
        encoded = ringmod._SQE_HEADER + blob_len
        offset = 1 + decision.rand_below(max(encoded - 1, 1))
        if decision.rand_below(2):
            original = bytes(slot)
            slot[offset:] = bytes(ringmod.SQE_SIZE - offset)
            if bytes(slot) == original:  # the tail was all zeros anyway
                slot[offset] ^= 0x5A
        else:
            slot[offset] ^= 0x5A
        copy_to_user(self.memory, self.mmu, root, slot_vaddr, bytes(slot))

    # files --------------------------------------------------------------------------

    def _fs_call(self, fn, *args):
        try:
            return fn(*args)
        except fsmod.NotFound as exc:
            raise _SyscallFailure(abi.ENOENT, str(exc)) from exc
        except fsmod.Exists as exc:
            raise _SyscallFailure(abi.EEXIST, str(exc)) from exc
        except fsmod.NotADirectory as exc:
            raise _SyscallFailure(abi.ENOTDIR, str(exc)) from exc
        except fsmod.IsADirectory as exc:
            raise _SyscallFailure(abi.EISDIR, str(exc)) from exc
        except fsmod.DirectoryNotEmpty as exc:
            raise _SyscallFailure(abi.EINVAL, str(exc)) from exc
        except fdmod.BadFd as exc:
            raise _SyscallFailure(abi.EBADF, str(exc)) from exc
        except fdmod.PermissionDenied as exc:
            raise _SyscallFailure(abi.EPERM, str(exc)) from exc
        except NoSpace as exc:
            raise _SyscallFailure(abi.ENOSPC, str(exc)) from exc
        except fsmod.FileTooBig as exc:
            raise _SyscallFailure(abi.EINVAL, str(exc)) from exc
        except ValueError as exc:
            raise _SyscallFailure(abi.EINVAL, str(exc)) from exc
        except fsmod.FsError as exc:
            raise _SyscallFailure(abi.EINVAL, str(exc)) from exc

    def _sys_open(self, thread: Thread, path: str, flags: int = 0) -> int:
        return self._fs_call(thread.process.fdtable.open, path, flags)

    def _sys_close(self, thread: Thread, fd: int) -> None:
        self._fs_call(thread.process.fdtable.close, fd)

    def _sys_read(self, thread: Thread, fd: int, length: int) -> bytes:
        return self._fs_call(thread.process.fdtable.read, fd, length)

    def _sys_write(self, thread: Thread, fd: int, data: bytes) -> int:
        return self._fs_call(thread.process.fdtable.write, fd, data)

    def _sys_seek(self, thread: Thread, fd: int, offset: int) -> int:
        return self._fs_call(thread.process.fdtable.seek, fd, offset)

    def _sys_stat(self, thread: Thread, path: str) -> tuple:
        stat = self._fs_call(self.fs.stat, path)
        return (stat.inum, stat.itype, stat.size, stat.nlink)

    def _sys_mkdir(self, thread: Thread, path: str) -> None:
        self._fs_call(self.fs.mkdir, path)

    def _sys_readdir(self, thread: Thread, path: str) -> tuple:
        return tuple(self._fs_call(self.fs.readdir, path))

    def _sys_unlink(self, thread: Thread, path: str) -> None:
        self._fs_call(self.fs.unlink, path)

    def _sys_rename(self, thread: Thread, old: str, new: str) -> None:
        self._fs_call(self.fs.rename, old, new)

    def _sys_link(self, thread: Thread, old_path: str, new_path: str) -> None:
        self._fs_call(self.fs.link, old_path, new_path)

    def _sys_truncate(self, thread: Thread, path: str, size: int = 0) -> None:
        inum = self._fs_call(self.fs.lookup, path)
        self._fs_call(self.fs.truncate, inum, size)

    def _sys_read_into(self, thread: Thread, fd: int, vaddr: int,
                       length: int) -> int:
        """Read file data directly into user memory: the mapping and
        data-race-freedom obligations in action."""
        process = thread.process
        table = self._ownership[process.pid]
        try:
            token = table.claim_unique(vaddr, max(length, 1),
                                       f"read_into:t{thread.tid}")
        except OwnershipError as exc:
            raise _SyscallFailure(abi.EAGAIN, str(exc)) from exc
        try:
            data = self._fs_call(process.fdtable.read, fd, length)
            root = process.vspace.root_for(self._core_of(thread))
            copy_to_user(self.memory, self.mmu, root, vaddr, data)
            return len(data)
        except UserCopyFault as exc:
            raise _SyscallFailure(abi.EFAULT, str(exc)) from exc
        finally:
            table.release(token)

    def _sys_write_from(self, thread: Thread, fd: int, vaddr: int,
                        length: int) -> int:
        process = thread.process
        table = self._ownership[process.pid]
        try:
            token = table.claim_shared(vaddr, max(length, 1),
                                       f"write_from:t{thread.tid}")
        except OwnershipError as exc:
            raise _SyscallFailure(abi.EAGAIN, str(exc)) from exc
        try:
            root = process.vspace.root_for(self._core_of(thread))
            data = copy_from_user(self.memory, self.mmu, root, vaddr, length)
            return self._fs_call(process.fdtable.write, fd, data)
        except UserCopyFault as exc:
            raise _SyscallFailure(abi.EFAULT, str(exc)) from exc
        finally:
            table.release(token)

    # processes and threads --------------------------------------------------------------

    def _sys_spawn(self, thread: Thread, name: str, argv: tuple = ()) -> int:
        if name not in self._registry:
            raise _SyscallFailure(abi.ENOENT, f"no program {name!r}")
        return self.spawn(name, argv, parent=thread.process.pid)

    def _sys_wait(self, thread: Thread, pid: int = -1) -> tuple:
        process = thread.process
        candidates = (
            [pid] if pid != -1 else sorted(process.children)
        )
        zombie = None
        for child_pid in candidates:
            child = self.processes.get(child_pid)
            if child is None or child.parent != process.pid:
                continue
            if child.state is ProcessState.ZOMBIE:
                zombie = child
                break
        if zombie is not None:
            zombie.state = ProcessState.REAPED
            return (zombie.pid, zombie.exit_code)
        if pid != -1:
            child = self.processes.get(pid)
            if child is None or child.parent != process.pid:
                raise _SyscallFailure(abi.ECHILD, f"no child {pid}")
            if child.state is ProcessState.REAPED:
                raise _SyscallFailure(abi.ECHILD, f"child {pid} already reaped")
        elif not any(
            self.processes[c].state in (ProcessState.ALIVE, ProcessState.ZOMBIE)
            for c in process.children if c in self.processes
        ):
            raise _SyscallFailure(abi.ECHILD, "no children to wait for")
        raise _Block(BlockReason("wait", pid))

    def _sys_exit(self, thread: Thread, code: int = 0) -> None:
        self._process_exit(thread.process, exit_code=code)
        raise _ProcessExited()

    def _sys_getpid(self, thread: Thread) -> int:
        return thread.process.pid

    def _sys_kill(self, thread: Thread, pid: int, sig: int = abi.SIGKILL) -> None:
        """SIGKILL terminates; any other signal is queued for sigwait."""
        target = self.processes.get(pid)
        if target is None or target.state is not ProcessState.ALIVE:
            raise _SyscallFailure(abi.ESRCH, f"no such process {pid}")
        if sig == abi.SIGKILL:
            self._process_exit(target, exit_code=137)
            if target is thread.process:
                raise _ProcessExited()
            return
        target.pending_signals.append(sig)
        for waiter in target.threads.values():
            if (waiter.state is ThreadState.BLOCKED
                    and waiter.block_reason is not None
                    and waiter.block_reason.kind == "sigwait"
                    and target.pending_signals):
                delivered = target.pending_signals.pop(0)
                self.scheduler.wake(waiter, ("value", delivered))

    def _sys_signal(self, thread: Thread, pid: int, sig: int) -> None:
        """Alias of kill() for non-fatal signals (readability in user
        code)."""
        if sig == abi.SIGKILL:
            raise _SyscallFailure(abi.EINVAL, "use kill() for SIGKILL")
        self._sys_kill(thread, pid, sig)

    def _sys_sigwait(self, thread: Thread):
        process = thread.process
        if process.pending_signals:
            return process.pending_signals.pop(0)
        raise _Block(BlockReason("sigwait", process.pid))

    def _sys_sigpending(self, thread: Thread) -> tuple:
        return tuple(thread.process.pending_signals)

    def _sys_setpriority(self, thread: Thread, priority: int) -> None:
        try:
            self.scheduler.set_priority(thread, priority)
        except ValueError as exc:
            raise _SyscallFailure(abi.EINVAL, str(exc)) from exc

    def _sys_sched_setscheduler(self, thread: Thread, policy: str,
                                param: int = 0) -> None:
        """Switch the calling thread's scheduling class.  ``param`` is
        the nice level for ``"fair"``, the RT priority for ``"fifo"``
        and ``"rr"``."""
        try:
            if policy == "fair":
                self.scheduler.set_policy(thread, policy, nice=param)
            else:
                self.scheduler.set_policy(thread, policy, rt_prio=param)
        except ValueError as exc:
            raise _SyscallFailure(abi.EINVAL, str(exc)) from exc

    def _sys_sched_getscheduler(self, thread: Thread) -> tuple:
        return self.scheduler.policy_of(thread)

    def _sys_yield(self, thread: Thread) -> None:
        return None

    def _sys_thread_spawn(self, thread: Thread, entry: str,
                          argv: tuple = ()) -> int:
        if entry not in self._registry:
            raise _SyscallFailure(abi.ENOENT, f"no entry point {entry!r}")
        gen = self._registry[entry](*argv)
        new_thread = thread.process.add_thread(gen)
        self._threads_by_tid[new_thread.tid] = new_thread
        self.scheduler.ready(new_thread)
        return new_thread.tid

    def _sys_thread_join(self, thread: Thread, tid: int):
        target = self._threads_by_tid.get(tid)
        if target is None or target.process is not thread.process:
            raise _SyscallFailure(abi.ESRCH, f"no such thread {tid}")
        if target is thread:
            raise _SyscallFailure(abi.EINVAL, "cannot join self")
        if target.state is ThreadState.EXITED:
            return target.exit_value
        raise _Block(BlockReason("join", tid))

    def _sys_sleep(self, thread: Thread, ticks: int) -> None:
        if ticks < 0:
            raise _SyscallFailure(abi.EINVAL, "negative sleep")
        if ticks == 0:
            return None
        raise _Block(BlockReason("sleep", self.timer.ticks + ticks))

    # synchronization -----------------------------------------------------------------------

    def _sys_futex_wait(self, thread: Thread, vaddr: int, expected: int):
        paddr = self._translate(thread, vaddr, write=False)
        current = self.memory.load_u64(paddr)
        if current != expected:
            raise _SyscallFailure(abi.EAGAIN,
                                  f"futex value {current} != {expected}")
        raise _Block(BlockReason("futex", paddr))

    def _sys_futex_wake(self, thread: Thread, vaddr: int, count: int = 1) -> int:
        paddr = self._translate(thread, vaddr, write=False)
        waiters = self._futex_waiters.get(paddr, [])
        woken = 0
        while waiters and woken < count:
            waiter = waiters.pop(0)
            if waiter.state is ThreadState.BLOCKED:
                self.scheduler.wake(waiter)
                woken += 1
        if not waiters:
            self._futex_waiters.pop(paddr, None)
        return woken

    # networking -------------------------------------------------------------------------------

    def _require_net(self) -> NetStack:
        if self.net is None:
            raise _SyscallFailure(abi.ENOSYS, "no network configured")
        return self.net

    def _sys_socket(self, thread: Thread) -> int:
        self._require_net()
        process = thread.process
        sid = process.new_sid()
        process.sockets[sid] = None  # bound later
        return sid

    def _sys_bind(self, thread: Thread, sid: int, port: int) -> None:
        net = self._require_net()
        process = thread.process
        if sid not in process.sockets:
            raise _SyscallFailure(abi.EBADF, f"no socket {sid}")
        try:
            process.sockets[sid] = net.udp_bind(port)
        except NetError as exc:
            raise _SyscallFailure(abi.EINVAL, str(exc)) from exc

    def _sys_sendto(self, thread: Thread, sid: int, dst_ip: int,
                    dst_port: int, payload: bytes) -> None:
        net = self._require_net()
        sock = thread.process.sockets.get(sid)
        src_port = sock.port if sock is not None else 0
        try:
            net.udp_send(src_port, dst_ip, dst_port, payload)
        except NetError as exc:
            raise _SyscallFailure(abi.EINVAL, str(exc)) from exc

    def _sys_recvfrom(self, thread: Thread, sid: int):
        self._require_net()
        sock = thread.process.sockets.get(sid)
        if sock is None:
            raise _SyscallFailure(abi.EINVAL, f"socket {sid} not bound")

        def poll():
            if sock.recv_queue:
                src_ip, src_port, payload = sock.recv_queue.popleft()
                return ("ok", (src_ip, src_port, payload))
            return None

        ready = poll()
        if ready is not None:
            return ready[1]
        raise _Block(BlockReason("net", poll))

    def _sys_rdp_listen(self, thread: Thread, port: int) -> int:
        net = self._require_net()
        process = thread.process
        try:
            listener = net.rdp_listen(port)
        except NetError as exc:
            raise _SyscallFailure(abi.EINVAL, str(exc)) from exc
        sid = process.new_sid()
        process.sockets[sid] = listener
        return sid

    def _sys_rdp_connect(self, thread: Thread, dst_ip: int,
                         dst_port: int):
        net = self._require_net()
        process = thread.process
        conn = net.rdp_connect(dst_ip, dst_port)
        sid = process.new_sid()
        process.sockets[sid] = conn
        net.tick(self.timer.ticks)  # send the SYN promptly

        def poll():
            if conn.state == STATE_ESTABLISHED:
                return ("ok", sid)
            if conn.state == STATE_CLOSED:
                return ("err", (abi.ECONNREFUSED, "connect failed"))
            return None

        ready = poll()
        if ready is not None and ready[0] == "ok":
            return ready[1]
        raise _Block(BlockReason("net", poll))

    def _sys_rdp_accept(self, thread: Thread, sid: int):
        self._require_net()
        process = thread.process
        listener = process.sockets.get(sid)
        if listener is None or not hasattr(listener, "pending"):
            raise _SyscallFailure(abi.EINVAL, f"socket {sid} not listening")

        def poll():
            if listener.pending:
                conn = listener.pending.popleft()
                conn_sid = process.new_sid()
                process.sockets[conn_sid] = conn
                return ("ok", conn_sid)
            return None

        ready = poll()
        if ready is not None:
            return ready[1]
        raise _Block(BlockReason("net", poll))

    def _get_conn(self, thread: Thread, sid: int):
        conn = thread.process.sockets.get(sid)
        if conn is None or not hasattr(conn, "recv_queue"):
            raise _SyscallFailure(abi.EBADF, f"socket {sid} is not a connection")
        return conn

    def _sys_rdp_send(self, thread: Thread, sid: int, payload: bytes) -> None:
        net = self._require_net()
        conn = self._get_conn(thread, sid)
        if conn.state == STATE_CLOSED:
            raise _SyscallFailure(abi.ENOTCONN, "connection closed")
        net.rdp_send(conn, payload)
        net.tick(self.timer.ticks)  # opportunistic transmit

    def _sys_rdp_recv(self, thread: Thread, sid: int):
        self._require_net()
        conn = self._get_conn(thread, sid)

        def poll():
            if conn.recv_queue:
                return ("ok", conn.recv_queue.popleft())
            if conn.state == STATE_CLOSED:
                return ("err", (abi.ENOTCONN, "connection closed"))
            return None

        ready = poll()
        if ready is not None:
            if ready[0] == "err":
                raise _SyscallFailure(*ready[1])
            return ready[1]
        raise _Block(BlockReason("net", poll))

    def _sys_rdp_close(self, thread: Thread, sid: int) -> None:
        net = self._require_net()
        conn = self._get_conn(thread, sid)
        net.rdp_close(conn)

    # console ----------------------------------------------------------------------------------------

    def _sys_log(self, thread: Thread, message: str) -> None:
        self.console.info(
            f"[{thread.process.name}:{thread.process.pid}] {message}"
        )


class _ProcessExited(Exception):
    """Internal: the calling process exited inside a handler."""
