"""NR-replicated address spaces with TLB shootdown.

NrOS replicates kernel state — including address-space structures — per
NUMA node through node replication.  A :class:`VSpace` therefore owns one
page table *per node* (the NR replicas), all kept consistent through the
operation log; each core's MMU walks its own node's tree, and unmap performs
a TLB shootdown across every registered core.

Interference model (see :mod:`repro.verif.rgspec`): the page-table trees
are mutated only inside ``_PtDs.apply``, which NR runs while holding the
replica writer lock — that lock is the guard the rely-guarantee spec
names for every vspace action.  The per-space bookkeeping counters
(``mapped_pages``, ``shootdowns``) and the obs instruments are declared
*benign* shared state: the rely admits concurrent monitoring updates and
no invariant depends on their exact values, so the static checker does
not require a lock around them.  TLB registration (``attach_core`` /
``detach_core``) is core-local configuration serialized by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.pt.defs import Flags, PageSize
from repro.core.pt.impl import (
    AlreadyMapped,
    BadRequest,
    Mapping,
    NotMapped,
    PageTable,
)
from repro.hw.mem import PhysicalMemory
from repro.hw.mmu import Mmu, TranslationFault
from repro.hw.tlb import Tlb
from repro.nr.core import NodeReplicated


class VSpaceError(Exception):
    """An address-space operation failed (wraps the page-table error).

    ``kind`` is the replica's typed error class (``not_mapped``,
    ``already_mapped``, ``bad_request``) when known, so callers can map
    it to an errno without parsing the message."""

    def __init__(self, message: str, kind: str | None = None) -> None:
        super().__init__(message)
        self.kind = kind


@dataclass
class _PtDs:
    """The sequential data structure NR replicates: one page-table tree.

    Results are ("ok", payload) / ("err", kind) tuples because NR transports
    results through the log rather than exceptions."""

    pt: object

    def apply(self, op):
        kind = op[0]
        try:
            if kind == "map":
                _, vaddr, frame, size, flags = op
                self.pt.map_frame(vaddr, frame, size, flags)
                return ("ok", None)
            if kind == "unmap":
                _, vaddr = op
                return ("ok", self.pt.unmap(vaddr))
            if kind == "map_batch":
                return self._apply_map_batch(op[1])
            if kind == "unmap_batch":
                return self._apply_unmap_batch(op[1])
        except AlreadyMapped as exc:
            return ("err", "already_mapped", str(exc))
        except NotMapped as exc:
            return ("err", "not_mapped", str(exc))
        except BadRequest as exc:
            return ("err", "bad_request", str(exc))
        raise ValueError(f"unknown vspace op {op!r}")

    def _apply_map_batch(self, entries):
        """N maps as ONE log operation — a single append + combine pays
        for the whole batch.  All-or-nothing inside the replica: a
        failing entry unwinds the ones already applied, so no replica
        ever exposes a partially-mapped batch.  Backends without a
        native ``map_batch`` (the unverified tree) get a loop with the
        same unwind-on-failure contract."""
        if hasattr(self.pt, "map_batch"):
            return ("ok", self.pt.map_batch(entries))
        done = []
        try:
            for vaddr, frame, size, flags in entries:
                self.pt.map_frame(vaddr, frame, size, flags)
                done.append(vaddr)
        except (AlreadyMapped, BadRequest):
            for vaddr in reversed(done):
                self.pt.unmap(vaddr)
            raise
        return ("ok", len(done))

    def _apply_unmap_batch(self, vaddrs):
        """N unmaps as ONE log operation.  The page table validates the
        whole batch in one walk pass before any mapping changes, so the
        batch is atomic without rollback state — and the empty-table
        sweep runs once per batch instead of once per page.  Backends
        without a native ``unmap_batch`` resolve every page up front
        for the same atomicity before unmapping one by one."""
        if hasattr(self.pt, "unmap_batch"):
            return ("ok", tuple(self.pt.unmap_batch(vaddrs)))
        for vaddr in vaddrs:
            if self.pt.resolve(vaddr) is None:
                raise NotMapped(f"{vaddr:#x} not mapped")
        return ("ok", tuple(self.pt.unmap(vaddr) for vaddr in vaddrs))

    def query(self, op):
        kind, vaddr = op
        if kind != "resolve":
            raise ValueError(f"unknown vspace query {op!r}")
        try:
            return ("ok", self.pt.resolve(vaddr))
        except BadRequest as exc:
            return ("err", "bad_request", str(exc))


class VSpace:
    """One process address space, replicated across NUMA nodes."""

    def __init__(
        self,
        memory: PhysicalMemory,
        allocator,
        num_nodes: int = 1,
        pt_factory=PageTable,
        asid: int = 0,
    ) -> None:
        self.memory = memory
        self.allocator = allocator
        self.asid = asid
        self.nr = NodeReplicated(
            lambda: _PtDs(pt_factory(memory, allocator)), num_nodes=num_nodes
        )
        self._tlbs: dict[int, Tlb] = {}       # core -> TLB
        self._core_node: dict[int, int] = {}  # core -> NUMA node
        #: TLB shootdown *rounds* issued (a batched unmap counts one).
        self.shootdowns = 0
        self.mapped_pages = 0
        # Aggregate (cross-VSpace) instruments in the process-wide
        # registry, so benchmarks and the trace export report the same
        # numbers the attributes above hold per address space.
        self._obs_rounds = obs.counter("vspace.shootdown_rounds")
        self._obs_shot_pages = obs.counter("vspace.shootdown_pages")
        self._obs_mapped = obs.gauge("vspace.mapped_pages")
        self._obs_batch = obs.histogram("vspace.batch_pages")

    # -- core registration ------------------------------------------------------

    def attach_core(self, core: int, node: int, tlb: Tlb | None = None) -> None:
        """Register a core (and its TLB) as using this address space."""
        if node >= self.nr.num_nodes:
            raise ValueError(f"node {node} out of range")
        self._core_node[core] = node
        self._tlbs[core] = tlb if tlb is not None else Tlb()

    def detach_core(self, core: int) -> None:
        self._core_node.pop(core, None)
        tlb = self._tlbs.pop(core, None)
        if tlb is not None:
            tlb.flush()

    def root_for(self, core: int) -> int:
        """The page-table root the given core's CR3 points at."""
        node = self._core_node.get(core, 0)
        return self.nr.replicas[node].ds.pt.root_paddr

    # -- operations -----------------------------------------------------------------

    def map(self, vaddr: int, frame: int, size: PageSize, flags: Flags,
            core: int = 0) -> None:
        node = self._core_node.get(core, 0)
        result = self.nr.execute(("map", vaddr, frame, size, flags),
                                 node=node, thread=core)
        if result[0] != "ok":
            raise VSpaceError(result[2], kind=result[1])
        self.mapped_pages += 1
        self._obs_mapped.inc()

    def unmap(self, vaddr: int, core: int = 0) -> Mapping:
        node = self._core_node.get(core, 0)
        result = self.nr.execute(("unmap", vaddr), node=node, thread=core)
        if result[0] != "ok":
            raise VSpaceError(result[2], kind=result[1])
        removed = result[1]
        self.mapped_pages -= 1
        self._obs_mapped.dec()
        # The unmap is only safe once *every* replica has applied it (no
        # core may keep translating through its stale tree) and every TLB
        # entry is gone — this full sync + shootdown is what makes unmap
        # more expensive than map (Figure 1c vs 1b).
        self.nr.sync_all()
        self._shootdown([removed.vaddr])
        return removed

    def map_batch(self, entries, core: int = 0) -> None:
        """Apply N ``(vaddr, frame, size, flags)`` map operations as
        **one** NR log operation.

        One log append + one flat-combining round pays for the whole
        batch (per-op, the amortization Figure 1b prices), and the
        replica applies the batch all-or-nothing: a failing entry
        unwinds the ones already mapped before the error surfaces, so
        no partially-mapped batch is ever visible.
        """
        entries = tuple(entries)
        if not entries:
            return
        node = self._core_node.get(core, 0)
        result = self.nr.execute(("map_batch", entries), node=node,
                                 thread=core)
        if result[0] != "ok":
            raise VSpaceError(result[2], kind=result[1])
        self.mapped_pages += len(entries)
        self._obs_mapped.inc(len(entries))
        self._obs_batch.record(len(entries))

    def unmap_batch(self, vaddrs, core: int = 0) -> list[Mapping]:
        """Remove N pages with **one** log operation and **one** TLB
        shootdown round.

        The batch goes through the NR log as a single validate-then-
        apply operation (atomic: a missing page fails the batch before
        any mapping changes); then one ``sync_all`` quiesces every
        replica and one shootdown round delivers each core its whole
        invalidation set.  The paper's unmap-synchronization obligation
        is preserved — no stale translation survives past return (and
        the kernel posts no completion for any entry of the batch
        before this returns) — but the log-append + sync + IPI
        round-trip is paid once per batch instead of once per page.
        """
        vaddrs = tuple(vaddrs)
        if not vaddrs:
            return []
        node = self._core_node.get(core, 0)
        result = self.nr.execute(("unmap_batch", vaddrs), node=node,
                                 thread=core)
        if result[0] != "ok":
            raise VSpaceError(result[2], kind=result[1])
        removed = list(result[1])
        self.mapped_pages -= len(removed)
        self._obs_mapped.dec(len(removed))
        self._obs_batch.record(len(removed))
        self.nr.sync_all()
        self._shootdown([m.vaddr for m in removed])
        return removed

    def resolve(self, vaddr: int, core: int = 0) -> Mapping | None:
        node = self._core_node.get(core, 0)
        result = self.nr.execute_ro(("resolve", vaddr), node=node, thread=core)
        if result[0] != "ok":
            raise VSpaceError(result[2], kind=result[1])
        return result[1]

    def _shootdown(self, vaddrs: list[int]) -> None:
        """One shootdown round: deliver every registered core its
        invalidation set for the whole batch (the mandatory protocol
        established by the `tlb` VCs, amortized over N pages)."""
        self.shootdowns += 1
        self._obs_rounds.inc()
        self._obs_shot_pages.inc(len(vaddrs))
        for tlb in self._tlbs.values():
            tlb.invalidate_pages(vaddrs)

    # -- translation (what instruction execution uses) -------------------------------

    def translate(self, core: int, vaddr: int, write: bool = False):
        """Translate through the core's TLB, walking on a miss."""
        if core not in self._core_node:
            raise ValueError(f"core {core} not attached")
        tlb = self._tlbs[core]
        cached = tlb.lookup(vaddr)
        if cached is not None:
            if write and not cached.flags.writable:
                raise TranslationFault(vaddr, "write to read-only page")
            offset = vaddr - cached.page_base_vaddr
            return cached.frame_paddr + offset
        mmu = Mmu(self.memory)
        node = self._core_node[core]
        try:
            translation = mmu.walk(self.root_for(core), vaddr)
        except TranslationFault:
            # The local replica may simply lag the log (NrOS handles this
            # page fault by syncing the replica and retrying the access).
            self._sync_node(node, core)
            translation = mmu.walk(self.root_for(core), vaddr)
        if write and not translation.flags.writable:
            raise TranslationFault(vaddr, "write to read-only page")
        tlb.insert(translation)
        return translation.paddr

    def _sync_node(self, node: int, core: int) -> None:
        """Apply any outstanding log entries to this node's replica."""
        steps = self.nr.sync_steps(node, thread=core)
        for _ in steps:
            pass

    def sync(self) -> None:
        """Quiesce: apply the log everywhere (used before teardown)."""
        self.nr.sync_all()
