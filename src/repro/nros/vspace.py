"""NR-replicated address spaces with TLB shootdown.

NrOS replicates kernel state — including address-space structures — per
NUMA node through node replication.  A :class:`VSpace` therefore owns one
page table *per node* (the NR replicas), all kept consistent through the
operation log; each core's MMU walks its own node's tree, and unmap performs
a TLB shootdown across every registered core.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pt.defs import Flags, PageSize
from repro.core.pt.impl import (
    AlreadyMapped,
    BadRequest,
    Mapping,
    NotMapped,
    PageTable,
)
from repro.hw.mem import PhysicalMemory
from repro.hw.mmu import Mmu, TranslationFault
from repro.hw.tlb import Tlb
from repro.nr.core import NodeReplicated


class VSpaceError(Exception):
    """An address-space operation failed (wraps the page-table error)."""


@dataclass
class _PtDs:
    """The sequential data structure NR replicates: one page-table tree.

    Results are ("ok", payload) / ("err", kind) tuples because NR transports
    results through the log rather than exceptions."""

    pt: object

    def apply(self, op):
        kind = op[0]
        try:
            if kind == "map":
                _, vaddr, frame, size, flags = op
                self.pt.map_frame(vaddr, frame, size, flags)
                return ("ok", None)
            if kind == "unmap":
                _, vaddr = op
                return ("ok", self.pt.unmap(vaddr))
        except AlreadyMapped as exc:
            return ("err", "already_mapped", str(exc))
        except NotMapped as exc:
            return ("err", "not_mapped", str(exc))
        except BadRequest as exc:
            return ("err", "bad_request", str(exc))
        raise ValueError(f"unknown vspace op {op!r}")

    def query(self, op):
        kind, vaddr = op
        if kind != "resolve":
            raise ValueError(f"unknown vspace query {op!r}")
        try:
            return ("ok", self.pt.resolve(vaddr))
        except BadRequest as exc:
            return ("err", "bad_request", str(exc))


class VSpace:
    """One process address space, replicated across NUMA nodes."""

    def __init__(
        self,
        memory: PhysicalMemory,
        allocator,
        num_nodes: int = 1,
        pt_factory=PageTable,
        asid: int = 0,
    ) -> None:
        self.memory = memory
        self.allocator = allocator
        self.asid = asid
        self.nr = NodeReplicated(
            lambda: _PtDs(pt_factory(memory, allocator)), num_nodes=num_nodes
        )
        self._tlbs: dict[int, Tlb] = {}       # core -> TLB
        self._core_node: dict[int, int] = {}  # core -> NUMA node
        self.shootdowns = 0

    # -- core registration ------------------------------------------------------

    def attach_core(self, core: int, node: int, tlb: Tlb | None = None) -> None:
        """Register a core (and its TLB) as using this address space."""
        if node >= self.nr.num_nodes:
            raise ValueError(f"node {node} out of range")
        self._core_node[core] = node
        self._tlbs[core] = tlb if tlb is not None else Tlb()

    def detach_core(self, core: int) -> None:
        self._core_node.pop(core, None)
        tlb = self._tlbs.pop(core, None)
        if tlb is not None:
            tlb.flush()

    def root_for(self, core: int) -> int:
        """The page-table root the given core's CR3 points at."""
        node = self._core_node.get(core, 0)
        return self.nr.replicas[node].ds.pt.root_paddr

    # -- operations -----------------------------------------------------------------

    def map(self, vaddr: int, frame: int, size: PageSize, flags: Flags,
            core: int = 0) -> None:
        node = self._core_node.get(core, 0)
        result = self.nr.execute(("map", vaddr, frame, size, flags),
                                 node=node, thread=core)
        if result[0] != "ok":
            raise VSpaceError(result[2])

    def unmap(self, vaddr: int, core: int = 0) -> Mapping:
        node = self._core_node.get(core, 0)
        result = self.nr.execute(("unmap", vaddr), node=node, thread=core)
        if result[0] != "ok":
            raise VSpaceError(result[2])
        removed = result[1]
        # The unmap is only safe once *every* replica has applied it (no
        # core may keep translating through its stale tree) and every TLB
        # entry is gone — this full sync + shootdown is what makes unmap
        # more expensive than map (Figure 1c vs 1b).
        self.nr.sync_all()
        self._shootdown(removed.vaddr, int(removed.size))
        return removed

    def resolve(self, vaddr: int, core: int = 0) -> Mapping | None:
        node = self._core_node.get(core, 0)
        result = self.nr.execute_ro(("resolve", vaddr), node=node, thread=core)
        if result[0] != "ok":
            raise VSpaceError(result[2])
        return result[1]

    def _shootdown(self, vaddr: int, size: int) -> None:
        """Invalidate the unmapped range in every registered core's TLB
        (the mandatory protocol established by the `tlb` VCs)."""
        self.shootdowns += 1
        for tlb in self._tlbs.values():
            tlb.invalidate_page(vaddr)

    # -- translation (what instruction execution uses) -------------------------------

    def translate(self, core: int, vaddr: int, write: bool = False):
        """Translate through the core's TLB, walking on a miss."""
        if core not in self._core_node:
            raise ValueError(f"core {core} not attached")
        tlb = self._tlbs[core]
        cached = tlb.lookup(vaddr)
        if cached is not None:
            if write and not cached.flags.writable:
                raise TranslationFault(vaddr, "write to read-only page")
            offset = vaddr - cached.page_base_vaddr
            return cached.frame_paddr + offset
        mmu = Mmu(self.memory)
        node = self._core_node[core]
        try:
            translation = mmu.walk(self.root_for(core), vaddr)
        except TranslationFault:
            # The local replica may simply lag the log (NrOS handles this
            # page fault by syncing the replica and retrying the access).
            self._sync_node(node, core)
            translation = mmu.walk(self.root_for(core), vaddr)
        if write and not translation.flags.writable:
            raise TranslationFault(vaddr, "write to read-only page")
        tlb.insert(translation)
        return translation.paddr

    def _sync_node(self, node: int, core: int) -> None:
        """Apply any outstanding log entries to this node's replica."""
        steps = self.nr.sync_steps(node, thread=core)
        for _ in steps:
            pass

    def sync(self) -> None:
        """Quiesce: apply the log everywhere (used before teardown)."""
        self.nr.sync_all()
