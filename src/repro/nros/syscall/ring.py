"""io_uring-style submission/completion rings — batched syscall dispatch.

The one-call-one-marshal syscall path pays its full boundary cost (two
marshal/unmarshal round-trips, a scheduler pass, an obs span) on *every*
request.  A :class:`SyscallRing` amortizes that cost: the user process
stages fixed-size submission-queue entries (SQEs) and crosses the kernel
boundary once per *batch* (``ring_enter``); the kernel drains the
submission queue in one dispatch pass and posts fixed-size completion
queue entries (CQEs) in submission order.

Both rings live in *mapped user pages* of the submitting process.  Every
kernel access to a slot goes through :mod:`repro.nros.syscall.usercopy`,
so the mapping obligation (the buffer must be mapped, user-accessible,
and writable where the kernel writes) is checked per batch exactly as it
is for ``read_into``/``write_from`` — and a fault campaign can tear an
SQE *in user memory* between submission and dispatch, which the
per-entry decode check must turn into a typed error CQE rather than a
kernel crash.

Large payloads never ride inside an SQE: the 128-byte slot fits only the
marshalled scalar arguments, so bulk data moves zero-copy through
``usercopy``-validated buffers (``read_into``/``write_from`` style
``(vaddr, length)`` references).  A result too large for a CQE slot is
refused with :data:`~repro.nros.syscall.abi.E2BIG`, pushing users toward
the zero-copy calls — the same pressure real io_uring exerts.

Wire layout (all little-endian, fixed-size slots, zero padding):

=========  ======================================================
SQE (128)  magic ``0x5351`` u16 | blob len u16 | syscall nr u32 |
           user_data u64 | crc32 checksum u32 |
           marshalled args blob | zero pad
CQE (64)   magic ``0x4351`` u16 | blob len u16 | status u32 |
           user_data u64 | marshalled result blob | zero pad
=========  ======================================================

SQEs carry a CRC-32 checksum (detection, not authentication — the burst
guarantee covers exactly the single-flip and truncated-store shapes a
torn write produces, at a fraction of a cryptographic hash's cost on the
per-entry hot path) because user memory is exactly where a torn or
interrupted store lands: any corruption of a staged entry — truncated
tail, stale bytes, a flipped bit — must surface as a *typed* ``EBADMSG``
completion for that entry, never as a silently different syscall.  CQEs
are written and read by the kernel only, so they carry none.

``status`` is 0 on success, else the errno of the typed per-entry error.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from zlib import crc32

from repro.nros.syscall import abi
from repro.nros.syscall.marshal import MarshalError, marshal, unmarshal

SQE_SIZE = 128
CQE_SIZE = 64
_SQE_HEADER = 20  # magic u16 + len u16 + nr u32 + user_data u64 + csum u32
_CQE_HEADER = 16  # magic u16 + len u16 + status u32 + user_data u64

SQE_MAGIC = 0x5351  # "SQ"
CQE_MAGIC = 0x4351  # "CQ"

SQE_BLOB_MAX = SQE_SIZE - _SQE_HEADER
CQE_BLOB_MAX = CQE_SIZE - _CQE_HEADER

# magic u16 | blob len u16 | nr-or-status u32 | user_data u64
_HEADER16 = struct.Struct("<HHIQ")
_ZEROS = bytes(SQE_SIZE)


def _sqe_checksum(prefix: bytes, blob: bytes) -> int:
    return crc32(blob, crc32(prefix))

#: Depth bounds for ring_setup (slots, not bytes).
MIN_DEPTH = 1
MAX_DEPTH = 1024

#: Syscalls that must not be dispatched through a ring: control-flow
#: transfers (exit unwinds the caller) and the ring ops themselves
#: (no recursive draining).
RING_FORBIDDEN = frozenset({
    "exit", "ring_setup", "ring_enter", "ring_reap",
})


class RingError(Exception):
    """Malformed ring state or entry (setup/submission-level failure)."""


class SqeDecodeError(RingError):
    """A submission slot failed its integrity check (torn or garbage)."""


def encode_sqe(user_data: int, number: int, args: tuple) -> bytes:
    """One fixed-size submission slot.  Raises :class:`RingError` when
    the marshalled arguments do not fit — callers must switch to a
    zero-copy ``(vaddr, length)`` buffer reference instead."""
    blob = marshal(args)
    if len(blob) > SQE_BLOB_MAX:
        raise RingError(
            f"SQE args for syscall {number} marshal to {len(blob)} bytes "
            f"(max {SQE_BLOB_MAX}); pass bulk data by (vaddr, length)")
    if not 0 <= user_data <= (1 << 64) - 1:
        raise RingError(f"user_data {user_data} is not a u64")
    prefix = _HEADER16.pack(SQE_MAGIC, len(blob), number, user_data)
    csum = _sqe_checksum(prefix, blob)
    return (prefix + csum.to_bytes(4, "little") + blob).ljust(
        SQE_SIZE, b"\x00")


def decode_sqe(slot: bytes) -> tuple[int, int, tuple]:
    """Decode one slot -> (user_data, number, args).

    This is the per-entry marshalling-obligation check of the batched
    path: a torn or corrupted slot raises :class:`SqeDecodeError`, which
    dispatch converts into a typed ``EBADMSG`` CQE for that entry alone.
    """
    if len(slot) != SQE_SIZE:
        raise SqeDecodeError(f"slot is {len(slot)} bytes, not {SQE_SIZE}")
    magic, blob_len, number, user_data = _HEADER16.unpack_from(slot)
    if magic != SQE_MAGIC:
        raise SqeDecodeError("bad SQE magic (torn or unwritten slot)")
    if blob_len > SQE_BLOB_MAX:
        raise SqeDecodeError(f"SQE blob length {blob_len} overruns slot")
    csum = int.from_bytes(slot[16:20], "little")
    blob = slot[_SQE_HEADER:_SQE_HEADER + blob_len]
    if csum != _sqe_checksum(slot[0:16], blob):
        raise SqeDecodeError("SQE checksum mismatch (torn write)")
    used = _SQE_HEADER + blob_len
    if slot[used:] != _ZEROS[used:]:
        raise SqeDecodeError("nonzero bytes in SQE padding (torn write)")
    try:
        args = unmarshal(blob)
    except MarshalError as exc:
        raise SqeDecodeError(f"SQE args: {exc}") from exc
    if not isinstance(args, tuple):
        raise SqeDecodeError(f"SQE args decode to {type(args).__name__}, "
                             f"not tuple")
    return user_data, number, args


def encode_cqe(user_data: int, status: int, value) -> bytes:
    """One fixed-size completion slot.  An unmarshallable or oversized
    *success* result degrades to an ``E2BIG`` error completion — the
    entry still completes, with a typed error instead of a payload.  An
    error completion whose message payload does not fit keeps its errno
    and drops the message."""
    try:
        blob = marshal(value)
    except MarshalError:
        blob = None
    if blob is None or len(blob) > CQE_BLOB_MAX:
        if status == 0:
            status = abi.E2BIG
        blob = marshal(None)
    return (_HEADER16.pack(CQE_MAGIC, len(blob), status, user_data)
            + blob).ljust(CQE_SIZE, b"\x00")


def decode_cqe(slot: bytes) -> tuple[int, int, object]:
    """Decode one completion slot -> (user_data, status, value)."""
    if len(slot) != CQE_SIZE:
        raise RingError(f"CQE slot is {len(slot)} bytes, not {CQE_SIZE}")
    magic, blob_len, status, user_data = _HEADER16.unpack_from(slot)
    if magic != CQE_MAGIC:
        raise RingError("bad CQE magic")
    if blob_len > CQE_BLOB_MAX:
        raise RingError(f"CQE blob length {blob_len} overruns slot")
    value = unmarshal(slot[_CQE_HEADER:_CQE_HEADER + blob_len])
    return user_data, status, value


@dataclass
class SyscallRing:
    """Kernel-side bookkeeping for one process's ring pair.

    Indices are monotonically increasing; the slot of index ``i`` is
    ``i % depth``.  Invariants (checked by :meth:`audit`):

    * ``sq_head <= sq_tail`` and ``sq_tail - sq_head <= sq_depth``;
    * ``cq_head <= cq_tail`` and ``cq_tail - cq_head <= cq_depth``;
    * every submitted entry is exactly one of: pending in the SQ,
      completed into the CQ, or reaped — ``sq_tail == sq_head + pending``
      and ``completed == sq_head`` (completion ordering: entries
      complete in submission order, so the count of drained SQEs *is*
      the count of posted CQEs).
    """

    ring_id: int
    sq_base: int
    cq_base: int
    sq_depth: int
    cq_depth: int
    sq_head: int = 0        # next SQE index to dispatch
    sq_tail: int = 0        # next free SQE index
    cq_head: int = 0        # next CQE index to reap
    cq_tail: int = 0        # next CQE index to post
    sqe_drawn: int = 0      # fault plans: tear draws issued up to here
    frames: list[int] = field(default_factory=list)  # backing frames
    pages: list[int] = field(default_factory=list)   # mapped vaddrs

    @property
    def sq_pending(self) -> int:
        return self.sq_tail - self.sq_head

    @property
    def cq_ready(self) -> int:
        return self.cq_tail - self.cq_head

    def sq_slot_vaddr(self, index: int) -> int:
        return self.sq_base + (index % self.sq_depth) * SQE_SIZE

    def cq_slot_vaddr(self, index: int) -> int:
        return self.cq_base + (index % self.cq_depth) * CQE_SIZE

    def sq_segments(self, start: int, count: int):
        """``(vaddr, slots)`` runs covering SQ indices [start, start+count)
        — at most two, since a window never wraps more than once.  The
        kernel copies each run with ONE ``usercopy`` call instead of one
        per slot, so the per-batch mapping check walks the page table a
        couple of times per enter, not four times per entry."""
        return _segments(self.sq_base, self.sq_depth, SQE_SIZE, start, count)

    def cq_segments(self, start: int, count: int):
        """Same as :meth:`sq_segments` for CQ indices."""
        return _segments(self.cq_base, self.cq_depth, CQE_SIZE, start, count)

    def audit(self) -> list[str]:
        """Structural invariant check (used by tests and the fault
        campaign after every injection scenario)."""
        problems = []
        if not 0 <= self.sq_pending <= self.sq_depth:
            problems.append(f"SQ occupancy {self.sq_pending} out of "
                            f"[0, {self.sq_depth}]")
        if not 0 <= self.cq_ready <= self.cq_depth:
            problems.append(f"CQ occupancy {self.cq_ready} out of "
                            f"[0, {self.cq_depth}]")
        if self.cq_tail != self.sq_head:
            problems.append(
                f"completion ordering broken: {self.sq_head} SQEs "
                f"drained but {self.cq_tail} CQEs posted")
        return problems


def _segments(base: int, depth: int, slot_size: int, start: int, count: int):
    if count <= 0:
        return []
    if count > depth:
        raise RingError(f"window of {count} slots exceeds depth {depth}")
    first = start % depth
    run = min(count, depth - first)
    segments = [(base + first * slot_size, run)]
    if run < count:
        segments.append((base, count - run))
    return segments


def ring_pages(depth: int, slot_size: int, page_size: int) -> int:
    """Pages needed to back ``depth`` slots of ``slot_size`` bytes."""
    return (depth * slot_size + page_size - 1) // page_size
