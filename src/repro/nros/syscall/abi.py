"""The syscall ABI: numbers, error codes, and the request type.

User programs are generators that ``yield Syscall(name, args)`` and receive
the result via ``send``.  At the boundary the kernel marshals the request
and the response through :mod:`repro.nros.syscall.marshal`, so every call
exercises the marshalling obligation end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

# Syscall numbers (stable ABI).
SYSCALLS = {
    # memory
    "vm_map": 1,
    "vm_unmap": 2,
    "vm_resolve": 3,
    "peek": 4,
    "poke": 5,
    "cas": 6,
    "mmap_file": 7,
    "msync": 8,
    # batched memory ops: N pages through the NR replica, one TLB
    # shootdown round for the whole unmap batch
    "vm_map_batch": 25,
    "vm_unmap_batch": 26,
    # files
    "open": 10,
    "close": 11,
    "read": 12,
    "write": 13,
    "seek": 14,
    "stat": 15,
    "mkdir": 16,
    "readdir": 17,
    "unlink": 18,
    "rename": 19,
    "read_into": 20,
    "write_from": 21,
    "link": 22,
    "truncate": 23,
    # processes and threads
    "spawn": 30,
    "wait": 31,
    "exit": 32,
    "getpid": 33,
    "kill": 34,
    "sched_yield": 35,
    "thread_spawn": 36,
    "thread_join": 37,
    "sleep": 38,
    "signal": 39,
    "sigwait": 42,
    "sigpending": 43,
    "setpriority": 44,
    "sched_setscheduler": 45,
    "sched_getscheduler": 46,
    # synchronization
    "futex_wait": 40,
    "futex_wake": 41,
    # networking
    "socket": 50,
    "bind": 51,
    "sendto": 52,
    "recvfrom": 53,
    "rdp_listen": 54,
    "rdp_connect": 55,
    "rdp_accept": 56,
    "rdp_send": 57,
    "rdp_recv": 58,
    "rdp_close": 59,
    # pipes
    "pipe": 70,
    "pipe_read": 71,
    "pipe_write": 72,
    "pipe_close": 73,
    # submission/completion rings (batched dispatch)
    "ring_setup": 80,
    "ring_enter": 81,
    "ring_reap": 82,
    # console
    "log": 60,
}

EPIPE = 32

NUMBER_TO_NAME = {number: name for name, number in SYSCALLS.items()}

# errno-style codes
EOK = 0
EBADF = 9
EAGAIN = 11
ENOMEM = 12
EFAULT = 14
EEXIST = 17
ENOENT = 2
ENOTDIR = 20
EISDIR = 21
EINVAL = 22
ENOSPC = 28
ESRCH = 3
EPERM = 1
ECHILD = 10
ENOSYS = 38
ECONNREFUSED = 111
ENOTCONN = 107
E2BIG = 7        # a ring completion payload does not fit a CQE slot
EBADMSG = 74     # a ring submission slot failed its integrity check

# signal numbers (the subset the kernel knows)
SIGKILL = 9
SIGTERM = 15
SIGUSR1 = 10
SIGUSR2 = 12

ERRNO_NAMES = {
    EBADF: "EBADF", EAGAIN: "EAGAIN", ENOMEM: "ENOMEM", EFAULT: "EFAULT",
    EEXIST: "EEXIST", ENOENT: "ENOENT", ENOTDIR: "ENOTDIR", EPIPE: "EPIPE",
    EISDIR: "EISDIR", EINVAL: "EINVAL", ENOSPC: "ENOSPC", ESRCH: "ESRCH",
    EPERM: "EPERM", ECHILD: "ECHILD", ENOSYS: "ENOSYS",
    ECONNREFUSED: "ECONNREFUSED", ENOTCONN: "ENOTCONN",
    E2BIG: "E2BIG", EBADMSG: "EBADMSG",
}


@dataclass(frozen=True)
class Syscall:
    """A syscall request, as yielded by user code."""

    name: str
    args: tuple = ()

    def __post_init__(self):
        if self.name not in SYSCALLS:
            raise ValueError(f"unknown syscall {self.name!r}")


class SyscallError(Exception):
    """Thrown *into* user code when a syscall fails."""

    def __init__(self, errno: int, message: str = "") -> None:
        name = ERRNO_NAMES.get(errno, str(errno))
        super().__init__(f"[{name}] {message}" if message else f"[{name}]")
        self.errno = errno


def sys(name: str, *args) -> Syscall:
    """Convenience constructor: ``result = yield sys("read", fd, 100)``."""
    return Syscall(name, args)
