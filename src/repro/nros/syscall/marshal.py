"""Syscall argument marshalling (the paper's *marshalling obligation*).

"We can prove that values correctly round-trip through serialization and
deserialization so that syscall arguments are consistent between user-space
and kernel-space."  This module is that serialization library: a small,
self-describing binary format for the types syscalls exchange (unsigned
words, booleans, byte strings, UTF-8 strings, and flat tuples thereof).

Layout: every value is a 1-byte tag followed by its payload; integers are
little-endian u64, byte strings are length-prefixed (u64).  The roundtrip
property is checked three ways: hypothesis tests, SMT lemmas over the word
encoding (`marshal-lemmas`), and the contract VCs that marshal real syscall
argument tuples.
"""

from __future__ import annotations

TAG_U64 = 0x01
TAG_BOOL = 0x02
TAG_BYTES = 0x03
TAG_STR = 0x04
TAG_TUPLE = 0x05
TAG_NONE = 0x06
TAG_I64 = 0x07

U64_MAX = (1 << 64) - 1


class MarshalError(Exception):
    """Unsupported value or malformed buffer."""


def _pack_u64(value: int) -> bytes:
    return value.to_bytes(8, "little")


def _unpack_u64(buf: bytes, offset: int) -> tuple[int, int]:
    if offset + 8 > len(buf):
        raise MarshalError(f"truncated u64 at offset {offset}")
    return int.from_bytes(buf[offset : offset + 8], "little"), offset + 8


def marshal(value) -> bytes:
    """Serialize a supported value to bytes."""
    if value is None:
        return bytes([TAG_NONE])
    if isinstance(value, bool):  # before int: bool is an int subtype
        return bytes([TAG_BOOL, 1 if value else 0])
    if isinstance(value, int):
        if 0 <= value <= U64_MAX:
            return bytes([TAG_U64]) + _pack_u64(value)
        if -(1 << 63) <= value < (1 << 63):
            return bytes([TAG_I64]) + _pack_u64(value & U64_MAX)
        raise MarshalError(f"integer {value} does not fit in 64 bits")
    if isinstance(value, bytes):
        return bytes([TAG_BYTES]) + _pack_u64(len(value)) + value
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return bytes([TAG_STR]) + _pack_u64(len(payload)) + payload
    if isinstance(value, tuple):
        # Collect the parts and join once: the final bytes() is built in
        # a single pass instead of re-copying the accumulator per item,
        # so marshalling an N-item tuple stays linear in the payload
        # (test_syscall_marshal pins the scaling).
        parts = [bytes([TAG_TUPLE]), _pack_u64(len(value))]
        parts.extend(marshal(item) for item in value)
        return b"".join(parts)
    raise MarshalError(f"cannot marshal {type(value).__name__}")


def unmarshal(buf: bytes) -> object:
    """Deserialize one value; the whole buffer must be consumed."""
    value, offset = _unmarshal_at(buf, 0)
    if offset != len(buf):
        raise MarshalError(
            f"{len(buf) - offset} trailing bytes after value"
        )
    return value


def _unmarshal_at(buf: bytes, offset: int) -> tuple[object, int]:
    if offset >= len(buf):
        raise MarshalError("empty buffer")
    tag = buf[offset]
    offset += 1
    if tag == TAG_NONE:
        return None, offset
    if tag == TAG_BOOL:
        if offset >= len(buf):
            raise MarshalError("truncated bool")
        flag = buf[offset]
        if flag not in (0, 1):
            raise MarshalError(f"bad bool payload {flag}")
        return bool(flag), offset + 1
    if tag == TAG_U64:
        return _unpack_u64(buf, offset)
    if tag == TAG_I64:
        raw, offset = _unpack_u64(buf, offset)
        if raw >= 1 << 63:
            raw -= 1 << 64
        return raw, offset
    if tag == TAG_BYTES:
        length, offset = _unpack_u64(buf, offset)
        if offset + length > len(buf):
            raise MarshalError("truncated bytes payload")
        return bytes(buf[offset : offset + length]), offset + length
    if tag == TAG_STR:
        length, offset = _unpack_u64(buf, offset)
        if offset + length > len(buf):
            raise MarshalError("truncated string payload")
        try:
            return buf[offset : offset + length].decode("utf-8"), offset + length
        except UnicodeDecodeError as exc:
            raise MarshalError(f"bad UTF-8: {exc}") from exc
    if tag == TAG_TUPLE:
        count, offset = _unpack_u64(buf, offset)
        if count > len(buf):  # cheap sanity bound
            raise MarshalError(f"implausible tuple arity {count}")
        items = []
        for _ in range(count):
            item, offset = _unmarshal_at(buf, offset)
            items.append(item)
        return tuple(items), offset
    raise MarshalError(f"unknown tag {tag:#x} at offset {offset - 1}")


def marshal_call(syscall_number: int, args: tuple) -> bytes:
    """Encode a complete syscall request (number + argument tuple)."""
    return marshal((syscall_number,) + args)


def unmarshal_call(buf: bytes) -> tuple[int, tuple]:
    """Decode a syscall request; returns (number, args)."""
    value = unmarshal(buf)
    if not isinstance(value, tuple) or not value:
        raise MarshalError("syscall request must be a non-empty tuple")
    number = value[0]
    if not isinstance(number, int):
        raise MarshalError("syscall number must be an integer")
    return number, value[1:]
