"""Copying between user buffers and kernel memory — the *mapping obligation*.

"The mapping obligation is that the process memory for the buffer appear at
a known location in kernel space."  The kernel never trusts user pointers:
every access translates the user virtual address through the process's page
table (handling page-crossing buffers), enforcing the user and writable
permission bits as appropriate for the direction of the copy.
"""

from __future__ import annotations

from repro.core.pt import defs
from repro.hw.mem import PhysicalMemory
from repro.hw.mmu import AccessType, Mmu, TranslationFault


class UserCopyFault(Exception):
    """The user buffer is unmapped or lacks the required permissions."""

    def __init__(self, vaddr: int, reason: str) -> None:
        super().__init__(f"usercopy fault at {vaddr:#x}: {reason}")
        self.vaddr = vaddr


def _chunks(vaddr: int, length: int):
    """Split [vaddr, vaddr+length) at 4 KiB page boundaries."""
    end = vaddr + length
    current = vaddr
    while current < end:
        page_end = defs.vaddr_base(current, defs.PageSize.SIZE_4K) + defs.PAGE_SIZE
        chunk_end = min(end, page_end)
        yield current, chunk_end - current
        current = chunk_end


def copy_from_user(
    memory: PhysicalMemory, mmu: Mmu, root_paddr: int, vaddr: int, length: int
) -> bytes:
    """Read `length` bytes from the user buffer at `vaddr`."""
    if length < 0:
        raise ValueError("negative length")
    out = bytearray()
    for chunk_vaddr, chunk_len in _chunks(vaddr, length):
        try:
            t = mmu.translate(root_paddr, chunk_vaddr, AccessType.READ,
                              user_mode=True)
        except TranslationFault as exc:
            raise UserCopyFault(chunk_vaddr, exc.reason) from exc
        out += memory.read(t.paddr, chunk_len)
    return bytes(out)


def copy_to_user(
    memory: PhysicalMemory, mmu: Mmu, root_paddr: int, vaddr: int, data: bytes
) -> None:
    """Write `data` to the user buffer at `vaddr`."""
    offset = 0
    for chunk_vaddr, chunk_len in _chunks(vaddr, len(data)):
        try:
            t = mmu.translate(root_paddr, chunk_vaddr, AccessType.WRITE,
                              user_mode=True)
        except TranslationFault as exc:
            raise UserCopyFault(chunk_vaddr, exc.reason) from exc
        memory.write(t.paddr, data[offset : offset + chunk_len])
        offset += chunk_len
