"""Package."""
