"""Filesystem consistency checking (fsck).

Walks the volume from the root directory and cross-checks every structural
invariant the filesystem maintains:

* every block referenced by an inode (direct, indirect, and the indirect
  table itself) is marked allocated in the bitmap, and referenced once;
* every bitmap-allocated data block is referenced (no leaks);
* every directory entry points to an allocated inode, and every allocated
  inode is reachable (no orphans);
* each file inode's link count equals the number of directory entries
  naming it; directories are named exactly once;
* referenced block indices lie within the file's size.

Returns a list of human-readable issues; an empty list means clean.  The
remount and random-operation tests run fsck after every scenario, which is
how the filesystem's write-through discipline is audited.
"""

from __future__ import annotations

import struct

from repro.nros.fs import dir as dirfmt
from repro.nros.fs.blockdev import BLOCK_SIZE
from repro.nros.fs.fs import FileSystem, ROOT_INUM
from repro.nros.fs.inode import (
    INDIRECT_ENTRIES,
    INODES_PER_BLOCK,
    NUM_DIRECT,
    TYPE_DIR,
    TYPE_FILE,
    TYPE_FREE,
)


def fsck(fs: FileSystem) -> list[str]:
    """Audit the mounted volume; returns the list of inconsistencies."""
    issues: list[str] = []
    data_start = _data_start(fs)
    references: dict[int, str] = {}   # block -> first referencing owner
    name_counts: dict[int, int] = {}  # inum -> directory entries naming it
    reachable: set[int] = set()
    claimed_files: set[int] = set()   # inodes whose blocks were claimed

    def claim(block: int, owner: str) -> None:
        if block == 0:
            return
        if block in references:
            issues.append(
                f"block {block} referenced by both {references[block]} "
                f"and {owner}"
            )
            return
        references[block] = owner
        if not fs.bitmap.is_set(block):
            issues.append(f"block {block} ({owner}) not marked allocated")
        if block < data_start:
            issues.append(f"block {block} ({owner}) inside metadata region")

    def claim_file_blocks(inum: int, inode, path: str) -> None:
        if inum in claimed_files:
            return  # hard link: blocks already accounted
        claimed_files.add(inum)
        max_index = (inode.size + BLOCK_SIZE - 1) // BLOCK_SIZE
        for index, block in enumerate(inode.direct):
            if block:
                if index >= max_index:
                    issues.append(f"{path}: direct block {index} beyond "
                                  f"size {inode.size}")
                claim(block, f"{path}[{index}]")
        if inode.indirect:
            claim(inode.indirect, f"{path}[indirect table]")
            table = fs.dev.read(inode.indirect)
            for i in range(INDIRECT_ENTRIES):
                block = struct.unpack_from("<I", table, i * 4)[0]
                if block:
                    index = NUM_DIRECT + i
                    if index >= max_index:
                        issues.append(f"{path}: indirect block {index} "
                                      f"beyond size {inode.size}")
                    claim(block, f"{path}[{index}]")

    # -- walk the namespace from the root -------------------------------------
    stack = [(ROOT_INUM, "/")]
    seen_dirs: set[int] = set()
    name_counts[ROOT_INUM] = 1
    while stack:
        inum, path = stack.pop()
        if inum in seen_dirs:
            issues.append(f"directory {path} (inode {inum}) reached twice")
            continue
        reachable.add(inum)
        inode = fs._read_inode(inum)
        if inode.itype == TYPE_FREE:
            issues.append(f"{path} points at free inode {inum}")
            continue
        claim_file_blocks(inum, inode, path)
        if not inode.is_dir:
            continue
        seen_dirs.add(inum)
        try:
            entries = dirfmt.decode_entries(fs.read_at(inum, 0, inode.size))
        except dirfmt.DirFormatError as exc:
            issues.append(f"directory {path} corrupt: {exc}")
            continue
        prefix = "" if path == "/" else path
        for name, child in entries.items():
            name_counts[child] = name_counts.get(child, 0) + 1
            child_inode = fs._read_inode(child)
            child_path = f"{prefix}/{name}"
            if child_inode.itype == TYPE_FREE:
                issues.append(f"{child_path} points at free inode {child}")
                continue
            if child_inode.is_dir:
                stack.append((child, child_path))
            else:
                reachable.add(child)
                claim_file_blocks(child, child_inode, child_path)

    # -- link counts -------------------------------------------------------------
    for inum in range(fs.num_inodes):
        inode = fs._read_inode(inum)
        if inode.itype == TYPE_FREE:
            continue
        if inum not in reachable:
            issues.append(f"orphan inode {inum} (type {inode.itype})")
            continue
        expected = name_counts.get(inum, 0)
        if inode.itype == TYPE_FILE and inode.nlink != expected:
            issues.append(f"inode {inum}: nlink {inode.nlink} but "
                          f"{expected} directory entries")
        if inode.itype == TYPE_DIR and expected != 1:
            issues.append(f"directory inode {inum} named {expected} times")

    # -- leaks ----------------------------------------------------------------------
    for block in range(data_start, fs.bitmap.covered_blocks):
        if fs.bitmap.is_set(block) and block not in references:
            issues.append(f"leaked block {block} (allocated, unreferenced)")
    return issues


def _data_start(fs: FileSystem) -> int:
    itable_blocks = (fs.num_inodes + INODES_PER_BLOCK - 1) // INODES_PER_BLOCK
    return fs.itable_start + itable_blocks
