"""Package."""
