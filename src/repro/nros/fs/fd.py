"""Per-process open-file state (descriptor table).

Bridges the filesystem to the syscall layer and to the client application
contract: an :class:`OpenFile` carries the offset the contract's `read_spec`
talks about."""

from __future__ import annotations

from dataclasses import dataclass

from repro.nros.fs.fs import FileSystem, FsError, IsADirectory

O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_TRUNC = 0x200
O_APPEND = 0x400

_ACCESS_MASK = 0x3


class BadFd(FsError):
    pass


class PermissionDenied(FsError):
    pass


@dataclass
class OpenFile:
    """One open descriptor."""

    inum: int
    flags: int
    offset: int = 0

    @property
    def readable(self) -> bool:
        return (self.flags & _ACCESS_MASK) in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        return (self.flags & _ACCESS_MASK) in (O_WRONLY, O_RDWR)


class FdTable:
    """A process's descriptor table."""

    def __init__(self, fs: FileSystem) -> None:
        self.fs = fs
        self._open: dict[int, OpenFile] = {}

    def open(self, path: str, flags: int = O_RDONLY) -> int:
        if flags & O_CREAT and not self.fs.exists(path):
            self.fs.create(path)
        inum = self.fs.lookup(path)
        stat = self.fs.stat_inum(inum)
        if stat.is_dir and (flags & _ACCESS_MASK) != O_RDONLY:
            raise IsADirectory(f"cannot open directory {path!r} for writing")
        if flags & O_TRUNC and not stat.is_dir:
            self.fs.truncate(inum, 0)
        fd = self._lowest_free()
        offset = self.fs.stat_inum(inum).size if flags & O_APPEND else 0
        self._open[fd] = OpenFile(inum=inum, flags=flags, offset=offset)
        return fd

    def _lowest_free(self) -> int:
        fd = 0
        while fd in self._open:
            fd += 1
        return fd

    def _get(self, fd: int) -> OpenFile:
        if fd not in self._open:
            raise BadFd(f"bad file descriptor {fd}")
        return self._open[fd]

    def read(self, fd: int, length: int) -> bytes:
        handle = self._get(fd)
        if not handle.readable:
            raise PermissionDenied(f"fd {fd} not open for reading")
        data = self.fs.read_at(handle.inum, handle.offset, length)
        handle.offset += len(data)
        return data

    def write(self, fd: int, data: bytes) -> int:
        handle = self._get(fd)
        if not handle.writable:
            raise PermissionDenied(f"fd {fd} not open for writing")
        written = self.fs.write_at(handle.inum, handle.offset, data)
        handle.offset += written
        return written

    def seek(self, fd: int, offset: int) -> int:
        if offset < 0:
            raise FsError("negative seek offset")
        handle = self._get(fd)
        handle.offset = offset
        return offset

    def tell(self, fd: int) -> int:
        return self._get(fd).offset

    def stat(self, fd: int):
        return self.fs.stat_inum(self._get(fd).inum)

    def close(self, fd: int) -> None:
        if fd not in self._open:
            raise BadFd(f"bad file descriptor {fd}")
        del self._open[fd]

    def close_all(self) -> None:
        self._open.clear()

    def open_fds(self) -> list[int]:
        return sorted(self._open)
