"""On-disk inodes.

128-byte records, 32 per block: type, size, link count, ten direct block
pointers and one single-indirect pointer (1024 entries), giving a maximum
file size of (10 + 1024) * 4 KiB ≈ 4 MiB — plenty for the workloads of the
storage-node application."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.nros.fs.blockdev import BLOCK_SIZE

INODE_SIZE = 128
INODES_PER_BLOCK = BLOCK_SIZE // INODE_SIZE
NUM_DIRECT = 10
INDIRECT_ENTRIES = BLOCK_SIZE // 4
MAX_FILE_BLOCKS = NUM_DIRECT + INDIRECT_ENTRIES
MAX_FILE_SIZE = MAX_FILE_BLOCKS * BLOCK_SIZE

TYPE_FREE = 0
TYPE_FILE = 1
TYPE_DIR = 2

# struct: type u8, pad u8, nlink u16, size u64, direct 10*u32, indirect u32
_FORMAT = "<BBHQ10II"
_STRUCT = struct.Struct(_FORMAT)
assert _STRUCT.size <= INODE_SIZE


@dataclass
class Inode:
    """The in-memory image of one inode."""

    itype: int = TYPE_FREE
    nlink: int = 0
    size: int = 0
    direct: list[int] = field(default_factory=lambda: [0] * NUM_DIRECT)
    indirect: int = 0

    @property
    def is_file(self) -> bool:
        return self.itype == TYPE_FILE

    @property
    def is_dir(self) -> bool:
        return self.itype == TYPE_DIR

    def encode(self) -> bytes:
        packed = _STRUCT.pack(
            self.itype, 0, self.nlink, self.size, *self.direct, self.indirect
        )
        return packed + bytes(INODE_SIZE - len(packed))

    @staticmethod
    def decode(data: bytes) -> "Inode":
        fields = _STRUCT.unpack(data[: _STRUCT.size])
        itype, _pad, nlink, size = fields[0], fields[1], fields[2], fields[3]
        direct = list(fields[4 : 4 + NUM_DIRECT])
        indirect = fields[4 + NUM_DIRECT]
        return Inode(itype=itype, nlink=nlink, size=size, direct=direct,
                     indirect=indirect)


@dataclass(frozen=True)
class Stat:
    """What the stat() syscall returns."""

    inum: int
    itype: int
    size: int
    nlink: int

    @property
    def is_dir(self) -> bool:
        return self.itype == TYPE_DIR
