"""On-disk block allocation bitmap."""

from __future__ import annotations

from repro.nros.fs.blockdev import BLOCK_SIZE, BlockDevice

BITS_PER_BLOCK = BLOCK_SIZE * 8


class NoSpace(Exception):
    """The volume is full."""


class BlockBitmap:
    """A bitmap covering every block on the device, stored on disk.

    The bitmap is loaded into memory at mount and written back block-wise
    on change (write-through)."""

    def __init__(self, dev: BlockDevice, start_block: int, num_blocks: int,
                 covered_blocks: int) -> None:
        self.dev = dev
        self.start_block = start_block
        self.num_blocks = num_blocks
        self.covered_blocks = covered_blocks
        self._bits = bytearray()
        for i in range(num_blocks):
            self._bits += dev.read(start_block + i)

    @staticmethod
    def blocks_needed(covered_blocks: int) -> int:
        return (covered_blocks + BITS_PER_BLOCK - 1) // BITS_PER_BLOCK

    def is_set(self, block: int) -> bool:
        self._check(block)
        return bool(self._bits[block // 8] & (1 << (block % 8)))

    def set(self, block: int) -> None:
        self._check(block)
        self._bits[block // 8] |= 1 << (block % 8)
        self._flush_for(block)

    def clear(self, block: int) -> None:
        self._check(block)
        self._bits[block // 8] &= ~(1 << (block % 8))
        self._flush_for(block)

    def alloc(self) -> int:
        """Find, mark, and return a free block."""
        for block in range(self.covered_blocks):
            if not self.is_set(block):
                self.set(block)
                return block
        raise NoSpace("no free blocks")

    def free(self, block: int) -> None:
        if not self.is_set(block):
            raise ValueError(f"double free of block {block}")
        self.clear(block)

    def count_free(self) -> int:
        return sum(1 for b in range(self.covered_blocks) if not self.is_set(b))

    def _check(self, block: int) -> None:
        if not 0 <= block < self.covered_blocks:
            raise ValueError(f"block {block} out of bitmap range")

    def _flush_for(self, block: int) -> None:
        index = (block // 8) // BLOCK_SIZE
        start = index * BLOCK_SIZE
        self.dev.write(self.start_block + index,
                       bytes(self._bits[start : start + BLOCK_SIZE]))
