"""Directory entry encoding.

A directory's data is a flat sequence of variable-length records:
``u32 inode | u16 name_len | name bytes``.  Rewritten wholesale on change —
directories in our workloads are small, and wholesale rewrite keeps the
format trivially crash-auditable."""

from __future__ import annotations

import struct

_HEADER = struct.Struct("<IH")

MAX_NAME = 255


class DirFormatError(Exception):
    """Corrupt directory data."""


def encode_entries(entries: dict[str, int]) -> bytes:
    """Serialize name -> inode mappings."""
    out = bytearray()
    for name in sorted(entries):
        payload = name.encode("utf-8")
        if not payload or len(payload) > MAX_NAME:
            raise ValueError(f"bad directory entry name {name!r}")
        out += _HEADER.pack(entries[name], len(payload))
        out += payload
    return bytes(out)


def decode_entries(data: bytes) -> dict[str, int]:
    """Parse directory data back into name -> inode mappings."""
    entries: dict[str, int] = {}
    offset = 0
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            raise DirFormatError("truncated directory entry header")
        inum, name_len = _HEADER.unpack_from(data, offset)
        offset += _HEADER.size
        if name_len == 0 or name_len > MAX_NAME:
            raise DirFormatError(f"bad name length {name_len}")
        if offset + name_len > len(data):
            raise DirFormatError("truncated directory entry name")
        name = data[offset : offset + name_len].decode("utf-8")
        if name in entries:
            raise DirFormatError(f"duplicate entry {name!r}")
        entries[name] = inum
        offset += name_len
    return entries


def validate_name(name: str) -> None:
    """Path-component validity shared by every namespace operation."""
    if not name or name in (".", ".."):
        raise ValueError(f"invalid file name {name!r}")
    if "/" in name or "\x00" in name:
        raise ValueError(f"invalid character in file name {name!r}")
    if len(name.encode("utf-8")) > MAX_NAME:
        raise ValueError("file name too long")
